"""Repository-wide pytest configuration.

All custom markers are registered here — in one place — so the test tree and
the benchmark harness agree on their meaning:

* ``table1`` — Table 1 reproduction benchmarks.  They run by default (they
  are the paper's headline claim) and can be deselected with
  ``-m "not table1"``.
* ``sim`` — slow simulator workload sweeps (the 100k-message engine
  benchmarks).  These are opt-in: they are skipped unless ``--run-sim`` is
  passed (or the marker is selected explicitly with ``-m sim``), so the
  tier-1 suite keeps running only the fast simulator parity subset.
* ``sweep`` — slow end-to-end sharded-sweep exercises (kill/resume over a
  real Table 1 block).  Opt-in exactly like ``sim``, via ``--run-sweep`` or
  ``-m sweep``; the fast sweep unit tests (manifest determinism, cache
  semantics, small shard-union parity) run unconditionally.
* ``scenarios`` — throughput–latency Pareto sweeps over composed failure
  and congestion scenarios (``BENCH_scenarios.json``).  Opt-in via
  ``--run-scenarios`` or ``-m scenarios``; the fast scenario parity tests
  in ``tests/test_scenarios.py`` run unconditionally.
* ``serve`` — route-query service load benchmarks (the ``repro serve
  bench`` replay runs that write ``BENCH_serve.json``).  Opt-in via
  ``--run-serve`` or ``-m serve``; the fast serve parity and protocol tests
  in ``tests/test_serve.py`` run unconditionally.
* ``benchcheck`` — compares the working-tree ``BENCH_*.json`` files against
  the committed versions and fails on a >2x wall-time regression of any
  existing key (``repro.analysis.bench_check``).  Opt-in via
  ``--run-bench-check`` or ``-m benchcheck``; meant to run right after a
  benchmark session rewrote the BENCH files.
* ``chaos`` — the full seeded fault-injection sweeps (hundreds of fault
  schedules against the chunk store, the lease protocol and straggler
  splitting; see docs/chaos.md).  Opt-in via ``--run-chaos`` or
  ``-m chaos``; a fast fixed-seed subset in ``tests/test_chaos.py`` runs
  unconditionally.
"""

import pytest

MARKERS = [
    "table1: Table 1 reproduction benchmarks (deselect with -m 'not table1')",
    "sim: slow simulator workload sweeps (opt-in: pass --run-sim or -m sim)",
    "sweep: slow end-to-end sharded-sweep runs (opt-in: pass --run-sweep or -m sweep)",
    "scenarios: scenario Pareto-curve benchmarks "
    "(opt-in: pass --run-scenarios or -m scenarios)",
    "serve: route-query service load benchmarks "
    "(opt-in: pass --run-serve or -m serve)",
    "benchcheck: BENCH_*.json wall-time regression gate "
    "(opt-in: pass --run-bench-check or -m benchcheck)",
    "chaos: full seeded fault-injection sweeps "
    "(opt-in: pass --run-chaos or -m chaos)",
]

#: marker name -> the command-line flag that opts it in.
_OPT_IN = {
    "sim": "--run-sim",
    "sweep": "--run-sweep",
    "scenarios": "--run-scenarios",
    "serve": "--run-serve",
    "benchcheck": "--run-bench-check",
    "chaos": "--run-chaos",
}


def pytest_addoption(parser):
    parser.addoption(
        "--run-sim",
        action="store_true",
        default=False,
        help="run the slow 'sim'-marked simulator workload sweeps",
    )
    parser.addoption(
        "--run-sweep",
        action="store_true",
        default=False,
        help="run the slow 'sweep'-marked end-to-end sharded-sweep tests",
    )
    parser.addoption(
        "--run-scenarios",
        action="store_true",
        default=False,
        help="run the 'scenarios'-marked scenario Pareto-curve benchmarks",
    )
    parser.addoption(
        "--run-serve",
        action="store_true",
        default=False,
        help="run the 'serve'-marked route-query service load benchmarks",
    )
    parser.addoption(
        "--run-bench-check",
        action="store_true",
        default=False,
        help="run the 'benchcheck'-marked BENCH_*.json regression gate",
    )
    parser.addoption(
        "--run-chaos",
        action="store_true",
        default=False,
        help="run the 'chaos'-marked full seeded fault-injection sweeps",
    )


def pytest_configure(config):
    for line in MARKERS:
        config.addinivalue_line("markers", line)


def pytest_collection_modifyitems(config, items):
    for marker, flag in _OPT_IN.items():
        if config.getoption(flag):
            continue
        if marker in (config.option.markexpr or ""):
            continue  # explicitly selected with -m <marker>
        skip = pytest.mark.skip(reason=f"{marker} tests are opt-in: pass {flag}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)
