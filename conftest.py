"""Repository-wide pytest configuration.

All custom markers are registered here — in one place — so the test tree and
the benchmark harness agree on their meaning:

* ``table1`` — Table 1 reproduction benchmarks.  They run by default (they
  are the paper's headline claim) and can be deselected with
  ``-m "not table1"``.
* ``sim`` — slow simulator workload sweeps (the 100k-message engine
  benchmarks).  These are opt-in: they are skipped unless ``--run-sim`` is
  passed (or the marker is selected explicitly with ``-m sim``), so the
  tier-1 suite keeps running only the fast simulator parity subset.
"""

import pytest

MARKERS = [
    "table1: Table 1 reproduction benchmarks (deselect with -m 'not table1')",
    "sim: slow simulator workload sweeps (opt-in: pass --run-sim or -m sim)",
]


def pytest_addoption(parser):
    parser.addoption(
        "--run-sim",
        action="store_true",
        default=False,
        help="run the slow 'sim'-marked simulator workload sweeps",
    )


def pytest_configure(config):
    for line in MARKERS:
        config.addinivalue_line("markers", line)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-sim"):
        return
    if "sim" in (config.option.markexpr or ""):
        return  # explicitly selected with -m sim
    skip_sim = pytest.mark.skip(reason="sim sweeps are opt-in: pass --run-sim")
    for item in items:
        if "sim" in item.keywords:
            item.add_marker(skip_sim)
