"""Radix-``d`` word arithmetic.

The digraph families studied in Coudert, Ferreira and Pérennes (IPDPS 2000)
are *alphabet digraphs*: their vertices are words of a fixed length ``D`` over
the alphabet ``Z_d = {0, 1, ..., d-1}``.  Throughout the paper (and this
library) a word ``x = x_{D-1} x_{D-2} ... x_1 x_0`` is identified with the
integer ``u = sum_i x_i * d**i`` (Remark 2.6 of the paper), so that

* ``x_0`` is the **rightmost** letter (least-significant digit), and
* ``x_{D-1}`` is the **leftmost** letter (most-significant digit).

This module provides conversions between the two representations, both for
single words (tuples of ``int``) and vectorised for whole vertex sets (numpy
arrays), together with the elementary word operations (shifts, digit reads and
writes) used by the rest of the library.

All functions validate their inputs; invalid alphabets or out-of-range digits
raise :class:`ValueError` so that errors surface close to their cause.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "Word",
    "check_alphabet",
    "word_to_int",
    "int_to_word",
    "word_length",
    "all_words",
    "word_table",
    "words_to_ints",
    "ints_to_words",
    "left_shift",
    "right_shift",
    "digit",
    "with_digit",
    "concat",
    "split",
    "hamming_distance",
    "longest_overlap",
]

#: A word is a tuple of digits ``(x_{D-1}, ..., x_1, x_0)`` — most significant
#: digit first, matching the paper's left-to-right notation.
Word = tuple[int, ...]


def check_alphabet(d: int, D: int | None = None) -> None:
    """Validate an alphabet size ``d`` (and optionally a word length ``D``).

    Parameters
    ----------
    d:
        Alphabet cardinality; must be an integer ``>= 1``.
    D:
        Optional word length; must be an integer ``>= 1`` when given.

    Raises
    ------
    ValueError
        If either parameter is out of range.
    """
    if not isinstance(d, (int, np.integer)) or d < 1:
        raise ValueError(f"alphabet size d must be a positive integer, got {d!r}")
    if D is not None and (not isinstance(D, (int, np.integer)) or D < 1):
        raise ValueError(f"word length D must be a positive integer, got {D!r}")


def _check_digits(word: Sequence[int], d: int) -> None:
    for letter in word:
        if not 0 <= int(letter) < d:
            raise ValueError(f"digit {letter!r} out of range for alphabet Z_{d}")


def word_to_int(word: Sequence[int], d: int) -> int:
    """Convert a word ``x_{D-1} ... x_0`` to its integer value ``sum x_i d^i``.

    The first element of ``word`` is the most-significant digit, matching the
    paper's notation ``x = x_{D-1} x_{D-2} ... x_1 x_0``.

    >>> word_to_int((1, 0, 1), 2)
    5
    """
    check_alphabet(d)
    _check_digits(word, d)
    value = 0
    for letter in word:
        value = value * d + int(letter)
    return value


def int_to_word(value: int, d: int, D: int) -> Word:
    """Convert an integer in ``Z_{d^D}`` to its length-``D`` word.

    >>> int_to_word(5, 2, 3)
    (1, 0, 1)
    """
    check_alphabet(d, D)
    n = d**D
    if not 0 <= value < n:
        raise ValueError(f"value {value} out of range for Z_{d}^{D} (0..{n - 1})")
    digits = []
    for _ in range(D):
        digits.append(value % d)
        value //= d
    return tuple(reversed(digits))


def word_length(n: int, d: int) -> int:
    """Return the smallest ``D >= 0`` with ``d**D == n``; raise if none exists.

    ``n == 1`` yields ``D == 0`` (the empty word) for every alphabet — the
    only value consistent with the contract, since ``d**1 == d != 1`` for
    ``d >= 2``.  For ``d == 1``, ``n == 1`` is the only representable size.

    >>> word_length(8, 2)
    3
    >>> word_length(1, 2)
    0
    """
    check_alphabet(d)
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if n == 1:
        return 0
    if d == 1:
        raise ValueError("alphabet of size 1 only supports n == 1")
    D = 0
    value = 1
    while value < n:
        value *= d
        D += 1
    if value != n:
        raise ValueError(f"{n} is not a power of {d}")
    return D


def all_words(d: int, D: int) -> list[Word]:
    """Enumerate all ``d**D`` words of length ``D`` in integer order.

    The ``i``-th element of the returned list is ``int_to_word(i, d, D)``.
    """
    check_alphabet(d, D)
    return [int_to_word(i, d, D) for i in range(d**D)]


def word_table(d: int, D: int) -> np.ndarray:
    """Return the ``(d**D, D)`` array of digits of every word, vectorised.

    Row ``u`` holds ``(x_{D-1}, ..., x_0)`` for the word with integer value
    ``u``; column ``0`` is therefore the most-significant digit.  This is the
    vectorised counterpart of :func:`all_words` and is the preferred input for
    bulk digit manipulations (cf. the HPC guideline of replacing Python loops
    over vertices by whole-array operations).
    """
    check_alphabet(d, D)
    n = d**D
    values = np.arange(n, dtype=np.int64)
    powers = d ** np.arange(D - 1, -1, -1, dtype=np.int64)
    return (values[:, None] // powers[None, :]) % d


def words_to_ints(words: np.ndarray, d: int) -> np.ndarray:
    """Vectorised inverse of :func:`word_table` for an ``(m, D)`` digit array."""
    check_alphabet(d)
    words = np.asarray(words, dtype=np.int64)
    if words.ndim != 2:
        raise ValueError("words must be a 2-D array of digits")
    if words.size and (words.min() < 0 or words.max() >= d):
        raise ValueError(f"digits out of range for alphabet Z_{d}")
    D = words.shape[1]
    powers = d ** np.arange(D - 1, -1, -1, dtype=np.int64)
    return words @ powers


def ints_to_words(values: np.ndarray, d: int, D: int) -> np.ndarray:
    """Vectorised :func:`int_to_word` for an array of integer vertex labels."""
    check_alphabet(d, D)
    values = np.asarray(values, dtype=np.int64)
    n = d**D
    if values.size and (values.min() < 0 or values.max() >= n):
        raise ValueError(f"values out of range for Z_{d}^{D}")
    powers = d ** np.arange(D - 1, -1, -1, dtype=np.int64)
    return (values[..., None] // powers) % d


def left_shift(word: Sequence[int], new_last: int, d: int) -> Word:
    """De Bruijn successor: drop ``x_{D-1}``, append ``new_last`` on the right.

    ``x_{D-1} x_{D-2} ... x_0  ->  x_{D-2} ... x_0 λ`` (Definition 2.2).

    >>> left_shift((1, 0, 1), 0, 2)
    (0, 1, 0)
    """
    check_alphabet(d)
    _check_digits(word, d)
    if not 0 <= new_last < d:
        raise ValueError(f"new digit {new_last} out of range for Z_{d}")
    return tuple(word[1:]) + (int(new_last),)


def right_shift(word: Sequence[int], new_first: int, d: int) -> Word:
    """De Bruijn predecessor: drop ``x_0``, prepend ``new_first`` on the left."""
    check_alphabet(d)
    _check_digits(word, d)
    if not 0 <= new_first < d:
        raise ValueError(f"new digit {new_first} out of range for Z_{d}")
    return (int(new_first),) + tuple(word[:-1])


def digit(word: Sequence[int], position: int) -> int:
    """Return letter ``x_position`` (position 0 is the rightmost letter).

    >>> digit((1, 0, 1), 0)
    1
    >>> digit((1, 0, 1), 2)
    1
    >>> digit((1, 0, 1), 1)
    0
    """
    D = len(word)
    if not 0 <= position < D:
        raise ValueError(f"position {position} out of range for word of length {D}")
    return int(word[D - 1 - position])


def with_digit(word: Sequence[int], position: int, value: int, d: int) -> Word:
    """Return a copy of ``word`` with letter ``x_position`` replaced by ``value``."""
    check_alphabet(d)
    if not 0 <= value < d:
        raise ValueError(f"digit {value} out of range for Z_{d}")
    D = len(word)
    if not 0 <= position < D:
        raise ValueError(f"position {position} out of range for word of length {D}")
    out = list(word)
    out[D - 1 - position] = int(value)
    return tuple(out)


def concat(*parts: Iterable[int]) -> Word:
    """Concatenate word fragments left-to-right (most significant first)."""
    out: list[int] = []
    for part in parts:
        out.extend(int(x) for x in part)
    return tuple(out)


def split(word: Sequence[int], *lengths: int) -> tuple[Word, ...]:
    """Split a word into consecutive fragments of the given lengths.

    The lengths must sum to ``len(word)``.  Fragments are returned
    left-to-right, mirroring the ``!(l) !(eps) !(k)`` decompositions used in
    the proof of Proposition 4.1.
    """
    if sum(lengths) != len(word):
        raise ValueError(
            f"fragment lengths {lengths} do not sum to word length {len(word)}"
        )
    fragments = []
    start = 0
    for length in lengths:
        fragments.append(tuple(int(x) for x in word[start : start + length]))
        start += length
    return tuple(fragments)


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of positions at which two equal-length words differ."""
    if len(a) != len(b):
        raise ValueError("words must have equal length")
    return sum(1 for x, y in zip(a, b) if int(x) != int(y))


def longest_overlap(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest suffix of ``a`` that is a prefix of ``b``.

    This is the quantity that drives shortest-path routing in the de Bruijn
    digraph: the distance from ``a`` to ``b`` in ``B(d, D)`` is
    ``D - longest_overlap(a, b)``.
    """
    if len(a) != len(b):
        raise ValueError("words must have equal length")
    D = len(a)
    for k in range(D, -1, -1):
        if k == 0 or tuple(a[D - k :]) == tuple(b[:k]):
            return k
    return 0
