"""Composable simulation scenarios: arrivals × buffers × faults × rerouting.

The paper's headline structural claim is that de Bruijn/Kautz-style
topologies give ``d`` arc-disjoint paths and therefore graceful degradation
under link/node loss (Section 5 context; PAPER.md).  Exercising that claim
needs more than the healthy, infinite-buffer base model — it needs a
*scenario space*.  This module decomposes a simulation run into four
pluggable layers, each an explicit, picklable, deterministic value:

* **ArrivalProcess** — who sends to whom, when.  :class:`UniformArrivals`,
  :class:`HotspotArrivals` (the adversarial single-target pattern),
  :class:`PermutationArrivals`, :class:`BurstyArrivals` (on/off trains) and
  :class:`DiurnalArrivals` (sinusoidally modulated Poisson, thinned).  The
  first three delegate to the generators of
  :mod:`repro.simulation.workloads` and consume the *identical* RNG stream
  as :func:`~repro.simulation.workloads.make_workload`, so existing traffic
  digests (and therefore chunk-store ids) are unchanged.
* **BufferedLinkModel** — finite per-link queues with drop/retransmit
  accounting (:class:`repro.simulation.network.BufferedLinkModel`; plain
  :class:`~repro.simulation.network.LinkModel` means infinite buffers).
* **FaultPlan** — a deterministic timeline of link/node down/up events,
  injected into both engines' event queues (fail-stop: in-flight
  transmissions complete, new acquisitions see the flipped state).
* **ReroutePolicy** — ``"none"`` (a severed primary hop drops the message,
  reason ``"fault"``) or ``"arc-disjoint"`` (greedy deflection over the
  healthy distance table of :func:`repro.routing.paths.routing_table_for`,
  walking one of the alternate arc-disjoint paths the topologies
  guarantee).

A :class:`Scenario` composes the four and threads through both engines
(``NetworkSimulator(graph, scenario=...)`` /
``BatchedNetworkSimulator(graph, scenario=...).run_many``), the sharded
driver (its :meth:`Scenario.digest` joins the chunk fingerprint), the
``repro scenarios`` CLI subcommand and the ``BENCH_scenarios.json``
throughput–latency Pareto benchmark (:func:`run_scenario_sweep`).

Determinism and seeding contract: every layer is a frozen dataclass whose
behaviour is a pure function of its fields (plus, for arrivals, the seed
passed to :meth:`Scenario.traffic`); :meth:`Scenario.digest` hashes the
sorted-keys JSON of the whole composition, so two hosts agree on a
scenario's identity exactly when they would simulate the same thing.
"""

from __future__ import annotations

import hashlib
import json
import math
import time as _time
from dataclasses import dataclass, field, replace
from typing import ClassVar

import numpy as np

from repro.graphs.digraph import BaseDigraph
from repro.simulation.network import (
    SIMULATOR_ENGINES,
    BatchedNetworkSimulator,
    BufferedLinkModel,
    LinkModel,
    NetworkStats,
)
from repro.simulation.workloads import (
    Traffic,
    hotspot_pairs,
    permutation_pairs,
    poisson_arrival_times,
    uniform_random_pairs,
)

__all__ = [
    "validate_traffic",
    "UniformArrivals",
    "HotspotArrivals",
    "PermutationArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ARRIVAL_KINDS",
    "make_arrivals",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "REROUTE_KINDS",
    "Scenario",
    "ScenarioPoint",
    "ScenarioSweep",
    "run_scenario_sweep",
]


def _as_rng(rng) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def validate_traffic(traffic, num_nodes: int | None = None) -> Traffic:
    """Fail fast on malformed traffic; returns the triples as a clean list.

    Rejects NaN/negative/infinite release times and (when ``num_nodes`` is
    given) out-of-range endpoints — at construction time, mirroring the
    :meth:`repro.simulation.network.LinkModel.from_hardware` validation of
    message sizes, instead of deep inside an engine run.  (Message *sizes*
    live in the link model: ``transmission_time`` is the size in time
    units, validated by ``LinkModel.__post_init__``.)
    """
    checked: Traffic = []
    for ident, triple in enumerate(traffic):
        try:
            source, destination, release = triple
        except (TypeError, ValueError):
            raise ValueError(
                f"message {ident} is not a (source, destination, time) triple: "
                f"{triple!r}"
            ) from None
        release = float(release)
        if math.isnan(release) or math.isinf(release) or release < 0:
            raise ValueError(
                f"message {ident} has invalid release time {release!r} "
                "(must be finite and non-negative)"
            )
        source, destination = int(source), int(destination)
        if num_nodes is not None and not (
            0 <= source < num_nodes and 0 <= destination < num_nodes
        ):
            raise ValueError(f"message {ident} has endpoints out of range")
        checked.append((source, destination, release))
    return checked


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
def _overlay_rate(pairs: Traffic, rate: float | None, generator) -> Traffic:
    """The ``make_workload`` rate overlay: Poisson times over fixed pairs."""
    if rate is None:
        return pairs
    times = poisson_arrival_times(len(pairs), rate, generator)
    return [
        (source, destination, float(t))
        for (source, destination, _), t in zip(pairs, times)
    ]


def _check_rate(rate: float | None) -> None:
    if rate is not None and not (np.isfinite(rate) and rate > 0):
        raise ValueError(f"rate must be finite and positive, got {rate!r}")


@dataclass(frozen=True)
class UniformArrivals:
    """Uniform random pairs; ``rate=None`` injects everything at time 0."""

    kind: ClassVar[str] = "uniform"
    num_messages: int = 100
    rate: float | None = None

    def __post_init__(self):
        if self.num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        _check_rate(self.rate)

    def traffic(self, num_nodes: int, rng=None) -> Traffic:
        generator = _as_rng(rng)
        pairs = uniform_random_pairs(num_nodes, self.num_messages, generator)
        return _overlay_rate(pairs, self.rate, generator)

    def with_rate(self, rate: float | None) -> "UniformArrivals":
        return replace(self, rate=rate)

    def to_json(self) -> dict:
        return {"kind": self.kind, "num_messages": self.num_messages, "rate": self.rate}


@dataclass(frozen=True)
class HotspotArrivals:
    """Adversarial hotspot: a fraction of messages gang up on one node."""

    kind: ClassVar[str] = "hotspot"
    num_messages: int = 100
    hotspot: int = 0
    hotspot_fraction: float = 0.5
    rate: float | None = None

    def __post_init__(self):
        if self.num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if self.hotspot < 0:
            raise ValueError("hotspot node must be non-negative")
        _check_rate(self.rate)

    def traffic(self, num_nodes: int, rng=None) -> Traffic:
        generator = _as_rng(rng)
        pairs = hotspot_pairs(
            num_nodes,
            self.num_messages,
            self.hotspot,
            self.hotspot_fraction,
            generator,
        )
        return _overlay_rate(pairs, self.rate, generator)

    def with_rate(self, rate: float | None) -> "HotspotArrivals":
        return replace(self, rate=rate)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "num_messages": self.num_messages,
            "hotspot": self.hotspot,
            "hotspot_fraction": self.hotspot_fraction,
            "rate": self.rate,
        }


@dataclass(frozen=True)
class PermutationArrivals:
    """One message per node along a random derangement-ish permutation."""

    kind: ClassVar[str] = "permutation"
    rate: float | None = None

    def __post_init__(self):
        _check_rate(self.rate)

    def traffic(self, num_nodes: int, rng=None) -> Traffic:
        generator = _as_rng(rng)
        pairs = permutation_pairs(num_nodes, generator)
        return _overlay_rate(pairs, self.rate, generator)

    def with_rate(self, rate: float | None) -> "PermutationArrivals":
        return replace(self, rate=rate)

    def to_json(self) -> dict:
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True)
class BurstyArrivals:
    """On/off bursts: trains of back-to-back messages separated by silences.

    Messages arrive in bursts of ``burst_size``; within a burst the gaps are
    exponential with rate ``burst_rate``, and consecutive bursts are
    separated by an exponential silence of mean ``gap``.  Endpoint pairs are
    uniform random.  The long-run offered rate is roughly
    ``burst_size / (gap + burst_size / burst_rate)``.
    """

    kind: ClassVar[str] = "bursty"
    num_messages: int = 100
    burst_size: int = 8
    burst_rate: float = 8.0
    gap: float = 4.0

    def __post_init__(self):
        if self.num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if not (np.isfinite(self.burst_rate) and self.burst_rate > 0):
            raise ValueError("burst_rate must be finite and positive")
        if not (np.isfinite(self.gap) and self.gap >= 0):
            raise ValueError("gap must be finite and non-negative")

    def traffic(self, num_nodes: int, rng=None) -> Traffic:
        generator = _as_rng(rng)
        pairs = uniform_random_pairs(num_nodes, self.num_messages, generator)
        times: list[float] = []
        clock = 0.0
        emitted = 0
        while emitted < self.num_messages:
            clock += float(generator.exponential(self.gap)) if self.gap else 0.0
            size = min(self.burst_size, self.num_messages - emitted)
            for gap in generator.exponential(1.0 / self.burst_rate, size=size):
                clock += float(gap)
                times.append(clock)
            emitted += size
        return [
            (source, destination, t)
            for (source, destination, _), t in zip(pairs, times)
        ]

    def with_rate(self, rate: float | None) -> "BurstyArrivals":
        """Scale the within-burst rate (the load knob of the Pareto sweep)."""
        if rate is None:
            return self
        _check_rate(rate)
        return replace(self, burst_rate=rate)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "num_messages": self.num_messages,
            "burst_size": self.burst_size,
            "burst_rate": self.burst_rate,
            "gap": self.gap,
        }


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidally modulated Poisson arrivals (thinning construction).

    The instantaneous rate swings between ``trough_rate`` and ``peak_rate``
    over one ``period``; candidate arrivals are drawn at the peak rate and
    thinned with probability ``rate(t) / peak_rate`` — the standard exact
    construction for a non-homogeneous Poisson process.  Endpoint pairs are
    uniform random.
    """

    kind: ClassVar[str] = "diurnal"
    num_messages: int = 100
    peak_rate: float = 2.0
    trough_rate: float = 0.2
    period: float = 50.0

    def __post_init__(self):
        if self.num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        if not (np.isfinite(self.peak_rate) and self.peak_rate > 0):
            raise ValueError("peak_rate must be finite and positive")
        if not (np.isfinite(self.trough_rate) and self.trough_rate > 0):
            raise ValueError("trough_rate must be finite and positive")
        if self.trough_rate > self.peak_rate:
            raise ValueError("trough_rate must not exceed peak_rate")
        if not (np.isfinite(self.period) and self.period > 0):
            raise ValueError("period must be finite and positive")

    def traffic(self, num_nodes: int, rng=None) -> Traffic:
        generator = _as_rng(rng)
        pairs = uniform_random_pairs(num_nodes, self.num_messages, generator)
        times: list[float] = []
        clock = 0.0
        swing = self.peak_rate - self.trough_rate
        while len(times) < self.num_messages:
            clock += float(generator.exponential(1.0 / self.peak_rate))
            phase = math.sin(2.0 * math.pi * clock / self.period)
            instantaneous = self.trough_rate + swing * 0.5 * (1.0 + phase)
            if generator.random() * self.peak_rate <= instantaneous:
                times.append(clock)
        return [
            (source, destination, t)
            for (source, destination, _), t in zip(pairs, times)
        ]

    def with_rate(self, rate: float | None) -> "DiurnalArrivals":
        """Scale the peak rate, keeping the trough/peak ratio."""
        if rate is None:
            return self
        _check_rate(rate)
        ratio = self.trough_rate / self.peak_rate
        return replace(self, peak_rate=rate, trough_rate=rate * ratio)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "num_messages": self.num_messages,
            "peak_rate": self.peak_rate,
            "trough_rate": self.trough_rate,
            "period": self.period,
        }


#: Arrival-process registry: kind name -> class (CLI and JSON round-trips).
ARRIVAL_KINDS = {
    cls.kind: cls
    for cls in (
        UniformArrivals,
        HotspotArrivals,
        PermutationArrivals,
        BurstyArrivals,
        DiurnalArrivals,
    )
}


def make_arrivals(kind: str, **params):
    """Build an arrival process from its kind name and parameters."""
    try:
        cls = ARRIVAL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown arrival kind {kind!r} (expected one of {sorted(ARRIVAL_KINDS)})"
        ) from None
    return cls(**params)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
FAULT_KINDS = ("link_down", "link_up", "node_down", "node_up")


@dataclass(frozen=True)
class FaultEvent:
    """One fail-stop state flip: a link or node goes down (or comes back).

    ``target`` is a link id — the arc's index in ``graph.arcs()``
    enumeration order, the numbering both engines use — for the link kinds,
    and a vertex id for the node kinds.  Range checking against a concrete
    topology happens when the plan enters an engine.
    """

    time: float
    kind: str
    target: int

    def __post_init__(self):
        if not (np.isfinite(self.time) and self.time >= 0):
            raise ValueError(
                f"fault time must be finite and non-negative, got {self.time!r}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.target < 0:
            raise ValueError(f"fault target must be non-negative, got {self.target!r}")

    def to_json(self) -> dict:
        return {"time": self.time, "kind": self.kind, "target": self.target}


def _link_ids_between(graph: BaseDigraph, tail: int, head: int) -> list[int]:
    """All parallel link ids of the ``(tail, head)`` arcs (engine numbering)."""
    ids = [
        index for index, (u, v) in enumerate(graph.arcs()) if (u, v) == (tail, head)
    ]
    if not ids:
        raise ValueError(f"no arc {tail} -> {head} in {graph.name or 'graph'}")
    return ids


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, time-sorted timeline of :class:`FaultEvent` flips.

    Events are normalised to chronological order (stable, so equal-time
    events keep their given relative order — that order is also the order
    both engines apply them in).  An empty plan is the healthy network.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        ordered = tuple(
            sorted(self.events, key=lambda event: event.time)
        )
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls(())

    @classmethod
    def cut_links(
        cls,
        graph: BaseDigraph,
        tail: int,
        head: int,
        *,
        at: float,
        heal_at: float | None = None,
    ) -> "FaultPlan":
        """Sever every parallel link ``tail -> head`` at ``at`` (heal later)."""
        events = [
            FaultEvent(at, "link_down", link_id)
            for link_id in _link_ids_between(graph, tail, head)
        ]
        if heal_at is not None:
            events += [
                FaultEvent(heal_at, "link_up", event.target) for event in events
            ]
        return cls(tuple(events))

    @classmethod
    def node_outage(
        cls, node: int, *, at: float, heal_at: float | None = None
    ) -> "FaultPlan":
        events = [FaultEvent(at, "node_down", node)]
        if heal_at is not None:
            events.append(FaultEvent(heal_at, "node_up", node))
        return cls(tuple(events))

    @classmethod
    def random_link_failures(
        cls,
        graph: BaseDigraph,
        count: int,
        *,
        at: float = 0.0,
        heal_after: float | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """``count`` distinct links chosen by ``seed``, all down at ``at``."""
        m = graph.num_arcs
        if not 0 <= count <= m:
            raise ValueError(f"count must be in [0, {m}], got {count}")
        chosen = np.random.default_rng(seed).choice(m, size=count, replace=False)
        events = [FaultEvent(at, "link_down", int(link)) for link in sorted(chosen)]
        if heal_after is not None:
            events += [
                FaultEvent(at + heal_after, "link_up", event.target)
                for event in events
            ]
        return cls(tuple(events))

    @classmethod
    def all_links_down(cls, graph: BaseDigraph, *, at: float = 0.0) -> "FaultPlan":
        """The degenerate blackout: every link down at ``at`` (nothing hangs —
        every message drops with reason ``"fault"`` at its next hop)."""
        return cls(
            tuple(FaultEvent(at, "link_down", link) for link in range(graph.num_arcs))
        )

    def to_json(self) -> list[dict]:
        return [event.to_json() for event in self.events]


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------
#: Reroute policies: drop on a severed primary hop, or deflect onto the
#: alternate arc-disjoint paths (greedy over the healthy distance table).
REROUTE_KINDS = ("none", "arc-disjoint")


@dataclass(frozen=True)
class Scenario:
    """The composition of the four scenario layers; the unit the engines run.

    Attributes
    ----------
    arrivals:
        An arrival process (anything with ``traffic(num_nodes, rng)``,
        ``with_rate(rate)`` and ``to_json()`` — see :data:`ARRIVAL_KINDS`).
    link:
        The link model; a :class:`~repro.simulation.network.
        BufferedLinkModel` turns on finite buffers and backpressure.
    faults:
        The fault timeline (default: healthy).
    reroute:
        One of :data:`REROUTE_KINDS`.
    max_hops:
        Per-message hop TTL.  ``None`` means unlimited — except that an
        active reroute policy defaults to ``4 * num_nodes`` (deflection
        routing can cycle; the TTL turns a potential livelock into a
        ``"hops"`` drop surfaced in :class:`~repro.simulation.network.
        NetworkStats`).
    """

    arrivals: object = field(default_factory=UniformArrivals)
    link: LinkModel = field(default_factory=LinkModel)
    faults: FaultPlan = field(default_factory=FaultPlan)
    reroute: str = "none"
    max_hops: int | None = None

    def __post_init__(self):
        for method in ("traffic", "with_rate", "to_json"):
            if not callable(getattr(self.arrivals, method, None)):
                raise ValueError(
                    f"arrivals must implement {method}(); got {self.arrivals!r}"
                )
        if not isinstance(self.link, LinkModel):
            raise ValueError(f"link must be a LinkModel, got {self.link!r}")
        if not isinstance(self.faults, FaultPlan):
            raise ValueError(f"faults must be a FaultPlan, got {self.faults!r}")
        if self.reroute not in REROUTE_KINDS:
            raise ValueError(
                f"reroute must be one of {REROUTE_KINDS}, got {self.reroute!r}"
            )
        if self.max_hops is not None and self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1 or None, got {self.max_hops!r}")

    # ------------------------------------------------------------- engines
    def needs_event_exact(self) -> bool:
        """Does this scenario degrade the network?

        True switches both engines to the per-event scenario loop; False
        (arrival-only scenarios) keeps the unchanged base-model paths —
        including the batched engine's full vector path.
        """
        return bool(
            self.faults
            or self.reroute != "none"
            or self.max_hops is not None
            or getattr(self.link, "capacity", None) is not None
        )

    def effective_max_hops(self, num_nodes: int) -> int | None:
        if self.max_hops is not None:
            return self.max_hops
        if self.reroute != "none":
            return 4 * num_nodes
        return None

    # -------------------------------------------------------------- traffic
    def traffic(self, num_nodes: int, rng=None) -> Traffic:
        """One validated traffic drawn from the arrival process."""
        return validate_traffic(self.arrivals.traffic(num_nodes, rng), num_nodes)

    def with_rate(self, rate: float | None) -> "Scenario":
        """The scenario with its arrival process's load knob set to ``rate``."""
        return replace(self, arrivals=self.arrivals.with_rate(rate))

    # ------------------------------------------------------------- identity
    def to_json(self) -> dict:
        link = {
            "latency": self.link.latency,
            "transmission_time": self.link.transmission_time,
        }
        if isinstance(self.link, BufferedLinkModel):
            link.update(
                capacity=self.link.capacity,
                on_full=self.link.on_full,
                retry_delay=self.link.retry_delay,
                max_retries=self.link.max_retries,
            )
        return {
            "arrivals": self.arrivals.to_json(),
            "link": link,
            "faults": self.faults.to_json(),
            "reroute": self.reroute,
            "max_hops": self.max_hops,
        }

    def digest(self) -> str:
        """Stable identity of the composition (joins chunk fingerprints)."""
        payload = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        parts = [self.arrivals.to_json().get("kind", "custom")]
        capacity = getattr(self.link, "capacity", None)
        if capacity is not None:
            parts.append(f"buffers={capacity}/{getattr(self.link, 'on_full', '?')}")
        if self.faults:
            parts.append(f"faults={len(self.faults.events)}")
        if self.reroute != "none":
            parts.append(f"reroute={self.reroute}")
        if self.max_hops is not None:
            parts.append(f"ttl={self.max_hops}")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Throughput–latency Pareto sweeps (the BENCH_scenarios.json driver)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioPoint:
    """One simulated ``(rate, seed)`` point of a scenario sweep."""

    rate: float | None
    seed: int
    num_messages: int
    stats: NetworkStats


@dataclass
class ScenarioSweep:
    """Result of :func:`run_scenario_sweep`: one scenario's load sweep.

    :meth:`curves` aggregates the seeds of each rate into one row and marks
    the rows on the throughput–latency Pareto front (maximise throughput,
    minimise mean latency); :meth:`to_json` is the ``BENCH_scenarios.json``
    entry format.
    """

    graph_name: str
    num_nodes: int
    num_links: int
    engine: str
    scenario: Scenario
    points: list[ScenarioPoint]
    wall_time_s: float
    #: The kernel backend the batched engine ran on (``"numpy"`` for the
    #: vectorised path, for the reference event engine, and always for
    #: degrading scenarios — those run the per-event scalar loop on every
    #: backend).  Recorded so ``wall_time_s`` is attributable to a backend.
    kernel_backend: str = "numpy"

    def curves(self) -> list[dict]:
        grouped: dict[float | None, list[ScenarioPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.rate, []).append(point)
        rows = []
        for rate in sorted(grouped, key=lambda r: (r is not None, r or 0.0)):
            points = grouped[rate]
            stats = [point.stats for point in points]
            rows.append(
                {
                    "rate": rate,
                    "seeds": len(points),
                    "messages": sum(point.num_messages for point in points),
                    "delivered": sum(s.delivered for s in stats),
                    "undelivered": sum(s.undelivered for s in stats),
                    "dropped_buffer": sum(s.dropped_buffer for s in stats),
                    "dropped_fault": sum(s.dropped_fault for s in stats),
                    "dropped_hops": sum(s.dropped_hops for s in stats),
                    "retransmits": sum(s.retransmits for s in stats),
                    "rerouted_hops": sum(s.rerouted_hops for s in stats),
                    "throughput": float(np.mean([s.throughput() for s in stats])),
                    "mean_latency": float(np.mean([s.mean_latency for s in stats])),
                    "max_latency": float(np.max([s.max_latency for s in stats])),
                }
            )
        for row, on_front in zip(rows, pareto_front(rows)):
            row["pareto"] = on_front
        return rows

    def to_json(self) -> dict:
        return {
            "graph": self.graph_name,
            "nodes": self.num_nodes,
            "links": self.num_links,
            "engine": self.engine,
            "scenario": self.scenario.to_json(),
            "scenario_digest": self.scenario.digest(),
            "kernel_backend": self.kernel_backend,
            "wall_time_s": round(self.wall_time_s, 4),
            "curves": self.curves(),
        }


def pareto_front(rows: list[dict]) -> list[bool]:
    """Which rows are Pareto-optimal (max throughput, min mean latency)?"""
    flags = []
    for row in rows:
        dominated = any(
            other is not row
            and other["throughput"] >= row["throughput"]
            and other["mean_latency"] <= row["mean_latency"]
            and (
                other["throughput"] > row["throughput"]
                or other["mean_latency"] < row["mean_latency"]
            )
            for other in rows
        )
        flags.append(not dominated)
    return flags


def run_scenario_sweep(
    graph: BaseDigraph,
    scenario: Scenario,
    *,
    rates=(None,),
    seeds=range(3),
    engine: str = "batched",
    router: str | None = None,
    until: float | None = None,
) -> ScenarioSweep:
    """Sweep the offered-load axis of one scenario on one topology.

    For each rate, the scenario's arrival process is re-parameterised with
    :meth:`Scenario.with_rate` and one traffic per seed is drawn
    (deterministically — the sharded/fleet paths can regenerate the same
    traffics from the same seeds).  With ``engine="batched"`` every
    ``(rate, seed)`` combination runs in one pooled
    :meth:`~repro.simulation.network.BatchedNetworkSimulator.run_many`
    pass; ``engine="event"`` runs the reference loop per combination — the
    cross-check the scenario parity suite leans on.
    """
    if engine not in SIMULATOR_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {sorted(SIMULATOR_ENGINES)})"
        )
    n = graph.num_vertices
    combos = [(rate, int(seed)) for rate in rates for seed in seeds]
    traffics = [
        scenario.with_rate(rate).traffic(n, rng=seed) for rate, seed in combos
    ]
    simulator = SIMULATOR_ENGINES[engine](graph, scenario=scenario, router=router)
    start = _time.perf_counter()
    if isinstance(simulator, BatchedNetworkSimulator):
        results = simulator.run_many(traffics, until=until, return_messages=False)
        stats_list = [stats for stats, _ in results]
    else:
        stats_list = [simulator.run(traffic, until=until)[0] for traffic in traffics]
    wall = _time.perf_counter() - start
    points = [
        ScenarioPoint(rate=rate, seed=seed, num_messages=len(traffic), stats=stats)
        for (rate, seed), traffic, stats in zip(combos, traffics, stats_list)
    ]
    return ScenarioSweep(
        graph_name=graph.name or f"digraph(n={n})",
        num_nodes=n,
        num_links=graph.num_arcs,
        engine=engine,
        scenario=scenario,
        points=points,
        wall_time_s=wall,
        kernel_backend=getattr(simulator, "kernel_backend", "numpy"),
    )
