"""Store-and-forward network simulation on top of a digraph topology.

The model is intentionally simple and matches how the multihop optical
networks cited by the paper (ShuffleNet, GEMNET, stack-Kautz, refs. [13, 22,
27]) are usually analysed at the topology level:

* every node has one injection port and ``d`` output links (its out-arcs);
  parallel arcs are *distinct* links, so a multigraph topology really has the
  extra capacity its arc multiset promises;
* a link transmits one message at a time; a message occupies a link for
  ``link.transmission_time`` and arrives ``link.latency`` later
  (store-and-forward, no cut-through);
* routing is deterministic shortest-path through a pluggable
  :class:`repro.routing.routers.Router`: the dense all-pairs table for small
  topologies, table-free O(D) shift routing on word labels for the de
  Bruijn/Kautz/``H(d^p', d^q', d)`` families, or an LRU of on-demand
  per-source rows for arbitrary large digraphs — all bit-identical on
  routes, so the engine parity contract is router-independent;
* link contention is resolved FIFO.

The per-hop latency/transmission constants default to the OTIS hardware
model values (:class:`repro.otis.hardware.HardwareModel`), so simulating the
same logical topology with an electrical link model versus the free-space
optical one reproduces the qualitative speed/power comparison that motivates
the paper (Section 1).

Two engines implement the model:

* :class:`NetworkSimulator` — the reference event-at-a-time loop (heap of
  callback closures).  Kept as the cross-checked oracle, exactly as
  ``repro.graphs.apsp`` kept the matrix reference paths.
* :class:`BatchedNetworkSimulator` — the vectorised hot path.  Per-link state
  (``busy_until``, FIFO queue depth) and per-message state (location, hop
  count, pending-event deadline) are pooled into numpy arrays keyed by
  link/message index; each step pops *all* events sharing the minimum
  timestamp (:class:`repro.simulation.events.BatchEventQueue`) and resolves
  link acquisitions, queue pushes and arrivals as whole-array operations.

Batched-engine contract (what is vectorised, what stays FIFO-exact):

* Event *selection* is batched, event *semantics* are not: simultaneous
  events resolve in insertion-sequence order, matching the reference heap.
* Earliest-free parallel-link selection within a batch is a k-way merge of
  the per-link free-time chains of each ``(u, v)`` link group (ties broken by
  link id), which is provably the same assignment the one-at-a-time greedy
  argmin produces.
* Floating-point arithmetic replicates the reference op-for-op: start times
  are built by sequential ``+ transmission_time`` accumulation (``cumsum``
  chains), never by ``start + k*T``, so ``NetworkStats`` and per-message
  latency histograms are *bit-identical* between engines (enforced by
  ``tests/test_simulation_parity.py``).
* Per-link FIFO order is exact: messages reserving one link are served in
  event order, never reordered by the batching.
* :meth:`BatchedNetworkSimulator.run_many` stacks independent workloads into
  one pooled simulation (replicated link arrays, shared router), which is
  how the sweep driver runs many seeds/load levels in one pass; the
  process-sharded scale-out lives in :mod:`repro.simulation.sharding`.

Scenario runs (degraded-mode contract):

Both engines accept ``scenario=`` (a :class:`repro.simulation.scenarios.
Scenario`) composing finite link buffers (:class:`BufferedLinkModel`),
deterministic fault timelines and a reroute policy on top of the healthy
model.  A scenario that actually degrades the network
(``scenario.needs_event_exact()``) is simulated with the *per-event scalar
kernel* in both engines: the batched engine keeps its
:class:`~repro.simulation.events.BatchEventQueue` batching for event
selection (fault events occupy the slots past the message range) but
resolves every link acquisition with the same scalar float ops as the
reference loop, so the bit-identical parity contract extends to every
layer combination — failures, finite buffers, retransmits, deflection
rerouting (enforced by ``tests/test_scenarios.py``).  An arrival-only
scenario (default link, no faults) runs through the unchanged vector path:
healthy workloads pay nothing for the scenario seam.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import kernels as _kernels
from repro.graphs.digraph import BaseDigraph
from repro.routing.paths import RoutingTable
from repro.routing.routers import Router, resolve_router
from repro.simulation.events import BatchEventQueue, Simulator

__all__ = [
    "LinkModel",
    "BufferedLinkModel",
    "Message",
    "NetworkStats",
    "NetworkSimulator",
    "BatchedNetworkSimulator",
    "SIMULATOR_ENGINES",
]


@dataclass(frozen=True)
class LinkModel:
    """Timing parameters of one network link.

    Attributes
    ----------
    latency:
        Propagation + conversion delay of a hop (time units; ns if fed from
        the hardware model).
    transmission_time:
        Time the link stays busy per message (serialisation time).  This *is*
        the message size in time units (``message_bits / rate`` in
        :meth:`from_hardware`), so the "no negative/NaN message sizes" checks
        live here, at construction, not deep in the engines.
    """

    latency: float = 1.0
    transmission_time: float = 1.0

    def __post_init__(self):
        for name in ("latency", "transmission_time"):
            value = getattr(self, name)
            if not (np.isfinite(value) and value >= 0):
                raise ValueError(
                    f"{name} must be finite and non-negative, got {value!r}"
                )

    @classmethod
    def from_hardware(
        cls, hardware, *, message_bits: float = 1024.0, rate_gbps: float = 1.0
    ) -> "LinkModel":
        """Build a link model from a :class:`repro.otis.hardware.HardwareModel`.

        The latency is the optical one-hop latency (conversion + free-space
        flight); the transmission time is ``message_bits / rate``.  Both
        parameters must be positive — a zero or negative ``rate_gbps`` would
        silently produce an infinite or *negative* transmission time, which
        the simulators would then treat as a link that is never (or always)
        free.
        """
        if rate_gbps <= 0:
            raise ValueError(
                f"rate_gbps must be positive, got {rate_gbps!r} "
                "(a link cannot transmit at zero or negative rate)"
            )
        if message_bits <= 0:
            raise ValueError(f"message_bits must be positive, got {message_bits!r}")
        return cls(
            latency=hardware.optical_latency_ns(),
            transmission_time=message_bits / rate_gbps,
        )


#: ``BufferedLinkModel.on_full`` policies.
ON_FULL_POLICIES = ("drop", "retry")


@dataclass(frozen=True)
class BufferedLinkModel(LinkModel):
    """A :class:`LinkModel` with a finite per-link FIFO queue (backpressure).

    ``capacity`` bounds the number of messages simultaneously queued on (or
    in service at) one link — exactly the quantity the engines already track
    as the per-link FIFO depth (``max_link_queue`` reports its peak).  When
    every live parallel link between two endpoints is at capacity, the
    arriving message is either dropped (``on_full="drop"``, counted in
    ``NetworkStats.dropped_buffer``) or re-offered after ``retry_delay``
    (``on_full="retry"``, counted in ``retransmits``), up to ``max_retries``
    times before it is dropped after all.  ``capacity=None`` is the
    infinite-buffer base model; ``capacity=0`` is the degenerate
    nothing-ever-transmits configuration (every message drops or exhausts
    its retries — never hangs).
    """

    capacity: int | None = None
    on_full: str = "drop"
    retry_delay: float = 1.0
    max_retries: int = 16

    def __post_init__(self):
        super().__post_init__()
        if self.capacity is not None and self.capacity < 0:
            raise ValueError(f"capacity must be >= 0 or None, got {self.capacity!r}")
        if self.on_full not in ON_FULL_POLICIES:
            raise ValueError(
                f"on_full must be one of {ON_FULL_POLICIES}, got {self.on_full!r}"
            )
        if not (np.isfinite(self.retry_delay) and self.retry_delay > 0):
            raise ValueError(
                f"retry_delay must be finite and positive, got {self.retry_delay!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")


@dataclass
class Message:
    """One message travelling through the network.

    Attributes
    ----------
    ident:
        Unique message id.
    source, destination:
        Endpoints (node indices).
    creation_time:
        Time the message was injected at the source.
    arrival_time:
        Time it reached its destination (NaN until delivered).
    hops:
        Number of links traversed so far.
    drop_reason:
        None for delivered (or still-undelivered) messages; ``"buffer"``,
        ``"fault"`` or ``"hops"`` when a scenario run discarded the message
        (full buffers, a severed/down path, or the hop TTL).  Messages whose
        destination is unreachable in the healthy topology keep ``None`` —
        they are plain undelivered, same as in the base model.
    """

    ident: int
    source: int
    destination: int
    creation_time: float
    arrival_time: float = float("nan")
    hops: int = 0
    drop_reason: str | None = None

    @property
    def delivered(self) -> bool:
        """True once the message has reached its destination."""
        return not np.isnan(self.arrival_time)

    @property
    def latency(self) -> float:
        """End-to-end latency (NaN until delivered)."""
        return self.arrival_time - self.creation_time


@dataclass
class NetworkStats:
    """Aggregate statistics of one simulation run.

    The scenario counters (all zero in base-model runs) break the
    ``undelivered`` total down by cause: ``dropped_buffer`` (full finite
    buffers), ``dropped_fault`` (down node, or no live path and no reroute),
    ``dropped_hops`` (hop TTL exhausted).  ``retransmits`` counts retry
    re-offers under ``on_full="retry"`` and ``rerouted_hops`` counts
    transmissions that left the shortest-path next hop for a fault detour.
    """

    delivered: int
    undelivered: int
    makespan: float
    mean_latency: float
    max_latency: float
    mean_hops: float
    max_link_queue: int
    total_link_busy_time: float
    dropped_buffer: int = 0
    dropped_fault: int = 0
    dropped_hops: int = 0
    retransmits: int = 0
    rerouted_hops: int = 0

    def throughput(self) -> float:
        """Delivered messages per unit time (0 when nothing was delivered)."""
        if self.makespan <= 0 or self.delivered == 0:
            return 0.0
        return self.delivered / self.makespan


class _ScenarioState:
    """Mutable fault/reroute state of one scenario run, shared by both engines.

    Owns the link/node up-down flags, applies :class:`~repro.simulation.
    scenarios.FaultPlan` events (fail-stop: a fault flips a flag; in-flight
    transmissions complete, only *new* acquisitions see it) and answers
    next-hop queries under the scenario's reroute policy.  It performs **no**
    floating-point time arithmetic — transmission timing stays engine-local,
    so the float side of the parity contract is still enforced between two
    independent implementations.

    The ``"arc-disjoint"`` policy is greedy deflection over the healthy
    distance table (:func:`repro.routing.paths.routing_table_for`): when the
    shortest-path next hop is severed, pick the live out-neighbour
    minimising ``(healthy distance to destination, neighbour id)``.  On the
    paper's topologies this walks one of the ``d`` arc-disjoint paths the
    de Bruijn/Kautz structure guarantees, which is exactly the graceful
    degradation the scenario suite measures.
    """

    def __init__(self, graph: BaseDigraph, scenario, router: Router):
        self.scenario = scenario
        self.router = router
        n = graph.num_vertices
        m = graph.num_arcs
        self.link_down = np.zeros(m, dtype=bool)
        self.node_down = np.zeros(n, dtype=bool)
        self.links_between: dict[tuple[int, int], list[int]] = {}
        for index, (u, v) in enumerate(graph.arcs()):
            self.links_between.setdefault((u, v), []).append(index)
        self.fault_events = tuple(scenario.faults.events)
        for event in self.fault_events:
            bound = m if event.kind.startswith("link") else n
            if not 0 <= event.target < bound:
                raise ValueError(
                    f"fault event targets {event.kind.split('_')[0]} "
                    f"{event.target}, out of range for this topology"
                )
        self._distance = None
        self._neighbors: dict[int, list[int]] = {}
        if scenario.reroute == "arc-disjoint":
            from repro.routing.paths import routing_table_for
            from repro.routing.routers import AUTO_DENSE_MAX_N

            if n > AUTO_DENSE_MAX_N:
                raise ValueError(
                    "arc-disjoint reroute needs the dense-table regime "
                    f"(n <= {AUTO_DENSE_MAX_N}, got n={n})"
                )
            self._distance = routing_table_for(graph).distance
            for u, v in self.links_between:
                self._neighbors.setdefault(u, [])
                if v not in self._neighbors[u]:
                    self._neighbors[u].append(v)
            for u in self._neighbors:
                self._neighbors[u].sort()

    def apply_fault(self, index: int) -> None:
        event = self.fault_events[index]
        if event.kind == "link_down":
            self.link_down[event.target] = True
        elif event.kind == "link_up":
            self.link_down[event.target] = False
        elif event.kind == "node_down":
            self.node_down[event.target] = True
        else:  # node_up
            self.node_down[event.target] = False

    def usable(self, node: int, neighbor: int) -> bool:
        """Is some live link to a live neighbour available for a new hop?"""
        if self.node_down[neighbor]:
            return False
        for link_id in self.links_between[(node, neighbor)]:
            if not self.link_down[link_id]:
                return True
        return False

    def choose(self, node: int, destination: int) -> tuple[int, bool]:
        """Next hop under the reroute policy.

        Returns ``(next_node, rerouted)``; ``next_node`` is ``-1`` when the
        destination is unreachable in the healthy topology (plain
        undelivered, as in the base model) and ``-2`` when faults sever
        every permitted hop (drop reason ``"fault"``).
        """
        primary = self.router.next_hop(node, destination)
        if primary < 0:
            return -1, False
        if self.usable(node, primary):
            return primary, False
        if self._distance is None:  # reroute == "none"
            return -2, False
        best = -2
        best_distance = -1
        for neighbor in self._neighbors.get(node, ()):
            if neighbor == primary or not self.usable(node, neighbor):
                continue
            distance = int(self._distance[neighbor, destination])
            if distance < 0:
                continue
            if best == -2 or distance < best_distance:
                best, best_distance = neighbor, distance
        return best, best != -2


class NetworkSimulator:
    """Simulate store-and-forward message delivery on a digraph.

    Parameters
    ----------
    graph:
        The network topology; nodes are processors, arcs are unidirectional
        links (exactly the semantics of the OTIS digraphs).
    link:
        Timing parameters applied to every link.
    routing:
        Optional precomputed dense routing table (kept for continuity;
        reuse it when simulating many workloads on one topology).
    router:
        A :class:`repro.routing.routers.Router` instance or kind string
        (``"auto"``, ``"dense"``, ``"closed-form"``, ``"lru"``).  The
        default ``"auto"`` keeps the dense table for small topologies and
        goes table-free above :data:`repro.routing.routers.AUTO_DENSE_MAX_N`
        vertices.  Mutually exclusive with ``routing``.
    scenario:
        Optional :class:`repro.simulation.scenarios.Scenario`.  Mutually
        exclusive with ``link`` (the scenario carries its own link model);
        a scenario that degrades the network switches ``run`` to the
        scenario event loop (buffers, faults, rerouting), an arrival-only
        scenario behaves exactly like the base model.
    """

    def __init__(
        self,
        graph: BaseDigraph,
        link: LinkModel | None = None,
        routing: RoutingTable | None = None,
        *,
        router: Router | str | None = None,
        scenario=None,
    ):
        if scenario is not None and link is not None:
            raise ValueError(
                "pass link= or scenario= (the scenario carries its link model), "
                "not both"
            )
        self.graph = graph
        self.scenario = scenario
        self.link = scenario.link if scenario is not None else (link or LinkModel())
        self.router = resolve_router(graph, routing=routing, router=router)
        #: The dense table when this simulator routes through one, else None
        #: (kept for callers that share tables between engines).
        self.routing = getattr(self.router, "table", None)
        # Every arc is its own physical link: parallel arcs (common in OTIS
        # digraphs such as H(1, 4, 2)) are distinct optical channels, so two
        # simultaneous messages between the same endpoints must not contend.
        self._links_between: dict[tuple[int, int], list[int]] = {}
        for index, (u, v) in enumerate(graph.arcs()):
            self._links_between.setdefault((u, v), []).append(index)
        self._num_links = graph.num_arcs

    # ------------------------------------------------------------------ run
    def run(
        self,
        traffic: list[tuple[int, int, float]],
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> tuple[NetworkStats, list[Message]]:
        """Simulate a list of ``(source, destination, injection_time)`` messages.

        Returns the aggregate statistics and the per-message records.
        Messages whose destination is unreachable are counted as undelivered.
        """
        if self.scenario is not None and self.scenario.needs_event_exact():
            return self._run_scenario(traffic, until=until, max_events=max_events)
        sim = Simulator()
        link_free_at = np.zeros(self._num_links, dtype=float)
        link_queue_len = np.zeros(self._num_links, dtype=np.int64)
        max_queue = 0
        busy_time = 0.0
        messages = self._build_messages(traffic)

        router = self.router

        def forward(message: Message, node: int) -> None:
            nonlocal max_queue, busy_time
            if node == message.destination:
                message.arrival_time = sim.now
                return
            next_node = router.next_hop(node, message.destination)
            if next_node < 0:
                return  # unreachable: drop (counted as undelivered)
            # Transmit over the earliest-free parallel link between the two
            # endpoints (ties broken by link id for determinism).
            parallel = self._links_between[(node, next_node)]
            link_id = min(parallel, key=lambda lid: (float(link_free_at[lid]), lid))
            start = max(sim.now, float(link_free_at[link_id]))
            finish = start + self.link.transmission_time
            link_free_at[link_id] = finish
            link_queue_len[link_id] += 1
            max_queue = max(max_queue, int(link_queue_len[link_id]))
            busy_time += self.link.transmission_time

            def deliver(msg=message, nxt=next_node, lid=link_id) -> None:
                link_queue_len[lid] -= 1
                msg.hops += 1
                forward(msg, nxt)

            sim.schedule_at(finish + self.link.latency, deliver)

        for message in messages:
            sim.schedule_at(
                message.creation_time, lambda m=message: forward(m, m.source)
            )

        makespan = sim.run(until=until, max_events=max_events)
        delivered = [m for m in messages if m.delivered]
        undelivered = len(messages) - len(delivered)
        latencies = np.array([m.latency for m in delivered], dtype=float)
        hops = np.array([m.hops for m in delivered], dtype=float)
        stats = NetworkStats(
            delivered=len(delivered),
            undelivered=undelivered,
            makespan=makespan,
            mean_latency=float(latencies.mean()) if latencies.size else 0.0,
            max_latency=float(latencies.max()) if latencies.size else 0.0,
            mean_hops=float(hops.mean()) if hops.size else 0.0,
            max_link_queue=max_queue,
            total_link_busy_time=busy_time,
        )
        return stats, messages

    def _build_messages(self, traffic) -> list[Message]:
        """Validated per-message records (endpoints in range, sane times)."""
        n = self.graph.num_vertices
        messages: list[Message] = []
        for ident, (source, destination, time) in enumerate(traffic):
            if not (0 <= source < n and 0 <= destination < n):
                raise ValueError(f"message {ident} has endpoints out of range")
            time = float(time)
            if not (np.isfinite(time) and time >= 0):
                raise ValueError(
                    f"message {ident} has invalid release time {time!r} "
                    "(must be finite and non-negative)"
                )
            messages.append(
                Message(
                    ident=ident,
                    source=source,
                    destination=destination,
                    creation_time=time,
                )
            )
        return messages

    # ------------------------------------------------------------- scenario
    def _run_scenario(
        self,
        traffic,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> tuple[NetworkStats, list[Message]]:
        """The scenario event loop: buffers, faults and rerouting.

        Identical to :meth:`run` until a scenario layer bites: fault events
        are scheduled *before* any message injection (lower sequence, so a
        fault at ``t`` is visible to every message event at ``t`` — the
        fault-at-t=0 degenerate case included), full finite buffers drop or
        re-offer, and severed primary hops consult the reroute policy.
        """
        scenario = self.scenario
        link = self.link
        capacity = getattr(link, "capacity", None)
        on_full = getattr(link, "on_full", "drop")
        retry_delay = getattr(link, "retry_delay", 1.0)
        max_retries = getattr(link, "max_retries", 0)
        ttl = scenario.effective_max_hops(self.graph.num_vertices)
        state = _ScenarioState(self.graph, scenario, self.router)

        sim = Simulator()
        link_free_at = np.zeros(self._num_links, dtype=float)
        link_queue_len = np.zeros(self._num_links, dtype=np.int64)
        max_queue = 0
        busy_time = 0.0
        counters = {
            "dropped_buffer": 0,
            "dropped_fault": 0,
            "dropped_hops": 0,
            "retransmits": 0,
            "rerouted_hops": 0,
        }
        messages = self._build_messages(traffic)
        retries = [0] * len(messages)

        # Faults first: at equal timestamps they outrank message events.
        for index, event in enumerate(state.fault_events):
            sim.schedule_at(event.time, lambda k=index: state.apply_fault(k))

        def drop(message: Message, reason: str) -> None:
            message.drop_reason = reason
            counters["dropped_" + reason] += 1

        def forward(message: Message, node: int) -> None:
            nonlocal max_queue, busy_time
            if state.node_down[node]:
                drop(message, "fault")
                return
            if node == message.destination:
                message.arrival_time = sim.now
                return
            if ttl is not None and message.hops >= ttl:
                drop(message, "hops")
                return
            next_node, rerouted = state.choose(node, message.destination)
            if next_node == -1:
                return  # unreachable in the healthy topology: plain undelivered
            if next_node == -2:
                drop(message, "fault")
                return
            live = [
                lid
                for lid in self._links_between[(node, next_node)]
                if not state.link_down[lid]
            ]
            if capacity is not None:
                live = [lid for lid in live if link_queue_len[lid] < capacity]
            if not live:
                if on_full == "retry" and retries[message.ident] < max_retries:
                    retries[message.ident] += 1
                    counters["retransmits"] += 1
                    sim.schedule_at(
                        sim.now + retry_delay,
                        lambda m=message, at=node: forward(m, at),
                    )
                else:
                    drop(message, "buffer")
                return
            link_id = min(live, key=lambda lid: (float(link_free_at[lid]), lid))
            start = max(sim.now, float(link_free_at[link_id]))
            finish = start + link.transmission_time
            link_free_at[link_id] = finish
            link_queue_len[link_id] += 1
            max_queue = max(max_queue, int(link_queue_len[link_id]))
            busy_time += link.transmission_time
            if rerouted:
                counters["rerouted_hops"] += 1

            def deliver(msg=message, nxt=next_node, lid=link_id) -> None:
                link_queue_len[lid] -= 1
                msg.hops += 1
                forward(msg, nxt)

            sim.schedule_at(finish + link.latency, deliver)

        for message in messages:
            sim.schedule_at(
                message.creation_time, lambda m=message: forward(m, m.source)
            )
        makespan = sim.run(until=until, max_events=max_events)
        delivered = [m for m in messages if m.delivered]
        latencies = np.array([m.latency for m in delivered], dtype=float)
        hops = np.array([m.hops for m in delivered], dtype=float)
        stats = NetworkStats(
            delivered=len(delivered),
            undelivered=len(messages) - len(delivered),
            makespan=makespan,
            mean_latency=float(latencies.mean()) if latencies.size else 0.0,
            max_latency=float(latencies.max()) if latencies.size else 0.0,
            mean_hops=float(hops.mean()) if hops.size else 0.0,
            max_link_queue=max_queue,
            total_link_busy_time=busy_time,
            **counters,
        )
        return stats, messages


# ---------------------------------------------------------------------------
# Batched engine
# ---------------------------------------------------------------------------
class _LinkGroups:
    """Array-pooled link topology: arcs grouped by ``(tail, head)``.

    Links are arc indices in ``graph.arcs()`` enumeration order (the same
    numbering the reference simulator uses).  Groups are the distinct
    ``(u, v)`` pairs, sorted by the scalar key ``u * n + v``;
    ``flat_links[group_ptr[g]:group_ptr[g+1]]`` holds the parallel link ids of
    group ``g`` in ascending id order, so the tie-break "lowest link id wins"
    falls out of array order.
    """

    def __init__(self, graph: BaseDigraph):
        n = graph.num_vertices
        arcs = list(graph.arcs())
        m = len(arcs)
        tails = np.fromiter((u for u, _ in arcs), dtype=np.int64, count=m)
        heads = np.fromiter((v for _, v in arcs), dtype=np.int64, count=m)
        keys = tails * n + heads
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        if m:
            group_starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_keys)) + 1)
            )
        else:
            group_starts = np.zeros(0, dtype=np.int64)
        self.num_vertices = n
        self.num_links = m
        self.flat_links = order.astype(np.int64)
        self.group_ptr = np.concatenate((group_starts, [m])).astype(np.int64)
        self.group_keys = sorted_keys[group_starts]
        self.group_size = np.diff(self.group_ptr)
        self.num_groups = int(self.group_keys.shape[0])
        # the (lowest-id) link of every group — the only link for 1-arc groups
        self.first_link = (
            self.flat_links[group_starts] if m else np.zeros(0, dtype=np.int64)
        )
        # scalar-path lookup: (u * n + v) -> ascending list of link ids
        ptr = self.group_ptr.tolist()
        flat = self.flat_links.tolist()
        self.links_by_key = {
            int(key): flat[ptr[g] : ptr[g + 1]]
            for g, key in enumerate(self.group_keys.tolist())
        }

    def group_of(self, tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
        """Group index of each ``(tail, head)`` arc pair (which must exist)."""
        return np.searchsorted(self.group_keys, tails * self.num_vertices + heads)


#: Batches at or below this size run the per-event scalar path; above it the
#: vector path wins.  Both paths are float-exact, so this is purely a tuning
#: knob (break-even is a few dozen events per batch).
_SCALAR_BATCH_CUTOFF = 32


def _sequential_sum(count: int, term: float) -> float:
    """The fold of ``count`` sequential additions of ``term`` onto ``0.0``.

    Replicates the reference loop's ``busy_time += transmission_time``
    accumulation bit-for-bit (``np.cumsum`` accumulates left to right, unlike
    pairwise ``np.sum``).
    """
    if count <= 0:
        return 0.0
    return float(np.cumsum(np.full(count, float(term)))[-1])


def _pool_traffics(traffics, n: int):
    """Flatten per-replica traffics into pooled arrays, validating as it goes.

    Returns ``(src, dst, created, counts, offsets)``; rejects out-of-range
    endpoints and NaN/negative/infinite release times (same checks — and the
    same error messages — as the reference engine's message builder).
    """
    R = len(traffics)
    src_parts, dst_parts, time_parts = [], [], []
    counts = np.zeros(R, dtype=np.int64)
    for r, traffic in enumerate(traffics):
        arr = np.asarray(traffic, dtype=float)
        if arr.size == 0:
            arr = arr.reshape(0, 3)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(
                "traffic must be a sequence of (source, destination, time) triples"
            )
        src = arr[:, 0].astype(np.int64)
        dst = arr[:, 1].astype(np.int64)
        injected = arr[:, 2].astype(float)
        bad = (src < 0) | (src >= n) | (dst < 0) | (dst >= n)
        if bad.any():
            ident = int(np.flatnonzero(bad)[0])
            raise ValueError(f"message {ident} has endpoints out of range")
        bad_time = ~(np.isfinite(injected) & (injected >= 0))
        if bad_time.any():
            ident = int(np.flatnonzero(bad_time)[0])
            raise ValueError(
                f"message {ident} has invalid release time "
                f"{float(injected[ident])!r} (must be finite and non-negative)"
            )
        src_parts.append(src)
        dst_parts.append(dst)
        time_parts.append(injected)
        counts[r] = src.shape[0]
    offsets = np.concatenate(([0], np.cumsum(counts)))
    N = int(offsets[-1])
    src = np.concatenate(src_parts) if N else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if N else np.zeros(0, dtype=np.int64)
    created = np.concatenate(time_parts) if N else np.zeros(0)
    return src, dst, created, counts, offsets


class BatchedNetworkSimulator:
    """Vectorised event-batched re-implementation of :class:`NetworkSimulator`.

    Produces bit-identical :class:`NetworkStats` and per-message records (see
    the module docstring for the exact contract) while resolving every batch
    of simultaneous events with whole-array numpy operations.  The win grows
    with batch size: saturation workloads (every message injected at time 0)
    and the lattice of timestamps produced by constant link timings keep
    batches in the hundreds, which is where the ~10x-and-up speedups over the
    callback loop come from.  Sparse workloads whose timestamps never collide
    degrade gracefully to small batches.

    Parameters are identical to :class:`NetworkSimulator`, plus ``kernels``:
    a kernel-backend request (see :mod:`repro.kernels`) — ``None`` resolves
    the ``REPRO_KERNELS`` environment override, ``"numpy"`` pins the
    original vectorised path.  All backends are bit-identical; the resolved
    name is exposed as :attr:`kernel_backend`.  Under ``auto`` resolution
    sparse workloads (fewer than 32 events per distinct creation time on
    average) keep the numpy path — its scalar fast path beats the kernel's
    per-round boundary crossing there; naming a backend explicitly always
    runs it.
    """

    def __init__(
        self,
        graph: BaseDigraph,
        link: LinkModel | None = None,
        routing: RoutingTable | None = None,
        *,
        router: Router | str | None = None,
        scenario=None,
        kernels: str | None = None,
    ):
        if scenario is not None and link is not None:
            raise ValueError(
                "pass link= or scenario= (the scenario carries its link model), "
                "not both"
            )
        self.graph = graph
        self.scenario = scenario
        self.link = scenario.link if scenario is not None else (link or LinkModel())
        self.router = resolve_router(graph, routing=routing, router=router)
        self.routing = getattr(self.router, "table", None)
        self._groups = _LinkGroups(graph)
        resolved = _kernels.resolve_backend(kernels)
        if scenario is not None and scenario.needs_event_exact():
            # Degrading scenarios run the per-event scalar loop on every
            # backend (see the module docstring) — report what actually runs.
            resolved = "numpy"
        self.kernel_backend = resolved
        self._kernels = _kernels.get_kernels(self.kernel_backend)
        requested = (
            kernels
            if kernels is not None
            else os.environ.get(_kernels.ENV_VAR) or "auto"
        )
        # An explicitly named backend (parameter or REPRO_KERNELS) is always
        # honoured; under "auto", run_many keeps the numpy path for sparse
        # workloads where the per-round kernel round-trip cannot win.
        self._kernels_forced = requested.strip().lower() != "auto"

    # ------------------------------------------------------------------ run
    def run(
        self,
        traffic,
        *,
        until: float | None = None,
        max_events: int | None = None,
        trace: list | None = None,
    ) -> tuple[NetworkStats, list[Message]]:
        """Simulate one workload; same signature and semantics as the reference.

        ``trace``, when given a list, receives one
        ``(link_ids, start_times, message_indices)`` triple per batch in
        chronological order — the property tests use it to check per-link
        FIFO service.
        """
        ((stats, messages),) = self.run_many(
            [traffic], until=until, max_events=max_events, trace=trace
        )
        return stats, messages

    def run_many(
        self,
        traffics,
        *,
        until: float | None = None,
        max_events: int | None = None,
        trace: list | None = None,
        return_messages: bool = True,
    ) -> list[tuple[NetworkStats, list[Message] | None]]:
        """Simulate many independent workloads in one pooled pass.

        Each workload gets its own replica of the link-state arrays (no
        cross-workload contention) while sharing the router, the group
        structure and — crucially — the per-step batching: simultaneous
        events of *all* replicas resolve in one vector operation, so running
        ``R`` seeds costs far less than ``R`` separate runs.  Per-replica
        results are bit-identical to what :meth:`run` returns for that
        workload alone (``max_events``, which caps the *total* event count
        across replicas, is the one exception — it is a global safety valve,
        exact only for a single workload).

        With a degrading ``scenario`` the pooled pass switches to the
        scenario event loop (same pooling, scalar per-event kernel — see the
        module docstring's degraded-mode contract).
        """
        if self.scenario is not None and self.scenario.needs_event_exact():
            return self._run_many_scenario(
                traffics,
                until=until,
                max_events=max_events,
                trace=trace,
                return_messages=return_messages,
            )
        groups = self._groups
        n = self.graph.num_vertices
        m = groups.num_links
        num_groups = groups.num_groups
        T = self.link.transmission_time
        L = self.link.latency
        R = len(traffics)

        # ---- pool the per-message state of every replica into flat arrays
        src, dst, created, counts, offsets = _pool_traffics(traffics, n)
        N = int(offsets[-1])

        rep = np.repeat(np.arange(R, dtype=np.int64), counts)

        loc = src.copy()
        hops = np.zeros(N, dtype=np.int64)
        arrival = np.full(N, np.nan)
        prev_link = np.full(N, -1, dtype=np.int64)  # global (replicated) ids

        busy_until = np.zeros(R * m)
        queue_len = np.zeros(R * m, dtype=np.int64)
        max_queue = np.zeros(R, dtype=np.int64)
        tx_count = np.zeros(R, dtype=np.int64)
        last_time = np.zeros(R)
        router = self.router
        processed = 0

        use_kernel = self._kernels is not None
        if use_kernel and not self._kernels_forced:
            # Sparse workloads (rate-limited injection: few events per
            # distinct timestamp) run thousands of tiny rounds, each paying
            # a Python<->kernel round-trip; the numpy path's <=32-event
            # scalar fast path wins there.  Mirror that threshold: take the
            # kernel only when the average batch is at least 32 events.
            use_kernel = N >= 32 * np.unique(created).size
        if use_kernel:
            queue = ()  # compiled path: the event heap lives in the kernel
            self._run_rounds_kernel(
                created, loc, dst, hops, arrival, prev_link, rep,
                busy_until, queue_len, max_queue, tx_count, last_time,
                until=until, max_events=max_events, trace=trace,
            )
        else:
            queue = BatchEventQueue(N)
            queue.schedule(np.arange(N, dtype=np.int64), created)

        while len(queue):
            t = queue.peek_time()
            if until is not None and t > until:
                break
            limit = None
            if max_events is not None:
                limit = max_events - processed
                if limit <= 0:
                    break
            t, slots = queue.pop_batch(limit=limit)
            processed += len(slots)

            if len(slots) <= _SCALAR_BATCH_CUTOFF:
                # Scalar fast path: sparse workloads (few timestamp
                # collisions) degrade to tiny batches, where the vector
                # machinery costs more than it saves — run the literal
                # reference algorithm per event (identical float ops).
                for i in slots:
                    r = int(rep[i]) if R > 1 else 0
                    last_time[r] = t
                    in_link = int(prev_link[i])
                    if in_link >= 0:
                        hops[i] += 1
                        queue_len[in_link] -= 1
                    node = int(loc[i])
                    target = int(dst[i])
                    if node == target:
                        arrival[i] = t
                        continue
                    next_node = router.next_hop(node, target)
                    if next_node < 0:
                        continue  # unreachable: drop
                    local_links = groups.links_by_key[node * n + next_node]
                    base = r * m
                    if len(local_links) == 1:
                        link = base + local_links[0]
                    else:
                        link = min(
                            (base + l for l in local_links),
                            key=lambda l: (float(busy_until[l]), l),
                        )
                    start = max(t, float(busy_until[link]))
                    finish = start + T
                    busy_until[link] = finish
                    depth = int(queue_len[link]) + 1
                    queue_len[link] = depth
                    if depth > max_queue[r]:
                        max_queue[r] = depth
                    tx_count[r] += 1
                    prev_link[i] = link
                    loc[i] = next_node
                    queue.schedule_one(i, finish + L)
                    if trace is not None:
                        trace.append(
                            (
                                np.array([link], dtype=np.int64),
                                np.array([start]),
                                np.array([i], dtype=np.int64),
                            )
                        )
                continue

            idx = np.asarray(slots, dtype=np.int64)
            if R == 1:
                last_time[0] = t
            else:
                last_time[rep[idx]] = t
            batch_pos = np.arange(idx.size, dtype=np.int64)

            # Deliver bookkeeping: every event with a previous link is the
            # arrival end of a transmission — free its FIFO slot, count a hop.
            links_in = prev_link[idx]
            has_prev = links_in >= 0
            if has_prev.all():  # steady state: pure deliver batches
                hops[idx] += 1
                dec_links = links_in
                dec_pos = batch_pos
            else:
                if has_prev.any():
                    hops[idx[has_prev]] += 1
                dec_links = links_in[has_prev]
                dec_pos = batch_pos[has_prev]

            dests = dst[idx]
            nodes = loc[idx]
            at_dest = nodes == dests
            if at_dest.any():
                arrival[idx[at_dest]] = t

            forwarding = ~at_dest
            tails = nodes[forwarding]
            nxt = router.next_hops(tails, dests[forwarding])
            reachable = nxt >= 0  # unreachable: drop (counted as undelivered)
            if reachable.all():  # strongly connected topologies: no drops
                movers = idx[forwarding]
                mover_pos = batch_pos[forwarding]
                mover_next = nxt
            else:
                movers = idx[forwarding][reachable]
                mover_pos = batch_pos[forwarding][reachable]
                mover_next = nxt[reachable]
                tails = tails[reachable]

            inc_links = np.zeros(0, dtype=np.int64)
            if movers.size:
                gid = groups.group_of(tails, mover_next)
                if R > 1:
                    gid = rep[movers] * num_groups + gid
                order = np.argsort(gid, kind="stable")  # keeps seq order per group
                gid_sorted = gid[order]
                firsts = np.concatenate(
                    ([0], np.flatnonzero(np.diff(gid_sorted)) + 1)
                )
                group_counts = np.diff(np.concatenate((firsts, [gid_sorted.size])))
                batch_groups = gid_sorted[firsts]
                local_group = batch_groups % num_groups
                replica = batch_groups // num_groups
                width = groups.group_size[local_group]

                starts_sorted = np.empty(movers.size)
                links_sorted = np.empty(movers.size, dtype=np.int64)

                # (a) single-link groups — the FIFO chain ``max(t, free), +T,
                # +T, ...`` of every group advances one sequential addition
                # per round, all groups in one vector op per round (so the
                # float accumulation order matches the reference exactly).
                single = width == 1
                if single.any():
                    link = replica[single] * m + groups.first_link[local_group[single]]
                    sizes = group_counts[single]
                    base = firsts[single]
                    offs = np.cumsum(sizes) - sizes
                    fill = np.arange(int(sizes.sum()), dtype=np.int64) - np.repeat(
                        offs, sizes
                    ) + np.repeat(base, sizes)
                    links_sorted[fill] = np.repeat(link, sizes)
                    cur = np.maximum(t, busy_until[link])
                    # very deep chains (saturated hot links) in one cumsum each
                    deep = sizes > 512
                    for g in np.flatnonzero(deep):
                        size = int(sizes[g])
                        chain = np.full(size, T)
                        chain[0] = cur[g]
                        chain = np.cumsum(chain)
                        starts_sorted[int(base[g]) : int(base[g]) + size] = chain
                        cur[g] = float(chain[-1]) + T
                    shallow = np.flatnonzero(~deep)
                    round_no = 0
                    while shallow.size:
                        starts_sorted[base[shallow] + round_no] = cur[shallow]
                        cur[shallow] = cur[shallow] + T
                        round_no += 1
                        shallow = shallow[sizes[shallow] > round_no]
                    busy_until[link] = cur
                # (c) parallel links — the reference greedy picks, per message,
                # the link minimising ``(raw free time, link id)`` (the raw
                # time, which may predate the batch, not the clamped start).
                # That greedy is exactly the k-way merge of the per-link key
                # chains ``raw, max(t, raw)+T, +T, ...``, so merge the chains
                # instead of iterating over messages.
                for g in np.flatnonzero(width > 1):
                    lg = int(local_group[g])
                    local_links = groups.flat_links[
                        groups.group_ptr[lg] : groups.group_ptr[lg + 1]
                    ]
                    link = int(replica[g]) * m + local_links
                    lo = int(firsts[g])
                    size = int(group_counts[g])
                    raw = busy_until[link]
                    keys = np.empty((link.size, size))
                    keys[:, 0] = raw
                    if size > 1:
                        chain = np.full((link.size, size - 1), T)
                        chain[:, 0] = np.maximum(t, raw) + T
                        keys[:, 1:] = np.cumsum(chain, axis=1)
                    pool_links = np.repeat(link, size)
                    pool_keys = keys.ravel()
                    take = np.lexsort((pool_links, pool_keys))[:size]
                    pool_starts = np.maximum(t, pool_keys[take])
                    starts_sorted[lo : lo + size] = pool_starts
                    links_sorted[lo : lo + size] = pool_links[take]
                    np.maximum.at(
                        busy_until, pool_links[take], pool_starts + T
                    )

                starts = np.empty(movers.size)
                starts[order] = starts_sorted
                chosen = np.empty(movers.size, dtype=np.int64)
                chosen[order] = links_sorted

                finish = starts + T
                queue.schedule(movers, finish + L)
                prev_link[movers] = chosen
                loc[movers] = mover_next
                if R == 1:
                    tx_count[0] += movers.size
                else:
                    tx_count += np.bincount(rep[movers], minlength=R)
                inc_links = chosen
                if trace is not None:
                    trace.append((chosen.copy(), starts.copy(), movers.copy()))

            # FIFO depth accounting: per-link signed deltas in event order;
            # segmented prefix maxima reproduce the reference's running max.
            if dec_links.size or inc_links.size:
                deltas = np.concatenate(
                    (
                        np.full(dec_links.size, -1, dtype=np.int64),
                        np.ones(inc_links.size, dtype=np.int64),
                    )
                )
                delta_links = np.concatenate((dec_links, inc_links))
                delta_pos = np.concatenate((dec_pos, mover_pos))
                order = np.lexsort((delta_pos, delta_links))
                link_run = delta_links[order]
                delta_run = deltas[order]
                seg = np.concatenate(([0], np.flatnonzero(np.diff(link_run)) + 1))
                seg_sizes = np.diff(np.concatenate((seg, [link_run.size])))
                cum = np.cumsum(delta_run)
                base = np.concatenate(([0], cum[seg[1:] - 1]))
                seg_links = link_run[seg]
                running = (
                    cum
                    - np.repeat(base, seg_sizes)
                    + np.repeat(queue_len[seg_links], seg_sizes)
                )
                seg_max = np.maximum.reduceat(running, seg)
                queue_len[seg_links] = running[
                    np.concatenate((seg[1:], [link_run.size])) - 1
                ]
                if R == 1:
                    peak = int(seg_max.max())
                    if peak > max_queue[0]:
                        max_queue[0] = peak
                else:
                    np.maximum.at(max_queue, seg_links // m, seg_max)

        # ---- per-replica statistics, computed exactly as the reference does
        results: list[tuple[NetworkStats, list[Message] | None]] = []
        for r in range(R):
            lo, hi = int(offsets[r]), int(offsets[r + 1])
            arrived = arrival[lo:hi]
            delivered_mask = ~np.isnan(arrived)
            num_delivered = int(delivered_mask.sum())
            latencies = (arrived - created[lo:hi])[delivered_mask]
            hop_counts = hops[lo:hi][delivered_mask].astype(float)
            stats = NetworkStats(
                delivered=num_delivered,
                undelivered=(hi - lo) - num_delivered,
                makespan=float(last_time[r]),
                mean_latency=float(latencies.mean()) if latencies.size else 0.0,
                max_latency=float(latencies.max()) if latencies.size else 0.0,
                mean_hops=float(hop_counts.mean()) if hop_counts.size else 0.0,
                max_link_queue=int(max_queue[r]),
                total_link_busy_time=_sequential_sum(int(tx_count[r]), T),
            )
            messages: list[Message] | None = None
            if return_messages:
                messages = [
                    Message(ident, source, destination, creation, arrived_at, hop)
                    for ident, source, destination, creation, arrived_at, hop in zip(
                        range(hi - lo),
                        src[lo:hi].tolist(),
                        dst[lo:hi].tolist(),
                        created[lo:hi].tolist(),
                        arrival[lo:hi].tolist(),
                        hops[lo:hi].tolist(),
                    )
                ]
            results.append((stats, messages))
        return results

    # -------------------------------------------------------- kernel rounds
    def _run_rounds_kernel(
        self,
        created,
        loc,
        dst,
        hops,
        arrival,
        prev_link,
        rep,
        busy_until,
        queue_len,
        max_queue,
        tx_count,
        last_time,
        *,
        until,
        max_events,
        trace,
    ) -> None:
        """The event loop of :meth:`run_many`, driven by a compiled kernel.

        Replaces :class:`~repro.simulation.events.BatchEventQueue` + the
        scalar/vector batch resolution with two kernel calls per round: the
        kernel-side event queue (a structural replica of the bucketed
        queue — heap of distinct times + per-time FIFO buckets, see
        ``repro.kernels._pyimpl``) pops one same-timestamp batch
        read-only, python asks the router for the batch's next hops, and
        the kernel then resolves every event sequentially in sequence
        order with the literal reference float ops — so results are
        bit-identical to both the numpy vector path and the reference
        engine (enforced by ``tests/test_kernel_parity.py``).  Mutates the
        pooled per-message / per-replica arrays in place;
        :meth:`run_many` computes the statistics afterwards exactly as
        for the numpy path.
        """
        kern = self._kernels
        groups = self._groups
        n = self.graph.num_vertices
        m = groups.num_links
        T = float(self.link.transmission_time)
        L = float(self.link.latency)
        router = self.router
        N = int(loc.shape[0])

        # queue arrays (layout documented in repro.kernels._pyimpl): at most
        # N live distinct times / buckets; hash sized power-of-two >= 2N.
        C = max(N, 1)
        H = 2
        while H < 2 * C:
            H *= 2
        fbits = np.zeros(1)
        queue = (
            np.empty(C),  # heap_time
            np.empty(C, dtype=np.int64),  # heap_bid
            np.empty(C, dtype=np.int64),  # bucket_head
            np.empty(C, dtype=np.int64),  # bucket_tail
            np.empty(C, dtype=np.int64),  # next_slot
            np.arange(C, dtype=np.int64),  # free_bids
            np.empty(H),  # hash_time
            np.full(H, -1, dtype=np.int64),  # hash_state
            np.array([0, C, 0, 0], dtype=np.int64),  # qstate
            fbits,
            fbits.view(np.uint64),  # ubits
        )
        qstate = queue[8]
        heap_time = queue[0]

        slots_buf = np.empty(C, dtype=np.int64)
        tails_buf = np.empty(C, dtype=np.int64)
        dests_buf = np.empty(C, dtype=np.int64)
        out_links = np.empty(C, dtype=np.int64)
        out_starts = np.empty(C)
        out_movers = np.empty(C, dtype=np.int64)
        meta = np.zeros(4, dtype=np.int64)
        empty_next = np.zeros(0, dtype=np.int64)
        no_limit = 1 << 62

        # per-vertex range into the sorted (u*n + v) group keys, so the
        # kernel can resolve a hop's link group by scanning at most
        # out-degree entries instead of binary-searching all groups
        vertex_groups = np.searchsorted(
            groups.group_keys // n, np.arange(n + 1)
        ).astype(np.int64)
        driver = kern.make_round_driver(
            queue,
            (loc, dst, hops, arrival, prev_link, rep),
            (busy_until, queue_len, max_queue, tx_count, last_time),
            (groups.group_keys, groups.group_ptr, groups.flat_links,
             vertex_groups, n, m),
            (slots_buf, tails_buf, dests_buf,
             out_links, out_starts, out_movers, meta),
            T,
            L,
        )
        driver.schedule(
            np.arange(N, dtype=np.int64), np.ascontiguousarray(created)
        )

        processed = 0
        while qstate[0] > 0:
            t = float(heap_time[0])
            if until is not None and t > until:
                break
            limit = no_limit
            if max_events is not None:
                limit = max_events - processed
                if limit <= 0:
                    break
            driver.pop(limit)
            count = int(meta[0])
            nfwd = int(meta[1])
            processed += count
            if nfwd:
                nxt = router.next_hops(tails_buf[:nfwd], dests_buf[:nfwd])
                nxt = np.ascontiguousarray(nxt, dtype=np.int64)
            else:
                nxt = empty_next
            driver.finish(t, count, nxt)
            moved = int(meta[0])
            if trace is not None and moved:
                trace.append(
                    (
                        out_links[:moved].copy(),
                        out_starts[:moved].copy(),
                        out_movers[:moved].copy(),
                    )
                )

    # ------------------------------------------------------------- scenario
    def _run_many_scenario(
        self,
        traffics,
        *,
        until: float | None = None,
        max_events: int | None = None,
        trace: list | None = None,
        return_messages: bool = True,
    ) -> list[tuple[NetworkStats, list[Message] | None]]:
        """Pooled scenario runs: batched event selection, scalar semantics.

        Keeps the :class:`~repro.simulation.events.BatchEventQueue` batching
        and the replicated link arrays of :meth:`run_many`, but resolves
        each event with the per-event scalar kernel — the literal reference
        algorithm, identical float ops — because finite buffers, fault
        flips and reroute decisions are order-dependent within a batch.
        Fault events occupy the queue slots past the message range
        (``N .. N+F-1``) and are scheduled *first*, so at equal timestamps
        they outrank every message event, exactly like the reference heap's
        sequence numbers.  Fault state is global: one timeline drives all
        replicas, which is what makes a stacked scenario run equal R solo
        runs of the same scenario.
        """
        scenario = self.scenario
        link = self.link
        capacity = getattr(link, "capacity", None)
        on_full = getattr(link, "on_full", "drop")
        retry_delay = getattr(link, "retry_delay", 1.0)
        max_retries = getattr(link, "max_retries", 0)
        groups = self._groups
        n = self.graph.num_vertices
        m = groups.num_links
        T = link.transmission_time
        L = link.latency
        R = len(traffics)
        ttl = scenario.effective_max_hops(n)
        state = _ScenarioState(self.graph, scenario, self.router)
        links_between = state.links_between

        src, dst, created, counts, offsets = _pool_traffics(traffics, n)
        N = int(offsets[-1])
        rep = np.repeat(np.arange(R, dtype=np.int64), counts)

        loc = src.copy()
        hops = np.zeros(N, dtype=np.int64)
        arrival = np.full(N, np.nan)
        prev_link = np.full(N, -1, dtype=np.int64)  # global (replicated) ids
        retries = np.zeros(N, dtype=np.int64)
        drop_reason: list[str | None] = [None] * N

        fault_times = np.array(
            [event.time for event in state.fault_events], dtype=float
        )
        F = fault_times.shape[0]
        queue = BatchEventQueue(N + F)
        if F:  # faults first: lower sequence at equal timestamps
            queue.schedule(np.arange(N, N + F, dtype=np.int64), fault_times)
        queue.schedule(np.arange(N, dtype=np.int64), created)

        busy_until = np.zeros(R * m)
        queue_len = np.zeros(R * m, dtype=np.int64)
        max_queue = np.zeros(R, dtype=np.int64)
        tx_count = np.zeros(R, dtype=np.int64)
        last_time = np.zeros(R)
        dropped_buffer = np.zeros(R, dtype=np.int64)
        dropped_fault = np.zeros(R, dtype=np.int64)
        dropped_hops = np.zeros(R, dtype=np.int64)
        retransmits = np.zeros(R, dtype=np.int64)
        rerouted_hops = np.zeros(R, dtype=np.int64)
        processed = 0

        while len(queue):
            t = queue.peek_time()
            if until is not None and t > until:
                break
            limit = None
            if max_events is not None:
                limit = max_events - processed
                if limit <= 0:
                    break
            t, slots = queue.pop_batch(limit=limit)
            processed += len(slots)
            for i in slots:
                if i >= N:
                    state.apply_fault(i - N)
                    last_time[:] = t  # the fault timeline is global
                    continue
                r = int(rep[i]) if R > 1 else 0
                last_time[r] = t
                in_link = int(prev_link[i])
                if in_link >= 0:
                    hops[i] += 1
                    queue_len[in_link] -= 1
                    prev_link[i] = -1
                node = int(loc[i])
                target = int(dst[i])
                if state.node_down[node]:
                    drop_reason[i] = "fault"
                    dropped_fault[r] += 1
                    continue
                if node == target:
                    arrival[i] = t
                    continue
                if ttl is not None and hops[i] >= ttl:
                    drop_reason[i] = "hops"
                    dropped_hops[r] += 1
                    continue
                next_node, rerouted = state.choose(node, target)
                if next_node == -1:
                    continue  # unreachable in the healthy topology
                if next_node == -2:
                    drop_reason[i] = "fault"
                    dropped_fault[r] += 1
                    continue
                base = r * m
                live = [
                    base + lid
                    for lid in links_between[(node, next_node)]
                    if not state.link_down[lid]
                ]
                if capacity is not None:
                    live = [lid for lid in live if queue_len[lid] < capacity]
                if not live:
                    if on_full == "retry" and retries[i] < max_retries:
                        retries[i] += 1
                        retransmits[r] += 1
                        queue.schedule_one(i, t + retry_delay)
                    else:
                        drop_reason[i] = "buffer"
                        dropped_buffer[r] += 1
                    continue
                if len(live) == 1:
                    link_id = live[0]
                else:
                    link_id = min(
                        live, key=lambda lid: (float(busy_until[lid]), lid)
                    )
                start = max(t, float(busy_until[link_id]))
                finish = start + T
                busy_until[link_id] = finish
                depth = int(queue_len[link_id]) + 1
                queue_len[link_id] = depth
                if depth > max_queue[r]:
                    max_queue[r] = depth
                tx_count[r] += 1
                if rerouted:
                    rerouted_hops[r] += 1
                prev_link[i] = link_id
                loc[i] = next_node
                queue.schedule_one(i, finish + L)
                if trace is not None:
                    trace.append(
                        (
                            np.array([link_id], dtype=np.int64),
                            np.array([start]),
                            np.array([i], dtype=np.int64),
                        )
                    )

        # ---- per-replica statistics, exactly as the reference computes them
        results: list[tuple[NetworkStats, list[Message] | None]] = []
        for r in range(R):
            lo, hi = int(offsets[r]), int(offsets[r + 1])
            arrived = arrival[lo:hi]
            delivered_mask = ~np.isnan(arrived)
            num_delivered = int(delivered_mask.sum())
            latencies = (arrived - created[lo:hi])[delivered_mask]
            hop_counts = hops[lo:hi][delivered_mask].astype(float)
            stats = NetworkStats(
                delivered=num_delivered,
                undelivered=(hi - lo) - num_delivered,
                makespan=float(last_time[r]),
                mean_latency=float(latencies.mean()) if latencies.size else 0.0,
                max_latency=float(latencies.max()) if latencies.size else 0.0,
                mean_hops=float(hop_counts.mean()) if hop_counts.size else 0.0,
                max_link_queue=int(max_queue[r]),
                total_link_busy_time=_sequential_sum(int(tx_count[r]), T),
                dropped_buffer=int(dropped_buffer[r]),
                dropped_fault=int(dropped_fault[r]),
                dropped_hops=int(dropped_hops[r]),
                retransmits=int(retransmits[r]),
                rerouted_hops=int(rerouted_hops[r]),
            )
            messages: list[Message] | None = None
            if return_messages:
                messages = [
                    Message(ident, source, destination, creation, arrived_at, hop, why)
                    for ident, source, destination, creation, arrived_at, hop, why in zip(
                        range(hi - lo),
                        src[lo:hi].tolist(),
                        dst[lo:hi].tolist(),
                        created[lo:hi].tolist(),
                        arrival[lo:hi].tolist(),
                        hops[lo:hi].tolist(),
                        drop_reason[lo:hi],
                    )
                ]
            results.append((stats, messages))
        return results


#: Engine registry: name -> simulator class (used by protocols, the sweep
#: driver and the CLI ``sim`` subcommand).
SIMULATOR_ENGINES = {
    "event": NetworkSimulator,
    "batched": BatchedNetworkSimulator,
}
