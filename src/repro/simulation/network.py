"""Store-and-forward network simulation on top of a digraph topology.

The model is intentionally simple and matches how the multihop optical
networks cited by the paper (ShuffleNet, GEMNET, stack-Kautz, refs. [13, 22,
27]) are usually analysed at the topology level:

* every node has one injection port and ``d`` output links (its out-arcs);
  parallel arcs are *distinct* links, so a multigraph topology really has the
  extra capacity its arc multiset promises;
* a link transmits one message at a time; a message occupies a link for
  ``link.transmission_time`` and arrives ``link.latency`` later
  (store-and-forward, no cut-through);
* routing is deterministic shortest-path, using the all-pairs next-hop table
  of :func:`repro.routing.paths.build_routing_table`;
* link contention is resolved FIFO.

The per-hop latency/transmission constants default to the OTIS hardware
model values (:class:`repro.otis.hardware.HardwareModel`), so simulating the
same logical topology with an electrical link model versus the free-space
optical one reproduces the qualitative speed/power comparison that motivates
the paper (Section 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.digraph import BaseDigraph
from repro.routing.paths import RoutingTable, build_routing_table
from repro.simulation.events import Simulator

__all__ = ["LinkModel", "Message", "NetworkStats", "NetworkSimulator"]


@dataclass(frozen=True)
class LinkModel:
    """Timing parameters of one network link.

    Attributes
    ----------
    latency:
        Propagation + conversion delay of a hop (time units; ns if fed from
        the hardware model).
    transmission_time:
        Time the link stays busy per message (serialisation time).
    """

    latency: float = 1.0
    transmission_time: float = 1.0

    @classmethod
    def from_hardware(
        cls, hardware, *, message_bits: float = 1024.0, rate_gbps: float = 1.0
    ) -> "LinkModel":
        """Build a link model from a :class:`repro.otis.hardware.HardwareModel`.

        The latency is the optical one-hop latency (conversion + free-space
        flight); the transmission time is ``message_bits / rate``.
        """
        return cls(
            latency=hardware.optical_latency_ns(),
            transmission_time=message_bits / rate_gbps,
        )


@dataclass
class Message:
    """One message travelling through the network.

    Attributes
    ----------
    ident:
        Unique message id.
    source, destination:
        Endpoints (node indices).
    creation_time:
        Time the message was injected at the source.
    arrival_time:
        Time it reached its destination (NaN until delivered).
    hops:
        Number of links traversed so far.
    """

    ident: int
    source: int
    destination: int
    creation_time: float
    arrival_time: float = float("nan")
    hops: int = 0

    @property
    def delivered(self) -> bool:
        """True once the message has reached its destination."""
        return not np.isnan(self.arrival_time)

    @property
    def latency(self) -> float:
        """End-to-end latency (NaN until delivered)."""
        return self.arrival_time - self.creation_time


@dataclass
class NetworkStats:
    """Aggregate statistics of one simulation run."""

    delivered: int
    undelivered: int
    makespan: float
    mean_latency: float
    max_latency: float
    mean_hops: float
    max_link_queue: int
    total_link_busy_time: float

    def throughput(self) -> float:
        """Delivered messages per unit time (0 when nothing was delivered)."""
        if self.makespan <= 0 or self.delivered == 0:
            return 0.0
        return self.delivered / self.makespan


class NetworkSimulator:
    """Simulate store-and-forward message delivery on a digraph.

    Parameters
    ----------
    graph:
        The network topology; nodes are processors, arcs are unidirectional
        links (exactly the semantics of the OTIS digraphs).
    link:
        Timing parameters applied to every link.
    routing:
        Optional precomputed routing table (it is computed on demand
        otherwise; reuse it when simulating many workloads on one topology).
    """

    def __init__(
        self,
        graph: BaseDigraph,
        link: LinkModel | None = None,
        routing: RoutingTable | None = None,
    ):
        self.graph = graph
        self.link = link or LinkModel()
        self.routing = routing or build_routing_table(graph)
        # Every arc is its own physical link: parallel arcs (common in OTIS
        # digraphs such as H(1, 4, 2)) are distinct optical channels, so two
        # simultaneous messages between the same endpoints must not contend.
        self._links_between: dict[tuple[int, int], list[int]] = {}
        for index, (u, v) in enumerate(graph.arcs()):
            self._links_between.setdefault((u, v), []).append(index)
        self._num_links = graph.num_arcs

    # ------------------------------------------------------------------ run
    def run(
        self,
        traffic: list[tuple[int, int, float]],
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> tuple[NetworkStats, list[Message]]:
        """Simulate a list of ``(source, destination, injection_time)`` messages.

        Returns the aggregate statistics and the per-message records.
        Messages whose destination is unreachable are counted as undelivered.
        """
        sim = Simulator()
        n = self.graph.num_vertices
        link_free_at = np.zeros(self._num_links, dtype=float)
        link_queue_len = np.zeros(self._num_links, dtype=np.int64)
        max_queue = 0
        busy_time = 0.0

        messages: list[Message] = []
        for ident, (source, destination, time) in enumerate(traffic):
            if not (0 <= source < n and 0 <= destination < n):
                raise ValueError(f"message {ident} has endpoints out of range")
            messages.append(
                Message(
                    ident=ident,
                    source=source,
                    destination=destination,
                    creation_time=float(time),
                )
            )

        def forward(message: Message, node: int) -> None:
            nonlocal max_queue, busy_time
            if node == message.destination:
                message.arrival_time = sim.now
                return
            next_node = int(self.routing.next_hop[node, message.destination])
            if next_node < 0:
                return  # unreachable: drop (counted as undelivered)
            # Transmit over the earliest-free parallel link between the two
            # endpoints (ties broken by link id for determinism).
            parallel = self._links_between[(node, next_node)]
            link_id = min(parallel, key=lambda lid: (float(link_free_at[lid]), lid))
            start = max(sim.now, float(link_free_at[link_id]))
            finish = start + self.link.transmission_time
            link_free_at[link_id] = finish
            link_queue_len[link_id] += 1
            max_queue = max(max_queue, int(link_queue_len[link_id]))
            busy_time += self.link.transmission_time

            def deliver(msg=message, nxt=next_node, lid=link_id) -> None:
                link_queue_len[lid] -= 1
                msg.hops += 1
                forward(msg, nxt)

            sim.schedule_at(finish + self.link.latency, deliver)

        for message in messages:
            sim.schedule_at(
                message.creation_time, lambda m=message: forward(m, m.source)
            )

        makespan = sim.run(until=until, max_events=max_events)
        delivered = [m for m in messages if m.delivered]
        undelivered = len(messages) - len(delivered)
        latencies = np.array([m.latency for m in delivered], dtype=float)
        hops = np.array([m.hops for m in delivered], dtype=float)
        stats = NetworkStats(
            delivered=len(delivered),
            undelivered=undelivered,
            makespan=makespan,
            mean_latency=float(latencies.mean()) if latencies.size else 0.0,
            max_latency=float(latencies.max()) if latencies.size else 0.0,
            mean_hops=float(hops.mean()) if hops.size else 0.0,
            max_link_queue=max_queue,
            total_link_busy_time=busy_time,
        )
        return stats, messages
