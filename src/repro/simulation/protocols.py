"""End-to-end simulation experiments.

These functions wrap the network simulators into the experiments the examples
and the ablation benchmarks run: point-to-point latency, random traffic under
load, broadcast (both as naive unicasts and as the tree schedules of
:mod:`repro.routing.broadcast`), and gossip traffic volume.  Each returns
plain dictionaries/dataclasses so results can be tabulated next to the
paper-derived quantities in EXPERIMENTS.md.

Every simulator-backed experiment takes ``engine="event"`` (the reference
loop, default for continuity with the seed benchmarks) or
``engine="batched"`` (the vectorised engine — bit-identical results, much
faster on heavy workloads), and a ``router=`` kind
(:data:`repro.routing.routers.ROUTER_KINDS`) for topologies too large for
the dense next-hop table.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import BaseDigraph
from repro.routing.broadcast import (
    all_port_broadcast_schedule,
    single_port_broadcast_schedule,
)
from repro.routing.gossip import all_port_gossip_schedule
from repro.simulation.network import SIMULATOR_ENGINES, LinkModel, NetworkStats
from repro.simulation.workloads import broadcast_pairs, uniform_random_pairs

__all__ = [
    "run_point_to_point",
    "run_random_traffic",
    "run_broadcast",
    "run_gossip_traffic",
]


def _simulator(
    graph: BaseDigraph,
    link: LinkModel | None,
    engine: str,
    router: str | None = None,
):
    try:
        simulator_cls = SIMULATOR_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {sorted(SIMULATOR_ENGINES)})"
        ) from None
    return simulator_cls(graph, link=link, router=router)


def run_point_to_point(
    graph: BaseDigraph,
    source: int,
    destination: int,
    link: LinkModel | None = None,
    *,
    engine: str = "event",
    router: str | None = None,
) -> dict[str, float]:
    """Deliver a single message and report its latency and hop count."""
    simulator = _simulator(graph, link, engine, router)
    stats, messages = simulator.run([(source, destination, 0.0)])
    message = messages[0]
    return {
        "delivered": float(message.delivered),
        "latency": message.latency if message.delivered else float("inf"),
        "hops": float(message.hops),
        "makespan": stats.makespan,
    }


def run_random_traffic(
    graph: BaseDigraph,
    num_messages: int,
    *,
    link: LinkModel | None = None,
    rate: float | None = None,
    seed: int = 0,
    engine: str = "event",
    router: str | None = None,
) -> NetworkStats:
    """Uniform random traffic experiment; returns the aggregate statistics."""
    traffic = uniform_random_pairs(
        graph.num_vertices, num_messages, rng=seed, rate=rate
    )
    simulator = _simulator(graph, link, engine, router)
    stats, _ = simulator.run(traffic)
    return stats


def run_broadcast(
    graph: BaseDigraph,
    root: int = 0,
    *,
    link: LinkModel | None = None,
    engine: str = "event",
    router: str | None = None,
) -> dict[str, float]:
    """Compare three ways of broadcasting from ``root``.

    Returns the number of rounds of the all-port and single-port tree
    schedules (topology-level quantities) and the simulated makespan of the
    naive unicast emulation (which suffers injection-port contention at the
    root) under the given link model.
    """
    all_port = all_port_broadcast_schedule(graph, root)
    single_port = single_port_broadcast_schedule(graph, root)
    simulator = _simulator(graph, link, engine, router)
    stats, _ = simulator.run(broadcast_pairs(graph.num_vertices, root))
    return {
        "all_port_rounds": float(all_port.num_rounds),
        "single_port_rounds": float(single_port.num_rounds),
        "unicast_makespan": stats.makespan,
        "unicast_mean_latency": stats.mean_latency,
        "covers_all": float(all_port.covers_all() and single_port.covers_all()),
    }


def run_gossip_traffic(graph: BaseDigraph) -> dict[str, float]:
    """All-port gossip: rounds to completion and total arc traffic."""
    schedule = all_port_gossip_schedule(graph)
    n = graph.num_vertices
    final_counts = schedule.knowledge_counts[-1]
    return {
        "rounds": float(schedule.num_rounds),
        "arc_traffic": float(schedule.arc_traffic),
        "complete": float(schedule.completed() and bool(np.all(final_counts == n))),
    }
