"""Synthetic traffic generators for the network simulator.

These produce lists of ``(source, destination, injection_time)`` triples — the
input format of :meth:`repro.simulation.network.NetworkSimulator.run`.  The
workloads are the usual suspects of interconnection-network evaluation:
uniform random traffic, random permutations, hotspot traffic, one-to-all
broadcast and all-to-all exchange.  All generators take an explicit numpy
``Generator`` (or seed) so that every experiment in the benchmarks is
reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_random_pairs",
    "permutation_pairs",
    "hotspot_pairs",
    "broadcast_pairs",
    "all_to_all_pairs",
    "poisson_arrival_times",
]

Traffic = list[tuple[int, int, float]]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def poisson_arrival_times(
    count: int, rate: float, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``count`` arrival times of a Poisson process with the given rate."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate <= 0:
        raise ValueError("rate must be positive")
    generator = _rng(rng)
    gaps = generator.exponential(1.0 / rate, size=count)
    return np.cumsum(gaps)


def uniform_random_pairs(
    num_nodes: int,
    num_messages: int,
    rng: np.random.Generator | int | None = None,
    *,
    rate: float | None = None,
) -> Traffic:
    """Uniform random traffic: independent random (source, destination) pairs.

    Sources and destinations are drawn uniformly (destination resampled when
    it collides with the source).  When ``rate`` is given, injection times
    follow a Poisson process of that rate; otherwise all messages are injected
    at time 0.
    """
    if num_nodes < 2:
        raise ValueError("uniform random traffic needs at least 2 nodes")
    generator = _rng(rng)
    times = (
        poisson_arrival_times(num_messages, rate, generator)
        if rate is not None
        else np.zeros(num_messages)
    )
    traffic: Traffic = []
    for k in range(num_messages):
        source = int(generator.integers(num_nodes))
        destination = int(generator.integers(num_nodes))
        while destination == source:
            destination = int(generator.integers(num_nodes))
        traffic.append((source, destination, float(times[k])))
    return traffic


def permutation_pairs(
    num_nodes: int, rng: np.random.Generator | int | None = None
) -> Traffic:
    """A random permutation workload: every node sends one message, no two
    messages share a destination, nobody sends to itself (for ``n > 1``)."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    generator = _rng(rng)
    destinations = generator.permutation(num_nodes)
    # Resample until derangement-ish (fix self-loops by swapping).
    for node in range(num_nodes):
        if destinations[node] == node:
            other = (node + 1) % num_nodes
            destinations[node], destinations[other] = (
                destinations[other],
                destinations[node],
            )
    return [(node, int(destinations[node]), 0.0) for node in range(num_nodes)]


def hotspot_pairs(
    num_nodes: int,
    num_messages: int,
    hotspot: int = 0,
    hotspot_fraction: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Traffic:
    """Hotspot traffic: a fraction of messages target one node, the rest are uniform."""
    if not 0 <= hotspot < num_nodes:
        raise ValueError("hotspot node out of range")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    generator = _rng(rng)
    traffic: Traffic = []
    for _ in range(num_messages):
        source = int(generator.integers(num_nodes))
        if generator.random() < hotspot_fraction and source != hotspot:
            destination = hotspot
        else:
            destination = int(generator.integers(num_nodes))
            while destination == source:
                destination = int(generator.integers(num_nodes))
        traffic.append((source, destination, 0.0))
    return traffic


def broadcast_pairs(num_nodes: int, root: int = 0) -> Traffic:
    """Naive one-to-all broadcast as unicasts: the root sends to every other node.

    This is the *unicast emulation* of a broadcast; compare with the
    tree-based schedules of :mod:`repro.routing.broadcast` in the simulator
    benchmarks.
    """
    if not 0 <= root < num_nodes:
        raise ValueError("root out of range")
    return [(root, node, 0.0) for node in range(num_nodes) if node != root]


def all_to_all_pairs(num_nodes: int) -> Traffic:
    """Complete exchange: every ordered pair of distinct nodes gets one message."""
    return [
        (source, destination, 0.0)
        for source in range(num_nodes)
        for destination in range(num_nodes)
        if source != destination
    ]
