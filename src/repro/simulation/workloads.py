"""Synthetic traffic generators and the multi-workload throughput driver.

The generators produce lists of ``(source, destination, injection_time)``
triples — the input format of
:meth:`repro.simulation.network.NetworkSimulator.run`.  The workloads are the
usual suspects of interconnection-network evaluation: uniform random traffic,
random permutations, hotspot traffic, one-to-all broadcast and all-to-all
exchange.  All generators take an explicit numpy ``Generator`` (or seed) so
that every experiment in the benchmarks is reproducible.

:func:`run_throughput_sweep` is the batched multi-workload driver: it
enumerates ``(workload, injection rate, seed)`` combinations
(:func:`sweep_combos`), builds each traffic deterministically from its seed
(:func:`sweep_traffics`) and hands the whole pile to
:meth:`repro.simulation.network.BatchedNetworkSimulator.run_many`, which
simulates every combination in one pooled pass over a shared router.  The
resulting :class:`ThroughputSweep` aggregates seeds into throughput/latency
curves and serialises to the ``BENCH_sim.json`` trajectory format.  The
same ``(combos, traffics)`` pair feeds the process-sharded path of
:mod:`repro.simulation.sharding` (``repro sim --out-dir ... --shard i/k``),
which is how multi-seed million-message studies run on topologies whose
dense routing table would not even fit in memory.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import BaseDigraph
from repro.simulation.network import (
    SIMULATOR_ENGINES,
    BatchedNetworkSimulator,
    LinkModel,
    NetworkStats,
)

__all__ = [
    "uniform_random_pairs",
    "permutation_pairs",
    "hotspot_pairs",
    "broadcast_pairs",
    "all_to_all_pairs",
    "poisson_arrival_times",
    "SWEEP_WORKLOADS",
    "make_workload",
    "SweepPoint",
    "ThroughputSweep",
    "sweep_combos",
    "sweep_traffics",
    "assemble_throughput_sweep",
    "run_throughput_sweep",
]

Traffic = list[tuple[int, int, float]]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def poisson_arrival_times(
    count: int, rate: float, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``count`` arrival times of a Poisson process with the given rate."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate <= 0:
        raise ValueError("rate must be positive")
    generator = _rng(rng)
    gaps = generator.exponential(1.0 / rate, size=count)
    return np.cumsum(gaps)


def uniform_random_pairs(
    num_nodes: int,
    num_messages: int,
    rng: np.random.Generator | int | None = None,
    *,
    rate: float | None = None,
) -> Traffic:
    """Uniform random traffic: independent random (source, destination) pairs.

    Sources and destinations are drawn uniformly (destination resampled when
    it collides with the source).  When ``rate`` is given, injection times
    follow a Poisson process of that rate; otherwise all messages are injected
    at time 0.
    """
    if num_nodes < 2:
        raise ValueError("uniform random traffic needs at least 2 nodes")
    generator = _rng(rng)
    times = (
        poisson_arrival_times(num_messages, rate, generator)
        if rate is not None
        else np.zeros(num_messages)
    )
    traffic: Traffic = []
    for k in range(num_messages):
        source = int(generator.integers(num_nodes))
        destination = int(generator.integers(num_nodes))
        while destination == source:
            destination = int(generator.integers(num_nodes))
        traffic.append((source, destination, float(times[k])))
    return traffic


def permutation_pairs(
    num_nodes: int, rng: np.random.Generator | int | None = None
) -> Traffic:
    """A random permutation workload: every node sends one message, no two
    messages share a destination, nobody sends to itself (for ``n > 1``)."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    generator = _rng(rng)
    destinations = generator.permutation(num_nodes)
    # Resample until derangement-ish (fix self-loops by swapping).
    for node in range(num_nodes):
        if destinations[node] == node:
            other = (node + 1) % num_nodes
            destinations[node], destinations[other] = (
                destinations[other],
                destinations[node],
            )
    return [(node, int(destinations[node]), 0.0) for node in range(num_nodes)]


def hotspot_pairs(
    num_nodes: int,
    num_messages: int,
    hotspot: int = 0,
    hotspot_fraction: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Traffic:
    """Hotspot traffic: a fraction of messages target one node, the rest are uniform."""
    if not 0 <= hotspot < num_nodes:
        raise ValueError("hotspot node out of range")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    generator = _rng(rng)
    traffic: Traffic = []
    for _ in range(num_messages):
        source = int(generator.integers(num_nodes))
        if generator.random() < hotspot_fraction and source != hotspot:
            destination = hotspot
        else:
            destination = int(generator.integers(num_nodes))
            while destination == source:
                destination = int(generator.integers(num_nodes))
        traffic.append((source, destination, 0.0))
    return traffic


def broadcast_pairs(num_nodes: int, root: int = 0) -> Traffic:
    """Naive one-to-all broadcast as unicasts: the root sends to every other node.

    This is the *unicast emulation* of a broadcast; compare with the
    tree-based schedules of :mod:`repro.routing.broadcast` in the simulator
    benchmarks.
    """
    if not 0 <= root < num_nodes:
        raise ValueError("root out of range")
    return [(root, node, 0.0) for node in range(num_nodes) if node != root]


def all_to_all_pairs(num_nodes: int) -> Traffic:
    """Complete exchange: every ordered pair of distinct nodes gets one message."""
    return [
        (source, destination, 0.0)
        for source in range(num_nodes)
        for destination in range(num_nodes)
        if source != destination
    ]


# ---------------------------------------------------------------------------
# Multi-workload throughput driver
# ---------------------------------------------------------------------------
#: Workload names accepted by :func:`make_workload` / :func:`run_throughput_sweep`.
#: ``bursty`` and ``diurnal`` delegate to the arrival-process layer of
#: :mod:`repro.simulation.scenarios` (on/off trains and sinusoidally
#: modulated Poisson); the first three are the classic inline generators.
SWEEP_WORKLOADS = ("uniform", "hotspot", "permutation", "bursty", "diurnal")


def make_workload(
    name: str,
    num_nodes: int,
    num_messages: int,
    *,
    rng: np.random.Generator | int | None = None,
    rate: float | None = None,
    hotspot: int = 0,
    hotspot_fraction: float = 0.5,
) -> Traffic:
    """One named workload, optionally spread over a Poisson arrival process.

    ``rate=None`` injects every message at time 0 (the saturation regime the
    throughput curves start from); a positive ``rate`` overlays Poisson
    arrival times of that aggregate rate, giving the offered-load axis of the
    curves.  ``permutation`` ignores ``num_messages`` (one message per node).
    """
    generator = _rng(rng)
    if name == "uniform":
        pairs = uniform_random_pairs(num_nodes, num_messages, generator)
    elif name == "hotspot":
        pairs = hotspot_pairs(
            num_nodes, num_messages, hotspot, hotspot_fraction, generator
        )
    elif name == "permutation":
        pairs = permutation_pairs(num_nodes, generator)
    elif name in ("bursty", "diurnal"):
        # Arrival-process layer (runtime import: scenarios imports this
        # module for the shared pair generators).  ``rate`` maps onto the
        # process's load knob via ``with_rate`` — the same axis the
        # scenario Pareto sweeps use.
        from repro.simulation.scenarios import make_arrivals

        arrivals = make_arrivals(name, num_messages=num_messages)
        return arrivals.with_rate(rate).traffic(num_nodes, generator)
    else:
        raise ValueError(
            f"unknown workload {name!r} (expected one of {SWEEP_WORKLOADS})"
        )
    if rate is None:
        return pairs
    times = poisson_arrival_times(len(pairs), rate, generator)
    return [
        (source, destination, float(t))
        for (source, destination, _), t in zip(pairs, times)
    ]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated ``(workload, rate, seed)`` combination of a sweep."""

    workload: str
    rate: float | None
    seed: int
    num_messages: int
    stats: NetworkStats


@dataclass
class ThroughputSweep:
    """Result of :func:`run_throughput_sweep`.

    ``points`` holds one :class:`SweepPoint` per ``(workload, rate, seed)``
    combination; :meth:`curves` aggregates the seeds of each ``(workload,
    rate)`` pair into one row of the throughput/latency curve.
    """

    graph_name: str
    num_nodes: int
    num_links: int
    engine: str
    link: LinkModel
    points: list[SweepPoint]
    wall_time_s: float
    #: The kernel backend the batched engine ran on (``"numpy"`` for the
    #: vectorised path and for the reference event engine) — recorded so a
    #: ``wall_time_s`` in ``BENCH_sim.json`` is attributable to a backend.
    kernel_backend: str = "numpy"

    def curves(self) -> list[dict]:
        """Throughput/latency curve rows, seeds averaged per (workload, rate)."""
        grouped: dict[tuple[str, float | None], list[SweepPoint]] = {}
        for point in self.points:
            grouped.setdefault((point.workload, point.rate), []).append(point)
        rows = []
        for workload, rate in sorted(
            grouped, key=lambda key: (key[0], key[1] is not None, key[1] or 0.0)
        ):
            points = grouped[(workload, rate)]
            stats = [point.stats for point in points]
            rows.append(
                {
                    "workload": workload,
                    "rate": rate,
                    "seeds": len(points),
                    "messages": sum(point.num_messages for point in points),
                    "delivered": sum(s.delivered for s in stats),
                    "throughput": float(np.mean([s.throughput() for s in stats])),
                    "mean_latency": float(np.mean([s.mean_latency for s in stats])),
                    "max_latency": float(np.max([s.max_latency for s in stats])),
                    "mean_hops": float(np.mean([s.mean_hops for s in stats])),
                    "max_link_queue": int(np.max([s.max_link_queue for s in stats])),
                }
            )
        return rows

    def to_json(self) -> dict:
        """JSON-serialisable summary (the ``BENCH_sim.json`` entry format)."""
        return {
            "graph": self.graph_name,
            "nodes": self.num_nodes,
            "links": self.num_links,
            "engine": self.engine,
            "link_latency": self.link.latency,
            "link_transmission_time": self.link.transmission_time,
            "kernel_backend": self.kernel_backend,
            "wall_time_s": round(self.wall_time_s, 4),
            "curves": self.curves(),
        }


def sweep_combos(
    workloads: tuple[str, ...], rates: tuple[float | None, ...], seeds
) -> list[tuple[str, float | None, int]]:
    """The ``(workload, rate, seed)`` combinations of a sweep, in run order."""
    return [
        (workload, rate, int(seed))
        for workload in workloads
        for rate in rates
        for seed in seeds
    ]


def sweep_traffics(
    num_nodes: int,
    combos,
    num_messages: int,
    *,
    hotspot: int = 0,
    hotspot_fraction: float = 0.5,
) -> list[Traffic]:
    """One deterministic traffic per combination (seeded generators only).

    Because every traffic is a pure function of its combination, the
    sharded driver (:mod:`repro.simulation.sharding`) can regenerate them
    on any host and the chunk digests will agree.
    """
    return [
        make_workload(
            workload,
            num_nodes,
            num_messages,
            rng=seed,
            rate=rate,
            hotspot=hotspot,
            hotspot_fraction=hotspot_fraction,
        )
        for workload, rate, seed in combos
    ]


def assemble_throughput_sweep(
    graph: BaseDigraph,
    combos,
    traffics,
    stats_list,
    *,
    engine: str,
    link: LinkModel,
    wall_time_s: float,
    kernel_backend: str = "numpy",
) -> ThroughputSweep:
    """Package per-combination stats into a :class:`ThroughputSweep`.

    Shared by the in-process driver and the sharded merge path, so both
    produce the same curves from the same stats.
    """
    points = [
        SweepPoint(
            workload=workload,
            rate=rate,
            seed=seed,
            num_messages=len(traffic),
            stats=stats,
        )
        for (workload, rate, seed), traffic, stats in zip(combos, traffics, stats_list)
    ]
    n = graph.num_vertices
    return ThroughputSweep(
        graph_name=graph.name or f"digraph(n={n})",
        num_nodes=n,
        num_links=graph.num_arcs,
        engine=engine,
        link=link,
        points=points,
        wall_time_s=wall_time_s,
        kernel_backend=kernel_backend,
    )


def run_throughput_sweep(
    graph: BaseDigraph,
    *,
    workloads: tuple[str, ...] = ("uniform",),
    rates: tuple[float | None, ...] = (None,),
    seeds=range(3),
    num_messages: int = 1000,
    link: LinkModel | None = None,
    engine: str = "batched",
    router: str | None = None,
    hotspot: int = 0,
    hotspot_fraction: float = 0.5,
    until: float | None = None,
) -> ThroughputSweep:
    """Run every ``(workload, rate, seed)`` combination on one topology.

    One router is built and shared across combinations (``router=None``
    defaults to the ``"auto"`` policy: the memoised dense table for small
    topologies, table-free routing above
    :data:`repro.routing.routers.AUTO_DENSE_MAX_N` vertices).  With the
    default ``engine="batched"`` all combinations are stacked into a single
    :meth:`~repro.simulation.network.BatchedNetworkSimulator.run_many` pass
    (per-combination results are bit-identical to running them one at a
    time).  ``engine="event"`` runs the reference loop per combination — the
    cross-check the parity suite leans on.
    """
    if engine not in SIMULATOR_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {sorted(SIMULATOR_ENGINES)})"
        )
    n = graph.num_vertices
    combos = sweep_combos(workloads, rates, seeds)
    traffics = sweep_traffics(
        n, combos, num_messages, hotspot=hotspot, hotspot_fraction=hotspot_fraction
    )
    simulator = SIMULATOR_ENGINES[engine](graph, link=link, router=router)
    start = _time.perf_counter()
    if isinstance(simulator, BatchedNetworkSimulator):
        results = simulator.run_many(traffics, until=until, return_messages=False)
        stats_list = [stats for stats, _ in results]
    else:
        stats_list = [simulator.run(traffic, until=until)[0] for traffic in traffics]
    wall = _time.perf_counter() - start
    return assemble_throughput_sweep(
        graph,
        combos,
        traffics,
        stats_list,
        engine=engine,
        link=simulator.link,
        wall_time_s=wall,
        kernel_backend=getattr(simulator, "kernel_backend", "numpy"),
    )
