"""Process-sharded ``run_many``: million-message studies over chunk stores.

:meth:`repro.simulation.network.BatchedNetworkSimulator.run_many` stacks many
replicas into one pooled pass, but one process and one address space.  This
module scales the same contract out, reusing the deterministic-partitioning
machinery the degree–diameter sweep built in :mod:`repro.otis.sweep` (the
Bobpp-style scheme of PAPERS.md):

* :class:`ReplicaChunkManifest` — a pure function of the simulation inputs
  that cuts the replica list into *named* chunks.  A chunk id hashes the
  topology fingerprint, the link timings, the router kind, the per-replica
  traffic digests and :func:`sim_code_version` (a fingerprint of the
  result-defining sources), so every host — and every re-run — agrees on
  which file holds which replicas, and no resumed study can mix results
  computed by different simulator code.
* chunks execute through :class:`repro.otis.sweep.ChunkStore`: each chunk's
  per-replica :class:`~repro.simulation.network.NetworkStats` are published
  as one atomic JSONL file, so an interrupted study resumes by skipping the
  chunk files already on disk and recomputing only the chunk that was in
  flight.
* :func:`merge_replica_stats` folds the chunk files back into the per-replica
  stats list **byte-identical** to the in-process ``run_many`` (per-replica
  results are independent of how replicas are stacked — the engine contract —
  and the JSON codec round-trips every float exactly).

:func:`run_many_sharded` is the single-host convenience wrapper (build, run
— optionally over a :class:`~concurrent.futures.ProcessPoolExecutor` —
merge); the multi-host front-end is ``python -m repro sim --out-dir ...
--shard i/k --resume`` / ``--merge``.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graphs.digraph import BaseDigraph
from repro.otis.sweep import (
    ChunkStore,
    SweepChunk,
    ensure_store_identity,
    fingerprint_paths,
    make_chunks,
)
from repro.simulation.network import (
    BatchedNetworkSimulator,
    LinkModel,
    NetworkStats,
)

__all__ = [
    "sim_code_version",
    "graph_fingerprint",
    "traffic_digest",
    "verify_traffics",
    "stats_to_json",
    "stats_from_json",
    "ReplicaChunkManifest",
    "run_replica_chunk",
    "run_replica_shard",
    "merge_replica_stats",
    "run_many_sharded",
]

#: Sources whose content defines what a simulated ``NetworkStats`` *means*.
#: Hashed into every replica-chunk id (same contract as the sweep's
#: ``_VERDICT_SOURCES``): editing any of them renames every chunk, so a
#: resumed study recomputes instead of trusting stale results.
_SIM_SOURCES = (
    "words.py",
    "graphs/digraph.py",
    "graphs/apsp.py",
    "routing/paths.py",
    "routing/routers.py",
    "simulation/events.py",
    "simulation/network.py",
    "simulation/scenarios.py",
    "simulation/workloads.py",
    "kernels/__init__.py",
    "kernels/_pyimpl.py",
    "kernels/native.py",
    "kernels/numba_backend.py",
)


def sim_code_version() -> str:
    """Fingerprint of the simulator-defining sources (chunk-id component).

    The active kernel backend is folded in (same rationale as the sweep's
    ``code_version``): bit-identical or not, a chunk store resumed under a
    different backend is rejected with ``StoreIdentityError`` instead of
    silently mixing code paths.
    """
    from repro import kernels

    return fingerprint_paths(
        _SIM_SOURCES, ("kernels=" + kernels.active_backend(),)
    )


def graph_fingerprint(graph: BaseDigraph) -> str:
    """Stable digest of a topology (vertex count, name and arc multiset)."""
    digest = hashlib.sha256()
    digest.update(f"{graph.num_vertices}:{graph.name}".encode())
    arcs = np.fromiter(
        (x for arc in graph.arcs() for x in arc), dtype=np.int64
    )
    digest.update(arcs.tobytes())
    return digest.hexdigest()[:16]


def traffic_digest(traffic: np.ndarray) -> str:
    """Stable digest of one replica's ``(source, destination, time)`` triples."""
    array = np.ascontiguousarray(np.asarray(traffic, dtype=float))
    if array.size == 0:
        array = array.reshape(0, 3)
    if array.ndim != 2 or array.shape[1] != 3:
        raise ValueError(
            "traffic must be a sequence of (source, destination, time) triples"
        )
    return hashlib.sha256(array.tobytes()).hexdigest()[:16]


# --------------------------------------------------------------------------
# NetworkStats JSON codec (exact float round-trip)
# --------------------------------------------------------------------------
_STATS_FIELDS = (
    "delivered",
    "undelivered",
    "makespan",
    "mean_latency",
    "max_latency",
    "mean_hops",
    "max_link_queue",
    "total_link_busy_time",
    # Scenario counters (all zero outside degraded-mode scenario runs).
    "dropped_buffer",
    "dropped_fault",
    "dropped_hops",
    "retransmits",
    "rerouted_hops",
)


def stats_to_json(stats: NetworkStats) -> dict:
    """One :class:`NetworkStats` as a JSON object.

    Python's ``json`` serialises floats with ``repr``, the shortest string
    that round-trips exactly — which is what lets the sharded path promise
    *byte-identical* merged results, not merely close ones.
    """
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def stats_from_json(record: dict) -> NetworkStats:
    """Inverse of :func:`stats_to_json`."""
    return NetworkStats(
        delivered=int(record["delivered"]),
        undelivered=int(record["undelivered"]),
        makespan=float(record["makespan"]),
        mean_latency=float(record["mean_latency"]),
        max_latency=float(record["max_latency"]),
        mean_hops=float(record["mean_hops"]),
        max_link_queue=int(record["max_link_queue"]),
        total_link_busy_time=float(record["total_link_busy_time"]),
        dropped_buffer=int(record.get("dropped_buffer", 0)),
        dropped_fault=int(record.get("dropped_fault", 0)),
        dropped_hops=int(record.get("dropped_hops", 0)),
        retransmits=int(record.get("retransmits", 0)),
        rerouted_hops=int(record.get("rerouted_hops", 0)),
    )


# --------------------------------------------------------------------------
# Manifest
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaChunkManifest:
    """Deterministic partition of a ``run_many`` replica list into chunks.

    ``chunks[i].items`` holds ``(replica_index, traffic_digest)`` pairs; the
    digests tie each chunk id to the exact traffic content, so two hosts
    sharing a store directory can only ever agree on a chunk when they
    simulate the same messages on the same topology with the same code.
    """

    graph_fp: str
    link: LinkModel
    router: str
    num_replicas: int
    chunk_size: int
    code_version: str
    chunks: tuple[SweepChunk, ...]
    scenario: object | None = None

    @classmethod
    def build(
        cls,
        graph: BaseDigraph,
        traffics,
        *,
        link: LinkModel | None = None,
        router: str = "auto",
        chunk_size: int = 4,
        code_version: str | None = None,
        scenario=None,
    ) -> "ReplicaChunkManifest":
        """Partition ``traffics`` (one entry per replica) into named chunks.

        ``code_version`` defaults to :func:`sim_code_version` and should only
        be overridden by tests (to simulate a version bump without editing
        sources).  A ``scenario`` (:class:`repro.simulation.scenarios.
        Scenario`) carries its own link model — its
        :meth:`~repro.simulation.scenarios.Scenario.digest` joins the chunk
        identity, so fleet workers sharding a scenario sweep can only agree
        on a chunk when they run the same fault plan, buffers and reroute
        policy (the traffics stay explicit: digested per replica as usual).
        """
        if scenario is not None and link is not None:
            raise ValueError("pass either link or scenario, not both")
        link = scenario.link if scenario is not None else (link or LinkModel())
        version = sim_code_version() if code_version is None else code_version
        graph_fp = graph_fingerprint(graph)
        items = [
            (index, traffic_digest(traffic))
            for index, traffic in enumerate(traffics)
        ]
        identity = [
            "run_many",
            graph_fp,
            link.latency,
            link.transmission_time,
            router,
            version,
        ]
        if scenario is not None:
            identity.append(scenario.digest())
        return cls(
            graph_fp=graph_fp,
            link=link,
            router=router,
            num_replicas=len(items),
            chunk_size=chunk_size,
            code_version=version,
            chunks=make_chunks(items, chunk_size, identity),
            scenario=scenario,
        )

    def shard(self, index: int, count: int) -> tuple[SweepChunk, ...]:
        """Round-robin shard ``index`` of ``count`` (same rule as the sweep)."""
        if count < 1:
            raise ValueError("shard count must be positive")
        if not 0 <= index < count:
            raise ValueError(f"shard index must be in [0, {count}), got {index}")
        return self.chunks[index::count]

    def identity(self) -> dict:
        """The JSON identity persisted as ``manifest.json`` in a store.

        Same contract as :meth:`repro.otis.sweep.ChunkManifest.identity`:
        every parameter that renames the chunk ids (the traffic digests are
        covered through the digest over the ids), so a relaunch of an
        out-dir with a different topology, link timing, router, replica set
        or simulator code fails fast instead of silently matching nothing.
        """
        ids = hashlib.sha256(
            "".join(chunk.chunk_id for chunk in self.chunks).encode()
        ).hexdigest()[:16]
        identity = {
            "kind": "run_many-replicas",
            "graph_fingerprint": self.graph_fp,
            "link_latency": self.link.latency,
            "link_transmission_time": self.link.transmission_time,
            "router": self.router,
            "num_replicas": self.num_replicas,
            "chunk_size": self.chunk_size,
            "code_version": self.code_version,
            "num_chunks": len(self.chunks),
            "chunk_ids_digest": ids,
        }
        if self.scenario is not None:
            identity["scenario_digest"] = self.scenario.digest()
        return identity


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------
def verify_traffics(manifest: ReplicaChunkManifest, traffics) -> list[np.ndarray]:
    """Check ``traffics`` against a manifest; returns them as float arrays.

    Shared by the shard runner and the fleet driver: both must refuse to
    simulate messages other than the ones the chunk ids were derived from —
    a mismatch means the caller is trying to resume a store with different
    traffic, which would poison the merge.
    """
    if len(traffics) != manifest.num_replicas:
        raise ValueError(
            f"manifest covers {manifest.num_replicas} replicas, got "
            f"{len(traffics)} traffics"
        )
    arrays = [np.asarray(traffic, dtype=float) for traffic in traffics]
    for chunk in manifest.chunks:
        for index, digest in chunk.items:
            if traffic_digest(arrays[index]) != digest:
                raise ValueError(
                    f"traffic of replica {index} does not match the manifest "
                    "digest (different messages than the store was built for)"
                )
    return arrays


def run_replica_chunk(payload) -> list[dict]:
    """Simulate one chunk's replicas; returns one record per replica.

    ``payload`` is ``(graph, link, router_kind, scenario, [(index, traffic),
    ...])`` — plain picklable values so a :class:`ProcessPoolExecutor` worker
    can run it; the serial path calls it with the same payload.  Each chunk
    is its own ``run_many`` stack, and per-replica results are independent of
    the stacking (the batched-engine contract, scenario runs included), so
    chunk boundaries never show in the merged output.
    """
    graph, link, router_kind, scenario, entries = payload
    if scenario is not None:
        simulator = BatchedNetworkSimulator(
            graph, scenario=scenario, router=router_kind
        )
    else:
        simulator = BatchedNetworkSimulator(graph, link=link, router=router_kind)
    results = simulator.run_many(
        [traffic for _, traffic in entries], return_messages=False
    )
    return [
        {"replica": index, "stats": stats_to_json(stats)}
        for (index, _), (stats, _) in zip(entries, results)
    ]


#: Backwards-compatible alias from before ``run_replica_chunk`` was public
#: (the fleet driver imports the public name).
_run_replica_chunk = run_replica_chunk


def run_replica_shard(
    manifest: ReplicaChunkManifest,
    store: ChunkStore | str | Path,
    graph: BaseDigraph,
    traffics,
    *,
    shard: tuple[int, int] = (0, 1),
    resume: bool = False,
    workers: int | None = None,
) -> dict:
    """Execute (one shard of) a replica manifest into a chunk store.

    Mirrors :func:`repro.otis.sweep.run_sweep`: different shards write
    disjoint chunk files, ``resume=True`` skips already-published chunks,
    and ``workers > 1`` fans the shard's chunks over a process pool,
    publishing each chunk the moment it completes so a crash loses at most
    the chunks in flight.  The supplied ``traffics`` are verified against
    the manifest's digests before anything runs — a mismatch means the
    caller is trying to resume a store with different messages, which would
    poison the merge.
    """
    if not isinstance(store, ChunkStore):
        store = ChunkStore(store)
    ensure_store_identity(store, manifest.identity())
    arrays = verify_traffics(manifest, traffics)
    shard_index, shard_count = shard
    chunks = manifest.shard(shard_index, shard_count)
    todo = []
    skipped = []
    for chunk in chunks:
        if resume and store.is_complete(chunk):
            skipped.append(chunk.chunk_id)
        else:
            todo.append(chunk)
    payloads = [
        (
            graph,
            manifest.link,
            manifest.router,
            manifest.scenario,
            [(index, arrays[index]) for index, _ in chunk.items],
        )
        for chunk in todo
    ]
    if workers is not None and workers > 1 and len(todo) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run_replica_chunk, payload): chunk
                for chunk, payload in zip(todo, payloads)
            }
            for future in as_completed(futures):
                store.write(futures[future], future.result())
    else:
        for chunk, payload in zip(todo, payloads):
            store.write(chunk, run_replica_chunk(payload))
    return {
        "ran": [chunk.chunk_id for chunk in todo],
        "skipped": skipped,
        "store": str(store.directory),
    }


def merge_replica_stats(
    manifest: ReplicaChunkManifest, store: ChunkStore | str | Path
) -> list[NetworkStats]:
    """Fold a store's chunk files into the per-replica stats list.

    The result is byte-identical to
    ``[stats for stats, _ in simulator.run_many(traffics,
    return_messages=False)]``; raises ``FileNotFoundError`` naming the
    missing chunk ids when any chunk has not been published (run the
    remaining shards, or relaunch with ``resume=True``, first), and
    :class:`~repro.otis.sweep.StoreIdentityError` before anything else when
    the store's ``manifest.json`` was written for different parameters.
    """
    if not isinstance(store, ChunkStore):
        store = ChunkStore(store)
    ensure_store_identity(store, manifest.identity())
    missing = [
        chunk.chunk_id for chunk in manifest.chunks if not store.is_complete(chunk)
    ]
    if missing:
        message = (
            f"{len(missing)} of {len(manifest.chunks)} replica chunks "
            f"incomplete (e.g. {missing[:3]}); run the remaining shards "
            "(or resume) first"
        )
        # Chunk files that belong to no chunk of *this* manifest usually mean
        # the manifest identity changed under the store: different
        # --chunk-size/router/link/traffic parameters, or a simulator code
        # edit, rename every chunk id.  "Run the remaining shards" alone
        # would just pile a second full set of chunks into the store.
        orphans = store.completed_ids() - {c.chunk_id for c in manifest.chunks}
        if orphans:
            message += (
                f"; NOTE: the store also holds {len(orphans)} chunk file(s) "
                "from a different manifest — the chunk size, router, link "
                "timings, traffic parameters or simulator code version "
                "likely changed since they were written (current code "
                f"version: {manifest.code_version})"
            )
        raise FileNotFoundError(message)
    stats: list[NetworkStats | None] = [None] * manifest.num_replicas
    for chunk in manifest.chunks:
        for record in store.read(chunk):
            stats[int(record["replica"])] = stats_from_json(record["stats"])
    if any(entry is None for entry in stats):  # pragma: no cover - defensive
        raise ValueError("chunk files do not cover every replica")
    return stats  # type: ignore[return-value]


def run_many_sharded(
    graph: BaseDigraph,
    traffics,
    *,
    link: LinkModel | None = None,
    scenario=None,
    router: str = "auto",
    store: ChunkStore | str | Path,
    chunk_size: int = 4,
    resume: bool = False,
    workers: int | None = None,
) -> list[NetworkStats]:
    """Single-host build → run → merge pipeline over a chunk store.

    Equivalent to ``BatchedNetworkSimulator(graph, link,
    router=router).run_many(traffics, return_messages=False)`` with the
    replica blocks executed as resumable chunks (optionally across a process
    pool) — per-replica :class:`NetworkStats` are byte-identical to the
    in-process path.  The store outlives the call, so re-running with
    ``resume=True`` after an interruption recomputes only the unpublished
    chunks.
    """
    manifest = ReplicaChunkManifest.build(
        graph,
        traffics,
        link=link,
        scenario=scenario,
        router=router,
        chunk_size=chunk_size,
    )
    run_replica_shard(
        manifest, store, graph, traffics, resume=resume, workers=workers
    )
    return merge_replica_stats(manifest, store)
