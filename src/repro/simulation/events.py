"""A minimal discrete-event simulation engine.

The network model of :mod:`repro.simulation.network` needs nothing more than
a time-ordered event queue with deterministic tie-breaking and a simulator
loop with a stop condition.  Implementing it here (rather than pulling in an
external DES framework) keeps the library self-contained and the behaviour
reproducible bit-for-bit across runs: events with equal timestamps are
processed in insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events are ordered by ``(time, sequence)`` so that simultaneous events
    fire in the order they were scheduled — important for reproducibility.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    sequence:
        Monotonic insertion counter (assigned by the queue).
    action:
        Zero-argument callable executed when the event fires.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run at ``time``; returns the event object."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=float(time), sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        return self._heap[0].time if self._heap else None


class Simulator:
    """The simulation main loop.

    Attributes
    ----------
    now:
        Current simulation time (advances monotonically).
    events_processed:
        Number of events executed so far.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute time (not before the current time)."""
        if time < self.now:
            raise ValueError("cannot schedule an event in the past")
        return self.queue.push(time, action)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties (or a limit is hit).

        Parameters
        ----------
        until:
            Optional horizon; events scheduled after it are left unprocessed.
        max_events:
            Optional cap on the number of events to execute (a safeguard for
            the property-based tests that feed adversarial workloads).

        Returns
        -------
        float
            The simulation time after the last processed event.
        """
        while len(self.queue):
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            if max_events is not None and self.events_processed >= max_events:
                break
            event = self.queue.pop()
            self.now = event.time
            self.events_processed += 1
            event.action()
        return self.now
