"""A minimal discrete-event simulation engine.

The network model of :mod:`repro.simulation.network` needs nothing more than
a time-ordered event queue with deterministic tie-breaking and a simulator
loop with a stop condition.  Implementing it here (rather than pulling in an
external DES framework) keeps the library self-contained and the behaviour
reproducible bit-for-bit across runs: events with equal timestamps are
processed in insertion order.

Two queue flavours are provided:

* :class:`EventQueue` / :class:`Simulator` — the classic heap of callback
  events, one ``action()`` per pop; this drives the reference event-at-a-time
  :class:`repro.simulation.network.NetworkSimulator`.
* :class:`BatchEventQueue` — an array-pooled queue for the batched engine
  (:class:`repro.simulation.network.BatchedNetworkSimulator`): every slot
  holds at most one pending event and :meth:`BatchEventQueue.pop_batch`
  extracts *all* events sharing the minimum timestamp in one call, ordered by
  the same ``(time, insertion sequence)`` rule as the heap, so both engines
  process simultaneous events identically.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Event", "EventQueue", "Simulator", "BatchEventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events are ordered by ``(time, sequence)`` so that simultaneous events
    fire in the order they were scheduled — important for reproducibility.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    sequence:
        Monotonic insertion counter (assigned by the queue).
    action:
        Zero-argument callable executed when the event fires.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run at ``time``; returns the event object."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=float(time), sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        return self._heap[0].time if self._heap else None


class BatchEventQueue:
    """An event queue with batched minimum-time extraction.

    The queue owns ``capacity`` slots (one per simulated message: a message
    never has more than one pending event).  Internally, slots are bucketed
    by their *exact* fire time — float timestamps computed identically
    compare equal bit-for-bit, which is precisely the reference simulator's
    notion of "simultaneous" — and a heap of the distinct times yields the
    next batch without scanning all slots.  Each slot is stamped with a
    monotonically increasing sequence number at scheduling time;
    :meth:`pop_batch` removes *every* slot whose time equals the current
    minimum and returns the slot indices sorted by sequence — exactly the
    order in which :class:`EventQueue` would have popped them one at a time.

    Parameters
    ----------
    capacity:
        Number of slots (events are addressed by slot index ``0 .. capacity-1``).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._pending = np.zeros(capacity, dtype=bool)
        # One bucket (python list of slots, in insertion order) per *distinct*
        # pending fire time; the heap holds each distinct time exactly once,
        # for as long as its bucket exists.  Insertion order within a bucket
        # is sequence order, so popping a whole bucket reproduces the order a
        # heap of individual events would produce.
        self._buckets: dict[float, list[int]] = {}
        self._heap: list[float] = []
        self._count = 0
        self._capacity = int(capacity)

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Number of slots."""
        return self._capacity

    def schedule(self, indices: np.ndarray, times: np.ndarray) -> None:
        """Schedule one event per slot in ``indices`` at the given ``times``.

        Sequence order is the order the indices appear, which is how a heap
        of individual events would order simultaneous pushes.  Slots must
        currently be empty (each message has at most one pending event).
        """
        indices = np.asarray(indices, dtype=np.int64)
        times = np.asarray(times, dtype=float)
        if indices.size == 0:
            return
        if times.shape != indices.shape:
            raise ValueError("indices and times must have the same length")
        if np.any(times < 0):
            raise ValueError("event time must be non-negative")
        if self._pending[indices].any() or np.unique(indices).size != indices.size:
            raise ValueError("slot already holds a pending event")
        self._pending[indices] = True
        self._count += indices.size
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        sorted_indices = indices[order]
        cuts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_times)) + 1, [sorted_times.size])
        ).tolist()
        heads = sorted_times[cuts[:-1]].tolist()
        slots = sorted_indices.tolist()
        buckets = self._buckets
        heap = self._heap
        for k, time in enumerate(heads):
            segment = slots[cuts[k] : cuts[k + 1]]
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = segment
                heapq.heappush(heap, time)
            else:
                bucket.extend(segment)

    def schedule_one(self, index: int, time: float) -> None:
        """Scalar :meth:`schedule` for single events (no array round-trips)."""
        time = float(time)
        if time < 0:
            raise ValueError("event time must be non-negative")
        if self._pending[index]:
            raise ValueError("slot already holds a pending event")
        self._pending[index] = True
        self._count += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [index]
            heapq.heappush(self._heap, time)
        else:
            bucket.append(index)

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or None when empty."""
        if self._count == 0:
            return None
        return self._heap[0]

    def pop_batch(self, limit: int | None = None) -> tuple[float, list[int]]:
        """Remove and return all events sharing the minimum time.

        Returns ``(time, slots)`` with the slot indices in insertion-sequence
        order.  With ``limit`` set, only the ``limit`` lowest-sequence events
        of the batch are removed (the rest stay pending) — this is how the
        batched simulator honours ``max_events`` mid-batch, matching the
        one-event-at-a-time reference loop.
        """
        if self._count == 0:
            raise IndexError("pop from an empty event queue")
        time = heapq.heappop(self._heap)
        slots = self._buckets.pop(time)
        if limit is not None and len(slots) > limit:
            self._buckets[time] = slots[limit:]
            slots = slots[:limit]
            heapq.heappush(self._heap, time)
        if len(slots) == 1:
            self._pending[slots[0]] = False
        else:
            self._pending[np.asarray(slots, dtype=np.int64)] = False
        self._count -= len(slots)
        return time, slots


class Simulator:
    """The simulation main loop.

    Attributes
    ----------
    now:
        Current simulation time (advances monotonically).
    events_processed:
        Number of events executed so far.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute time (not before the current time)."""
        if time < self.now:
            raise ValueError("cannot schedule an event in the past")
        return self.queue.push(time, action)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties (or a limit is hit).

        Parameters
        ----------
        until:
            Optional horizon; events scheduled after it are left unprocessed.
        max_events:
            Optional cap on the number of events to execute (a safeguard for
            the property-based tests that feed adversarial workloads).

        Returns
        -------
        float
            The simulation time after the last processed event.
        """
        while len(self.queue):
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            if max_events is not None and self.events_processed >= max_events:
                break
            event = self.queue.pop()
            self.now = event.time
            self.events_processed += 1
            event.action()
        return self.now
