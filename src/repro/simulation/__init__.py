"""Discrete-event simulation of OTIS-based multiprocessor networks.

The paper positions OTIS layouts as the physical substrate of multihop
optical multiprocessor networks (Section 1; refs. [13, 14, 22, 27]).  This
subpackage provides the machinery to *run* workloads on the laid-out
topologies and compare them — the paper itself contains no such experiments,
so these are ablation/extension studies (documented as A2 in DESIGN.md), not
reproductions of printed numbers.

* :mod:`repro.simulation.events` — a minimal discrete-event engine
  (heap-based event queue, deterministic tie-breaking).
* :mod:`repro.simulation.network` — a store-and-forward network built from
  any digraph, with per-hop latency taken from the OTIS hardware model and
  single-port injection/ejection constraints.
* :mod:`repro.simulation.workloads` — synthetic traffic generators
  (uniform random, permutation, broadcast, all-to-all, hotspot).
* :mod:`repro.simulation.protocols` — end-to-end experiments returning
  latency / throughput statistics.
"""

from repro.simulation.events import EventQueue, Simulator
from repro.simulation.network import LinkModel, Message, NetworkSimulator, NetworkStats
from repro.simulation.protocols import (
    run_broadcast,
    run_gossip_traffic,
    run_point_to_point,
    run_random_traffic,
)
from repro.simulation.workloads import (
    all_to_all_pairs,
    broadcast_pairs,
    hotspot_pairs,
    permutation_pairs,
    uniform_random_pairs,
)

__all__ = [
    "EventQueue",
    "Simulator",
    "LinkModel",
    "Message",
    "NetworkSimulator",
    "NetworkStats",
    "run_broadcast",
    "run_point_to_point",
    "run_random_traffic",
    "run_gossip_traffic",
    "uniform_random_pairs",
    "permutation_pairs",
    "broadcast_pairs",
    "all_to_all_pairs",
    "hotspot_pairs",
]
