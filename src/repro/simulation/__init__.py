"""Discrete-event simulation of OTIS-based multiprocessor networks.

The paper positions OTIS layouts as the physical substrate of multihop
optical multiprocessor networks (Section 1; refs. [13, 14, 22, 27]).  This
subpackage provides the machinery to *run* workloads on the laid-out
topologies and compare them — the paper itself contains no such experiments,
so these are ablation/extension studies (documented as A2 in DESIGN.md), not
reproductions of printed numbers.

* :mod:`repro.simulation.events` — a minimal discrete-event engine: a
  heap-based callback queue with deterministic tie-breaking, plus the
  :class:`BatchEventQueue` that extracts whole same-timestamp batches for
  the vectorised engine.
* :mod:`repro.simulation.network` — a store-and-forward network built from
  any digraph, with per-hop latency taken from the OTIS hardware model and
  single-port injection/ejection constraints.  Two engines: the reference
  event-at-a-time :class:`NetworkSimulator` and the array-pooled
  :class:`BatchedNetworkSimulator` (bit-identical results; see the
  batched-engine contract in the module docstring).
* :mod:`repro.simulation.workloads` — synthetic traffic generators
  (uniform random, permutation, broadcast, all-to-all, hotspot) and the
  multi-workload throughput driver :func:`run_throughput_sweep`.
* :mod:`repro.simulation.scenarios` — the composable scenario layers
  (arrival processes, finite link buffers, fault plans, reroute policies),
  the :class:`Scenario` composition both engines accept, and the
  throughput–latency Pareto sweep driver :func:`run_scenario_sweep`.
* :mod:`repro.simulation.sharding` — process-sharded ``run_many`` over the
  resumable chunk-store machinery of :mod:`repro.otis.sweep`: replica
  blocks execute as named, atomically published chunks whose merge is
  byte-identical to the in-process pass.
* :mod:`repro.simulation.protocols` — end-to-end experiments returning
  latency / throughput statistics (every engine selectable).
"""

from repro.simulation.events import BatchEventQueue, EventQueue, Simulator
from repro.simulation.network import (
    SIMULATOR_ENGINES,
    BatchedNetworkSimulator,
    BufferedLinkModel,
    LinkModel,
    Message,
    NetworkSimulator,
    NetworkStats,
)
from repro.simulation.scenarios import (
    ARRIVAL_KINDS,
    REROUTE_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    FaultEvent,
    FaultPlan,
    HotspotArrivals,
    PermutationArrivals,
    Scenario,
    ScenarioSweep,
    UniformArrivals,
    make_arrivals,
    run_scenario_sweep,
    validate_traffic,
)
from repro.simulation.protocols import (
    run_broadcast,
    run_gossip_traffic,
    run_point_to_point,
    run_random_traffic,
)
from repro.simulation.sharding import (
    ReplicaChunkManifest,
    merge_replica_stats,
    run_many_sharded,
    run_replica_shard,
)
from repro.simulation.workloads import (
    SWEEP_WORKLOADS,
    SweepPoint,
    ThroughputSweep,
    all_to_all_pairs,
    broadcast_pairs,
    hotspot_pairs,
    make_workload,
    permutation_pairs,
    run_throughput_sweep,
    uniform_random_pairs,
)

__all__ = [
    "EventQueue",
    "BatchEventQueue",
    "Simulator",
    "LinkModel",
    "BufferedLinkModel",
    "Message",
    "NetworkSimulator",
    "BatchedNetworkSimulator",
    "NetworkStats",
    "SIMULATOR_ENGINES",
    "run_broadcast",
    "run_point_to_point",
    "run_random_traffic",
    "run_gossip_traffic",
    "uniform_random_pairs",
    "permutation_pairs",
    "broadcast_pairs",
    "all_to_all_pairs",
    "hotspot_pairs",
    "make_workload",
    "SWEEP_WORKLOADS",
    "SweepPoint",
    "ThroughputSweep",
    "run_throughput_sweep",
    "ReplicaChunkManifest",
    "run_replica_shard",
    "merge_replica_stats",
    "run_many_sharded",
    "ARRIVAL_KINDS",
    "REROUTE_KINDS",
    "UniformArrivals",
    "HotspotArrivals",
    "PermutationArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "FaultEvent",
    "FaultPlan",
    "Scenario",
    "ScenarioSweep",
    "make_arrivals",
    "run_scenario_sweep",
    "validate_traffic",
]
