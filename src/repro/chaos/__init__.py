"""Deterministic fault injection for the fleet/store/serve filesystem seams.

The chaos harness answers the question the robustness acceptance criteria
pose: *under torn writes, lost renames, stale reads, swallowed heartbeats
and disagreeing clocks, does the system still converge to byte-identical
results with zero double-claims?*  It has three pieces:

* :class:`~repro.chaos.schedule.ChaosSchedule` — seeded, order-independent
  decisions (the ``k``-th op on a file faults iff a pure hash of
  ``(seed, op, name, k)`` says so), so every failure replays exactly and a
  finite ``max_faults`` budget guarantees retry loops terminate;
* :class:`~repro.chaos.injector.ChaosInjector` — a context manager that
  monkeypatches ``os.open/write/fsync/replace/rename/link/unlink/utime``
  and ``builtins.open``/``io.open`` for paths under chosen roots, raising
  :class:`~repro.chaos.injector.ChaosFault` (a real-errno ``OSError``) or
  applying the nastier NFS artifacts: half-applied writes, operations that
  succeed but report failure, operations that report success but never
  happened;
* :class:`~repro.chaos.injector.ChaosClock` — an injectable
  ``time``/``monotonic`` pair (with wall-clock skew) that drives lease TTL
  machinery through simulated hours in milliseconds.

``tests/test_chaos.py`` runs the store, resume, split and lease protocols
across hundreds of seeded schedules (the bulk behind ``--run-chaos``; see
docs/chaos.md).
"""

from repro.chaos.injector import ChaosClock, ChaosFault, ChaosInjector
from repro.chaos.schedule import (
    DEFAULT_KINDS,
    DEFAULT_RATES,
    ChaosSchedule,
    FaultEvent,
)

__all__ = [
    "ChaosClock",
    "ChaosFault",
    "ChaosInjector",
    "ChaosSchedule",
    "FaultEvent",
    "DEFAULT_KINDS",
    "DEFAULT_RATES",
]
