"""Seeded, order-independent fault schedules.

A :class:`ChaosSchedule` answers one question — *should this filesystem
operation fail, and how?* — in a way that replays exactly.  The decision for
the ``k``-th occurrence of operation ``op`` on file ``name`` is a pure
function of ``(seed, op, name, k)``: a SHA-256 digest turned into a uniform
draw against the op's fault rate, with the same digest's tail picking the
fault kind.  No shared RNG stream exists, so two interleavings of
*different* files' operations cannot perturb each other's decisions — the
property that makes a chaos run with background threads (heartbeats, cache
appends) still replay the faults that matter.

Random temp-file names (``tempfile.mkstemp`` suffixes, pid/uuid lease tmp
files) would defeat replay, so names are **normalised** before counting:
any dotfile collapses to ``".tmp"``; published names (``chunk-*.jsonl``,
``split-*.json``, ``*.lease`` …) are deterministic already and pass
through.

``max_faults`` caps the total injections so retry loops provably terminate:
after the budget is spent every decision is "no fault", and the system under
test must then converge to the fault-free result — byte-identical, per the
acceptance contract.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

__all__ = ["DEFAULT_KINDS", "DEFAULT_RATES", "ChaosSchedule", "FaultEvent"]

#: Fault kinds the injector knows how to apply, per operation seam.
#:
#: ``eio``/``enospc``/``estale`` raise before the operation is applied;
#: ``torn`` applies *half* a write then raises; ``applied-eio`` applies the
#: operation **and then** raises (the NFS lost-reply artifact — the caller
#: believes it failed, the filesystem says it happened); ``lost`` silently
#: skips the operation (the caller believes it succeeded, nothing happened —
#: a delayed rename that never lands, a heartbeat ``utime`` swallowed by a
#: dead mount).
DEFAULT_KINDS: dict[str, tuple[str, ...]] = {
    "open": ("eio",),
    "read-open": ("estale", "eio"),
    "write": ("torn", "eio", "enospc"),
    "fsync": ("eio",),
    "rename": ("eio", "applied-eio", "lost"),
    "link": ("eio", "applied-eio"),
    "unlink": ("eio", "applied-eio"),
    "utime": ("eio", "lost"),
}

#: Per-op injection probability used when the caller gives only a seed.
DEFAULT_RATES: dict[str, float] = {
    "open": 0.05,
    "read-open": 0.05,
    "write": 0.10,
    "fsync": 0.10,
    "rename": 0.10,
    "link": 0.10,
    "unlink": 0.05,
    "utime": 0.10,
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the schedule's log."""

    op: str
    name: str
    count: int
    kind: str


@dataclass
class ChaosSchedule:
    """Deterministic per-operation fault decisions for one chaos run.

    Parameters
    ----------
    seed:
        Replay key.  Same seed + same per-name operation sequence = same
        faults, always.
    rates:
        Probability of injecting a fault per operation kind (missing ops
        never fault).  Defaults to :data:`DEFAULT_RATES`.
    kinds:
        Fault kinds drawn from per op.  Defaults to :data:`DEFAULT_KINDS`.
    max_faults:
        Total injection budget; None = unlimited.  A finite budget makes
        "retry until it converges" terminate by construction.
    """

    seed: int
    rates: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))
    kinds: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_KINDS)
    )
    max_faults: int | None = None
    log: list[FaultEvent] = field(default_factory=list)
    _counts: dict[tuple[str, str], int] = field(default_factory=dict)
    _injected: int = 0

    @staticmethod
    def normalize(path: str | os.PathLike) -> str:
        """Collapse randomly named temp files to one stable key."""
        name = os.path.basename(os.fspath(path))
        if name.startswith("."):
            return ".tmp"
        return name

    def decide(self, op: str, path: str | os.PathLike) -> str | None:
        """The fault to inject for this occurrence, or None.

        Stateful only in the per-``(op, name)`` occurrence counter and the
        global budget — the draw itself is the pure hash of
        ``(seed, op, name, count)``.
        """
        rate = self.rates.get(op, 0.0)
        kinds = self.kinds.get(op, ())
        if rate <= 0.0 or not kinds:
            return None
        name = self.normalize(path)
        key = (op, name)
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        if self.max_faults is not None and self._injected >= self.max_faults:
            return None
        digest = hashlib.sha256(
            f"{self.seed}:{op}:{name}:{count}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        if draw >= rate:
            return None
        kind = kinds[int.from_bytes(digest[8:12], "big") % len(kinds)]
        self._injected += 1
        self.log.append(FaultEvent(op=op, name=name, count=count, kind=kind))
        return kind

    @property
    def injected(self) -> int:
        """How many faults this schedule has injected so far."""
        return self._injected
