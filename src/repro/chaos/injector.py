"""Monkeypatching fault injector over the repo's filesystem seams.

:class:`ChaosInjector` wraps the exact syscall surface the chunk store, the
verdict cache, the lease protocol and the serve registry reload go through —
``os.open/write/fsync/close/replace/rename/link/unlink/utime`` plus
``builtins.open``/``io.open`` (what ``Path.read_text``/``Path.open`` use) —
and consults a :class:`~repro.chaos.schedule.ChaosSchedule` before letting
each call through.  Only paths under the injector's ``roots`` are eligible;
everything else (test harness I/O, imports, pytest's own files) passes
straight to the real functions.

Injected failures raise :class:`ChaosFault`, an ``OSError`` with a real
errno (``EIO``/``ENOSPC``/``ESTALE``), so production code cannot tell it
from the weather it is built for — but tests can, and assert that *only*
injected faults occurred.

The injector is a context manager and intentionally refuses to nest: the
patched functions are process-global, and two active injectors would
double-count operations and unpatch each other's state.

:class:`ChaosClock` is the companion time seam — a controllable
``time``/``monotonic`` pair for driving lease TTL expiry through hundreds
of simulated seconds without sleeping.
"""

from __future__ import annotations

import builtins
import errno
import io
import os
import threading
from pathlib import Path
from typing import Iterable

from repro.chaos.schedule import ChaosSchedule

__all__ = ["ChaosFault", "ChaosClock", "ChaosInjector"]

_ERRNOS = {
    "eio": errno.EIO,
    "enospc": errno.ENOSPC,
    "estale": errno.ESTALE,
    "torn": errno.EIO,
    "applied-eio": errno.EIO,
}


class ChaosFault(OSError):
    """An injected filesystem fault (never raised by real filesystems).

    Subclassing ``OSError`` with a genuine errno means the code under test
    handles it exactly like a real EIO/ENOSPC/ESTALE; tests catch
    ``ChaosFault`` specifically to prove a failure was injected rather than
    environmental.
    """

    def __init__(self, kind: str, op: str, path: str):
        super().__init__(
            _ERRNOS.get(kind, errno.EIO), f"chaos[{kind}] injected on {op}", path
        )
        self.kind = kind
        self.op = op


class ChaosClock:
    """A controllable ``time``/``monotonic`` pair for lease chaos tests.

    ``advance`` moves both clocks; ``skew`` offsets only the wall clock
    (modelling a host whose wall time disagrees with the fleet's).  Pass
    ``clock.time``/``clock.monotonic`` into
    :class:`~repro.fleet.leases.LeaseManager` — hundreds of TTL expiries run
    in milliseconds of real time.
    """

    def __init__(self, start: float = 1_000_000.0, skew: float = 0.0):
        self._now = float(start)
        self.skew = float(skew)

    def time(self) -> float:
        return self._now + self.skew

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds


class ChaosInjector:
    """Context manager injecting scheduled faults under given root dirs."""

    _active_lock = threading.Lock()
    _active: "ChaosInjector | None" = None

    def __init__(self, schedule: ChaosSchedule, roots: Iterable[str | Path]):
        self.schedule = schedule
        self.roots = [os.path.abspath(os.fspath(root)) for root in roots]
        self._fd_paths: dict[int, str] = {}
        self._lock = threading.Lock()
        self._originals: dict[str, object] = {}

    # ------------------------------------------------------------- scoping
    def _in_scope(self, path) -> str | None:
        try:
            name = os.path.abspath(os.fspath(path))
        except TypeError:
            return None  # fd-relative or non-path argument
        for root in self.roots:
            if name == root or name.startswith(root + os.sep):
                return name
        return None

    # ------------------------------------------------------------ patching
    def __enter__(self) -> "ChaosInjector":
        with ChaosInjector._active_lock:
            if ChaosInjector._active is not None:
                raise RuntimeError("a ChaosInjector is already active")
            ChaosInjector._active = self
        self._originals = {
            "os.open": os.open,
            "os.write": os.write,
            "os.fsync": os.fsync,
            "os.close": os.close,
            "os.replace": os.replace,
            "os.rename": os.rename,
            "os.link": os.link,
            "os.unlink": os.unlink,
            "os.utime": os.utime,
            "io.open": io.open,
            "builtins.open": builtins.open,
        }
        os.open = self._os_open  # type: ignore[assignment]
        os.write = self._os_write  # type: ignore[assignment]
        os.fsync = self._os_fsync  # type: ignore[assignment]
        os.close = self._os_close  # type: ignore[assignment]
        os.replace = self._make_pathop("rename", "os.replace")
        os.rename = self._make_pathop("rename", "os.rename")
        os.link = self._os_link  # type: ignore[assignment]
        os.unlink = self._make_pathop("unlink", "os.unlink")
        os.utime = self._os_utime  # type: ignore[assignment]
        io.open = self._io_open  # type: ignore[assignment]
        builtins.open = self._io_open  # type: ignore[assignment]
        return self

    def __exit__(self, *exc_info) -> None:
        os.open = self._originals["os.open"]  # type: ignore[assignment]
        os.write = self._originals["os.write"]  # type: ignore[assignment]
        os.fsync = self._originals["os.fsync"]  # type: ignore[assignment]
        os.close = self._originals["os.close"]  # type: ignore[assignment]
        os.replace = self._originals["os.replace"]  # type: ignore[assignment]
        os.rename = self._originals["os.rename"]  # type: ignore[assignment]
        os.link = self._originals["os.link"]  # type: ignore[assignment]
        os.unlink = self._originals["os.unlink"]  # type: ignore[assignment]
        os.utime = self._originals["os.utime"]  # type: ignore[assignment]
        io.open = self._originals["io.open"]  # type: ignore[assignment]
        builtins.open = self._originals["builtins.open"]  # type: ignore[assignment]
        with ChaosInjector._active_lock:
            ChaosInjector._active = None

    # ------------------------------------------------------------ wrappers
    def _os_open(self, path, flags, *args, **kwargs):
        real = self._originals["os.open"]
        name = self._in_scope(path)
        if name is None:
            return real(path, flags, *args, **kwargs)
        writing = flags & (os.O_WRONLY | os.O_RDWR | os.O_CREAT | os.O_APPEND)
        op = "open" if writing else "read-open"
        kind = self.schedule.decide(op, name)
        if kind is not None:
            raise ChaosFault(kind, op, name)
        fd = real(path, flags, *args, **kwargs)
        with self._lock:
            self._fd_paths[fd] = name
        return fd

    def _os_write(self, fd, data):
        real = self._originals["os.write"]
        with self._lock:
            name = self._fd_paths.get(fd)
        if name is None:
            return real(fd, data)
        kind = self.schedule.decide("write", name)
        if kind is None:
            return real(fd, data)
        if kind == "torn":
            # Apply half the buffer, then fail: the on-disk file is torn
            # exactly as a crashed or ENOSPC-hit writer would leave it.
            half = max(1, len(data) // 2) if len(data) else 0
            if half:
                real(fd, bytes(data)[:half])
            raise ChaosFault(kind, "write", name)
        raise ChaosFault(kind, "write", name)

    def _os_fsync(self, fd):
        real = self._originals["os.fsync"]
        with self._lock:
            name = self._fd_paths.get(fd)
        if name is None:
            return real(fd)
        kind = self.schedule.decide("fsync", name)
        if kind is not None:
            raise ChaosFault(kind, "fsync", name)
        return real(fd)

    def _os_close(self, fd):
        # Never faults: close is the cleanup path; a close that raises after
        # a failed write would mask the original fault in ``finally`` blocks.
        with self._lock:
            self._fd_paths.pop(fd, None)
        return self._originals["os.close"](fd)

    def _make_pathop(self, op: str, original_key: str):
        def wrapper(src, dst=None, **kwargs):
            real = self._originals[original_key]
            # rename-like ops are judged on their *destination* (the name
            # being published); unlink on its sole argument.
            target = dst if dst is not None else src
            name = self._in_scope(target)
            if name is None:
                if dst is None:
                    return real(src, **kwargs)
                return real(src, dst, **kwargs)
            kind = self.schedule.decide(op, name)
            if kind == "lost":
                return None  # silently not applied
            if kind is not None and kind != "applied-eio":
                raise ChaosFault(kind, op, name)
            result = real(src, **kwargs) if dst is None else real(src, dst, **kwargs)
            if kind == "applied-eio":
                raise ChaosFault(kind, op, name)
            return result

        return wrapper

    def _os_link(self, src, dst, **kwargs):
        real = self._originals["os.link"]
        name = self._in_scope(dst)
        if name is None:
            return real(src, dst, **kwargs)
        kind = self.schedule.decide("link", name)
        if kind == "lost":
            return None
        if kind is not None and kind != "applied-eio":
            raise ChaosFault(kind, "link", name)
        result = real(src, dst, **kwargs)
        if kind == "applied-eio":
            raise ChaosFault(kind, "link", name)
        return result

    def _os_utime(self, path, *args, **kwargs):
        real = self._originals["os.utime"]
        name = self._in_scope(path)
        if name is None:
            return real(path, *args, **kwargs)
        kind = self.schedule.decide("utime", name)
        if kind == "lost":
            return None  # heartbeat swallowed — mtime silently not bumped
        if kind is not None:
            raise ChaosFault(kind, "utime", name)
        return real(path, *args, **kwargs)

    def _io_open(self, file, mode="r", *args, **kwargs):
        real = self._originals["io.open"]
        name = self._in_scope(file) if isinstance(file, (str, os.PathLike)) else None
        if name is None:
            return real(file, mode, *args, **kwargs)
        writing = any(flag in mode for flag in ("w", "a", "+", "x"))
        op = "open" if writing else "read-open"
        kind = self.schedule.decide(op, name)
        if kind is not None:
            raise ChaosFault(kind, op, name)
        return real(file, mode, *args, **kwargs)
