"""The paper's primary contribution: de Bruijn isomorphisms.

This package implements Section 3 ("Alternative definition of ``B(d, D)`` as
a digraph on alphabet") and the structural halves of Section 4:

* :mod:`repro.core.alphabet_digraph` — the digraph families ``B_sigma(d, D)``
  (Definition 3.1) and ``A(f, sigma, j)`` (Definition 3.7),
* :mod:`repro.core.isomorphisms` — the *constructive* isomorphisms of
  Propositions 3.2, 3.3 and 3.9 (explicit vertex bijections, not mere
  yes/no answers), plus the enumeration of the ``d!(D-1)!`` alternative
  de Bruijn definitions,
* :mod:`repro.core.components` — the decomposition of non-cyclic alphabet
  digraphs into conjunctions of de Bruijn digraphs and circuits
  (Remark 3.10, Example 3.3.2),
* :mod:`repro.core.checks` — the ``O(D)`` OTIS-layout isomorphism test of
  Corollary 4.5 and the ``O(D^2)`` lens minimisation of Corollary 4.6.
"""

from repro.core.alphabet_digraph import (
    AlphabetDigraphSpec,
    alphabet_digraph,
    b_sigma,
    debruijn_spec,
    imase_itoh_spec,
)
from repro.core.checks import (
    LensSplit,
    balanced_split_is_layout,
    enumerate_layout_splits,
    is_otis_layout_of_de_bruijn,
    minimal_lens_split,
    otis_alphabet_spec,
    otis_split_lens_count,
    prop_4_1_index_permutation,
)
from repro.core.components import component_structure, decompose_non_cyclic
from repro.core.isomorphisms import (
    count_alternative_definitions,
    debruijn_to_alphabet_isomorphism,
    debruijn_to_imase_itoh_isomorphism,
    g_permutation,
    prop_3_2_isomorphism,
    prop_3_9_isomorphism,
)

__all__ = [
    "AlphabetDigraphSpec",
    "alphabet_digraph",
    "b_sigma",
    "debruijn_spec",
    "imase_itoh_spec",
    "prop_3_2_isomorphism",
    "prop_3_9_isomorphism",
    "debruijn_to_imase_itoh_isomorphism",
    "debruijn_to_alphabet_isomorphism",
    "g_permutation",
    "count_alternative_definitions",
    "component_structure",
    "decompose_non_cyclic",
    "is_otis_layout_of_de_bruijn",
    "minimal_lens_split",
    "otis_alphabet_spec",
    "otis_split_lens_count",
    "prop_4_1_index_permutation",
    "LensSplit",
    "balanced_split_is_layout",
    "enumerate_layout_splits",
]
