"""Alphabet digraphs ``B_sigma(d, D)`` and ``A(f, sigma, j)``.

Section 3 of the paper generalises the de Bruijn adjacency in two steps:

1. **Permutation on the alphabet** (Definition 3.1).  For a permutation
   ``sigma`` of ``Z_d``, the digraph ``B_sigma(d, D)`` has

   ``Γ⁺(x_{D-1} … x_0) = { sigma(x_{D-2}) … sigma(x_0) λ  :  λ ∈ Z_d }``.

2. **Permutation on the indices** (Definition 3.7).  For a permutation ``f``
   of ``Z_D``, a permutation ``sigma`` of ``Z_d`` and a position
   ``j ∈ Z_D``, the digraph ``A(f, sigma, j)`` on vertex set ``Z_d^D`` has

   ``Γ⁺(x) = sigma(→f(x)) + Z_d · e_j``

   where ``→f`` is the linear map sending basis vector ``e_i`` to
   ``e_{f(i)}`` (the letter at position ``i`` moves to position ``f(i)``),
   ``sigma`` acts letter-wise, and the letter at position ``j`` is then
   replaced by an arbitrary letter.

Remark 3.8 identifies the classical de Bruijn digraph with
``A(rho, Id, 0)`` where ``rho : i ↦ i+1 (mod D)``, and ``B_sigma(d, D)`` with
``A(rho, sigma, 0)``.

All constructions here are fully vectorised: the ``(n, D)`` digit table of
every vertex is built once with :func:`repro.words.word_table`, the column
permutation and alphabet permutation are applied to the whole table, and the
successor matrix is obtained with one radix conversion per out-going slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import RegularDigraph
from repro.permutations import Permutation, identity, rotation
from repro.words import check_alphabet, word_table, words_to_ints

__all__ = [
    "AlphabetDigraphSpec",
    "b_sigma",
    "alphabet_digraph",
    "debruijn_spec",
    "imase_itoh_spec",
    "apply_position_permutation",
    "apply_alphabet_permutation",
]


@dataclass(frozen=True)
class AlphabetDigraphSpec:
    """A complete description of an alphabet digraph ``A(f, sigma, j)``.

    Attributes
    ----------
    d:
        Alphabet size (out-degree of the digraph).
    D:
        Word length (the digraph's *dimension*; equal to the diameter when the
        digraph is isomorphic to ``B(d, D)``).
    f:
        Permutation of the word indices ``Z_D``.
    sigma:
        Permutation of the alphabet ``Z_d``.
    j:
        The freed position in ``Z_D``.
    """

    d: int
    D: int
    f: Permutation
    sigma: Permutation
    j: int

    def __post_init__(self) -> None:
        check_alphabet(self.d, self.D)
        if self.f.n != self.D:
            raise ValueError(
                f"index permutation acts on Z_{self.f.n}, expected Z_{self.D}"
            )
        if self.sigma.n != self.d:
            raise ValueError(
                f"alphabet permutation acts on Z_{self.sigma.n}, expected Z_{self.d}"
            )
        if not 0 <= self.j < self.D:
            raise ValueError(f"position j={self.j} out of range for Z_{self.D}")

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``d**D``."""
        return self.d**self.D

    def is_debruijn_isomorphic(self) -> bool:
        """Proposition 3.9: true exactly when ``f`` is a cyclic permutation."""
        return self.f.is_cyclic()

    def build(self) -> RegularDigraph:
        """Construct the digraph described by this spec."""
        return alphabet_digraph(self.d, self.D, self.f, self.sigma, self.j)

    def describe(self) -> str:
        """Human-readable one-line description."""
        kind = "cyclic" if self.f.is_cyclic() else "non-cyclic"
        return (
            f"A(f, sigma, {self.j}) with d={self.d}, D={self.D}, "
            f"f={self.f.as_tuple()} ({kind}), sigma={self.sigma.as_tuple()}"
        )


def debruijn_spec(d: int, D: int) -> AlphabetDigraphSpec:
    """The spec of the classical de Bruijn digraph: ``A(rho, Id, 0)`` (Remark 3.8)."""
    return AlphabetDigraphSpec(d=d, D=D, f=rotation(D), sigma=identity(d), j=0)


def imase_itoh_spec(d: int, D: int) -> AlphabetDigraphSpec:
    """The spec whose integer-labelled digraph equals ``II(d, d**D)``.

    By the proof of Proposition 3.3, ``II(d, d**D)`` is ``B_C(d, D)`` where
    ``C`` is the complement permutation, i.e. ``A(rho, C, 0)``.
    """
    from repro.permutations import complement

    return AlphabetDigraphSpec(d=d, D=D, f=rotation(D), sigma=complement(d), j=0)


def apply_position_permutation(table: np.ndarray, f: Permutation) -> np.ndarray:
    """Apply the linear map ``→f`` to every row of an ``(n, D)`` digit table.

    Column ``c`` of the table holds position ``D-1-c`` (most significant digit
    first); the letter at position ``i`` of the input appears at position
    ``f(i)`` of the output.
    """
    D = table.shape[1]
    if f.n != D:
        raise ValueError("permutation size does not match word length")
    out = np.empty_like(table)
    for position in range(D):
        out[:, D - 1 - f(position)] = table[:, D - 1 - position]
    return out


def apply_alphabet_permutation(table: np.ndarray, sigma: Permutation) -> np.ndarray:
    """Apply ``sigma`` letter-wise to every entry of a digit table (Definition 3.6)."""
    return sigma.apply_array(table)


def b_sigma(d: int, D: int, sigma: Permutation) -> RegularDigraph:
    """The digraph ``B_sigma(d, D)`` of Definition 3.1.

    ``Γ⁺(x_{D-1} … x_0) = { sigma(x_{D-2}) … sigma(x_0) λ : λ ∈ Z_d }``.
    With ``sigma`` the identity this is exactly ``B(d, D)``; with ``sigma``
    the complement permutation it is (as an integer-labelled digraph) the
    Imase–Itoh digraph ``II(d, d**D)`` (Proposition 3.3).

    Vertices are labelled by their length-``D`` words.
    """
    check_alphabet(d, D)
    if sigma.n != d:
        raise ValueError("sigma must permute Z_d")
    return alphabet_digraph(d, D, rotation(D), sigma, 0, name=f"B_sigma({d},{D})")


def alphabet_digraph(
    d: int,
    D: int,
    f: Permutation,
    sigma: Permutation,
    j: int,
    name: str | None = None,
) -> RegularDigraph:
    """The alphabet digraph ``A(f, sigma, j)`` of Definition 3.7.

    Parameters
    ----------
    d, D:
        Alphabet size and word length; the digraph has ``d**D`` vertices and
        constant out-degree ``d``.
    f:
        Permutation of ``Z_D`` replacing the de Bruijn left shift.
    sigma:
        Permutation of ``Z_d`` applied letter-wise after ``→f``.
    j:
        The position whose letter is replaced by an arbitrary letter of
        ``Z_d``.
    name:
        Optional digraph name; a descriptive default is generated.

    Returns
    -------
    RegularDigraph
        Out-degree ``d`` digraph on ``d**D`` vertices, labelled by words.

    Notes
    -----
    By Proposition 3.9 the result is isomorphic to ``B(d, D)`` iff ``f`` is
    cyclic, and otherwise is disconnected (its components are conjunctions of
    de Bruijn digraphs with circuits, Remark 3.10).
    """
    spec = AlphabetDigraphSpec(d=d, D=D, f=f, sigma=sigma, j=int(j))
    n = spec.num_vertices

    table = word_table(d, D)  # (n, D), column 0 = position D-1
    shifted = apply_position_permutation(table, f)
    shifted = apply_alphabet_permutation(shifted, sigma)

    # The letter at position j is replaced by every value of Z_d in turn.
    column_j = D - 1 - int(j)
    successors = np.empty((n, d), dtype=np.int64)
    work = shifted.copy()
    for letter in range(d):
        work[:, column_j] = letter
        successors[:, letter] = words_to_ints(work, d)

    labels = [tuple(int(x) for x in row) for row in table]
    if name is None:
        name = f"A(f,sigma,{j})[d={d},D={D}]"
    return RegularDigraph(successors, name=name, labels=labels)
