"""Constructive de Bruijn isomorphisms (Propositions 3.2, 3.3 and 3.9).

Every function in this module returns an **explicit vertex bijection** (a
numpy array ``mapping`` with ``mapping[u]`` the image of vertex ``u``), never
just a yes/no answer, so that downstream code — the OTIS layout builder, the
router, the simulator — can relabel processors concretely.  The bijections
are validated in the test-suite with
:func:`repro.graphs.isomorphism.is_isomorphism`, which compares full arc
multisets.

Summary of the constructions
----------------------------

* **Proposition 3.2** — ``W : B_sigma(d, D) -> B(d, D)`` with

  ``W(x_{D-1} x_{D-2} … x_0) = sigma^0(x_{D-1}) sigma^1(x_{D-2}) … sigma^{D-1}(x_0)``,

  i.e. the letter at position ``i`` (counted from the right) is replaced by
  ``sigma^{D-1-i}`` of itself.

* **Proposition 3.3** — ``B(d, D) ≅ II(d, d**D)``: the Imase–Itoh digraph is
  exactly ``B_C(d, D)`` on integer labels (``C`` the complement permutation),
  so the isomorphism is ``W^{-1}`` specialised to ``sigma = C``.

* **Proposition 3.9** — for cyclic ``f``, ``A(f, sigma, j) ≅ B(d, D)``.
  The paper's proof goes through the permutation ``g`` of ``Z_D`` defined by
  ``g(i) = f^i(j)`` and shows that the linear map ``→g`` is an isomorphism
  from ``B_sigma(d, D)`` onto ``A(f, sigma, j)``.  Composing with
  Proposition 3.2 yields the full isomorphism from ``B(d, D)``:

  ``Ψ = →g ∘ W^{-1}  :  B(d, D) -> A(f, sigma, j)``.

* **Section 3.2 counting** — there are ``d! (D-1)!`` distinct
  ``(sigma, f)``-definitions of the de Bruijn digraph;
  :func:`enumerate_alternative_definitions` iterates over them.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.alphabet_digraph import (
    AlphabetDigraphSpec,
    apply_position_permutation,
)
from repro.permutations import (
    Permutation,
    all_cyclic_permutations,
    all_permutations,
    complement,
    count_debruijn_definitions,
)
from repro.words import check_alphabet, word_table, words_to_ints

__all__ = [
    "prop_3_2_isomorphism",
    "prop_3_2_inverse",
    "debruijn_to_imase_itoh_isomorphism",
    "g_permutation",
    "prop_3_9_isomorphism",
    "debruijn_to_alphabet_isomorphism",
    "compose_mappings",
    "invert_mapping",
    "count_alternative_definitions",
    "enumerate_alternative_definitions",
]


# --------------------------------------------------------------------------
# Proposition 3.2: permutation on the alphabet
# --------------------------------------------------------------------------
def prop_3_2_isomorphism(d: int, D: int, sigma: Permutation) -> np.ndarray:
    """The map ``W : B_sigma(d, D) -> B(d, D)`` of Proposition 3.2.

    Returns an array ``mapping`` of length ``d**D`` where ``mapping[u]`` is
    the integer label of ``W(word(u))``: the letter at position ``i`` of the
    word of ``u`` is replaced by ``sigma^{D-1-i}`` of itself.

    >>> from repro.permutations import complement
    >>> W = prop_3_2_isomorphism(2, 2, complement(2))
    >>> W.tolist()          # word x1 x0 -> x1, C(x0):  00->01, 01->00, ...
    [1, 0, 3, 2]
    """
    check_alphabet(d, D)
    if sigma.n != d:
        raise ValueError("sigma must permute Z_d")
    table = word_table(d, D)  # column c holds position D-1-c
    out = np.empty_like(table)
    for position in range(D):
        power = sigma ** (D - 1 - position)
        column = D - 1 - position
        out[:, column] = power.apply_array(table[:, column])
    return words_to_ints(out, d)


def prop_3_2_inverse(d: int, D: int, sigma: Permutation) -> np.ndarray:
    """The inverse map ``W^{-1} : B(d, D) -> B_sigma(d, D)``."""
    return invert_mapping(prop_3_2_isomorphism(d, D, sigma))


def debruijn_to_imase_itoh_isomorphism(d: int, D: int) -> np.ndarray:
    """An isomorphism from ``B(d, D)`` onto ``II(d, d**D)`` (Proposition 3.3).

    The Imase–Itoh digraph on integer labels is exactly ``B_C(d, D)`` (proof
    of Proposition 3.3), so the required bijection is ``W^{-1}`` with
    ``sigma = C`` (the complement permutation of ``Z_d``).
    """
    return prop_3_2_inverse(d, D, complement(d))


# --------------------------------------------------------------------------
# Proposition 3.9: permutation on the indices
# --------------------------------------------------------------------------
def g_permutation(f: Permutation, j: int) -> Permutation:
    """The permutation ``g`` of ``Z_D`` with ``g(i) = f^i(j)`` (Proposition 3.9).

    ``g`` is a well-defined *permutation* exactly when ``f`` is cyclic
    (its single orbit visits every index); in that case ``g^{-1} f g`` is the
    rotation ``i -> i+1`` and ``g^{-1}(j) = 0``.  Figure 4 of the paper
    illustrates ``g`` for Example 3.3.1.

    Raises
    ------
    ValueError
        If ``f`` is not cyclic (then ``i -> f^i(j)`` is not injective).
    """
    D = f.n
    if not 0 <= j < D:
        raise ValueError(f"position j={j} out of range for Z_{D}")
    images = []
    current = int(j)
    for _ in range(D):
        images.append(current)
        current = f(current)
    if len(set(images)) != D:
        raise ValueError(
            "f is not cyclic: g(i) = f^i(j) does not define a permutation "
            "(Proposition 3.9 does not apply)"
        )
    return Permutation(images)


def prop_3_9_isomorphism(spec: AlphabetDigraphSpec) -> np.ndarray:
    """The isomorphism ``→g : B_sigma(d, D) -> A(f, sigma, j)`` of Proposition 3.9.

    ``mapping[u]`` is the image in ``A(f, sigma, j)`` of vertex ``u`` of
    ``B_sigma(d, D)`` (both identified with integers through their words).

    Raises
    ------
    ValueError
        If ``spec.f`` is not cyclic — by Proposition 3.9 no isomorphism exists
        (the alphabet digraph is not even connected, Remark 3.10).
    """
    g = g_permutation(spec.f, spec.j)
    table = word_table(spec.d, spec.D)
    moved = apply_position_permutation(table, g)
    return words_to_ints(moved, spec.d)


def debruijn_to_alphabet_isomorphism(spec: AlphabetDigraphSpec) -> np.ndarray:
    """The full isomorphism ``Ψ = →g ∘ W^{-1} : B(d, D) -> A(f, sigma, j)``.

    Composes Proposition 3.2 (undo the alphabet permutation) with Proposition
    3.9 (conjugate the index permutation to the rotation).  The result maps
    the *standard* de Bruijn digraph ``B(d, D)`` onto the given alphabet
    digraph; it is the bijection the OTIS layout code uses to assign de
    Bruijn addresses to transceiver groups.
    """
    w_inverse = prop_3_2_inverse(spec.d, spec.D, spec.sigma)
    g_map = prop_3_9_isomorphism(spec)
    return compose_mappings(g_map, w_inverse)


# --------------------------------------------------------------------------
# Mapping utilities
# --------------------------------------------------------------------------
def compose_mappings(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Compose two vertex bijections: ``result[u] = outer[inner[u]]``."""
    outer = np.asarray(outer, dtype=np.int64)
    inner = np.asarray(inner, dtype=np.int64)
    if outer.shape != inner.shape:
        raise ValueError("mappings must have the same length")
    return outer[inner]


def invert_mapping(mapping: np.ndarray) -> np.ndarray:
    """Invert a vertex bijection given as an array."""
    mapping = np.asarray(mapping, dtype=np.int64)
    n = mapping.shape[0]
    inverse = np.empty(n, dtype=np.int64)
    inverse[mapping] = np.arange(n, dtype=np.int64)
    return inverse


# --------------------------------------------------------------------------
# Counting / enumerating the alternative de Bruijn definitions
# --------------------------------------------------------------------------
def count_alternative_definitions(d: int, D: int) -> int:
    """Number of ``(sigma, f)`` de Bruijn definitions: ``d! (D-1)!`` (Section 3.2)."""
    return count_debruijn_definitions(d, D)


def enumerate_alternative_definitions(
    d: int, D: int, j: int = 0
) -> Iterator[AlphabetDigraphSpec]:
    """Iterate over all ``d!(D-1)!`` specs ``A(f, sigma, j)`` isomorphic to ``B(d, D)``.

    Every yielded spec has a cyclic index permutation ``f`` (so by Proposition
    3.9 its digraph is isomorphic to the de Bruijn digraph) and a distinct
    ``(sigma, f)`` pair.  Only use for small ``d`` and ``D`` — the count grows
    factorially.
    """
    check_alphabet(d, D)
    if not 0 <= j < D:
        raise ValueError(f"position j={j} out of range for Z_{D}")
    for sigma in all_permutations(d):
        for f in all_cyclic_permutations(D):
            yield AlphabetDigraphSpec(d=d, D=D, f=f, sigma=sigma, j=j)
