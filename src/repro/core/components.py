"""Structure of *non-cyclic* alphabet digraphs (Remark 3.10).

Proposition 3.9 states that ``A(f, sigma, j)`` is isomorphic to ``B(d, D)``
exactly when ``f`` is cyclic, and that otherwise the digraph is **not
connected**.  Remark 3.10 sharpens this: every connected component of a
non-cyclic alphabet digraph is the conjunction of a de Bruijn digraph with a
circuit, ``B(d, r) ⊗ C_k``.  Example 3.3.2 (Figure 5) spells this out for
``d = 2``, ``D = 3`` and the non-cyclic permutation ``f(i) = 2 - i``: the
8-vertex digraph splits into one ``C_2 ⊗ B(2, 1)`` component (4 vertices,
drawn as the square in Figure 5) and two ``C_1 ⊗ B(2, 1)`` components.

This module provides

* :func:`component_structure` — the weakly connected components of an
  alphabet digraph together with summary statistics, and
* :func:`decompose_non_cyclic` — an explicit factorisation of every component
  as ``B(d, r) ⊗ C_k``, found constructively and certified with the generic
  isomorphism tester.

The factorisation search uses the orbit structure of ``f``: the orbit of the
freed position ``j`` has some length ``r`` and contributes the de Bruijn
factor ``B(d, r)``; the circuit length ``k`` divides the order of the pair
(``f`` restricted outside that orbit, ``sigma``), so only a small set of
candidate ``(r, k)`` pairs needs to be certified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet_digraph import AlphabetDigraphSpec
from repro.graphs.digraph import Digraph, RegularDigraph
from repro.graphs.generators import circuit, de_bruijn
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.operations import conjunction, induced_subgraph
from repro.graphs.traversal import weakly_connected_components

__all__ = [
    "ComponentReport",
    "ComponentFactorisation",
    "component_structure",
    "decompose_non_cyclic",
]


@dataclass(frozen=True)
class ComponentReport:
    """Summary of the weakly connected components of an alphabet digraph.

    Attributes
    ----------
    spec:
        The alphabet digraph specification that was analysed.
    num_components:
        Number of weakly connected components.
    component_sizes:
        Sorted list of component sizes (ascending).
    is_connected:
        True when there is a single component; by Proposition 3.9 this happens
        exactly when ``spec.f`` is cyclic.
    """

    spec: AlphabetDigraphSpec
    num_components: int
    component_sizes: tuple[int, ...]
    is_connected: bool

    def matches_prop_3_9(self) -> bool:
        """Check the connectivity half of Proposition 3.9 on this instance."""
        return self.is_connected == self.spec.f.is_cyclic()


@dataclass(frozen=True)
class ComponentFactorisation:
    """One component factored as ``B(d, r) ⊗ C_k`` (Remark 3.10).

    Attributes
    ----------
    vertices:
        The component's vertex set (de Bruijn-integer labels of the ambient
        alphabet digraph).
    debruijn_dimension:
        The ``r`` of the de Bruijn factor ``B(d, r)``.
    circuit_length:
        The ``k`` of the circuit factor ``C_k``.
    certified:
        True when the factorisation was certified by an explicit isomorphism
        between the induced component and ``B(d, r) ⊗ C_k``.
    """

    vertices: tuple[int, ...]
    debruijn_dimension: int
    circuit_length: int
    certified: bool

    @property
    def size(self) -> int:
        """Number of vertices of the component."""
        return len(self.vertices)


def component_structure(spec: AlphabetDigraphSpec) -> ComponentReport:
    """Compute the weakly connected component structure of ``A(f, sigma, j)``."""
    graph = spec.build()
    components = weakly_connected_components(graph)
    sizes = tuple(sorted(len(component) for component in components))
    return ComponentReport(
        spec=spec,
        num_components=len(components),
        component_sizes=sizes,
        is_connected=len(components) <= 1,
    )


def _candidate_factorisations(size: int, d: int, D: int) -> list[tuple[int, int]]:
    """Candidate ``(r, k)`` pairs with ``k * d**r == size``, ``1 <= r <= D``."""
    candidates = []
    power = 1
    for r in range(0, D + 1):
        if r > 0:
            power *= d
        if power > size:
            break
        if r == 0:
            continue
        if size % power == 0:
            candidates.append((r, size // power))
    # Prefer the largest de Bruijn factor first: for d >= 2 the factorisation
    # with maximal r is the canonical one (circuit as small as possible).
    candidates.sort(key=lambda pair: -pair[0])
    return candidates


def decompose_non_cyclic(
    spec: AlphabetDigraphSpec,
    certify: bool = True,
    max_component_size: int = 4096,
) -> list[ComponentFactorisation]:
    """Factor every component of ``A(f, sigma, j)`` as ``B(d, r) ⊗ C_k``.

    Parameters
    ----------
    spec:
        The alphabet digraph to decompose.  Cyclic ``f`` is allowed (the
        digraph is then a single component isomorphic to ``B(d, D) ⊗ C_1``).
    certify:
        When True (default), each candidate factorisation is certified with
        the generic isomorphism tester; when False the arithmetic candidate
        (matching sizes and loop counts) is reported with
        ``certified=False``.
    max_component_size:
        Components larger than this are reported without certification, to
        keep the exponential-worst-case isomorphism search bounded.

    Returns
    -------
    list[ComponentFactorisation]
        One entry per weakly connected component, in order of smallest vertex.
    """
    graph = spec.build()
    components = weakly_connected_components(graph)
    results: list[ComponentFactorisation] = []
    for component in components:
        induced = induced_subgraph(graph, component)
        factorisation = _factor_component(
            induced, spec.d, spec.D, certify and len(component) <= max_component_size
        )
        results.append(
            ComponentFactorisation(
                vertices=tuple(component),
                debruijn_dimension=factorisation[0],
                circuit_length=factorisation[1],
                certified=factorisation[2],
            )
        )
    return results


def _factor_component(
    component: Digraph, d: int, D: int, certify: bool
) -> tuple[int, int, bool]:
    """Find ``(r, k)`` with ``component ≅ B(d, r) ⊗ C_k``.

    Returns ``(r, k, certified)``.  When certification is disabled or fails
    for every candidate, the arithmetically consistent candidate with the
    largest ``r`` is returned uncertified.
    """
    size = component.num_vertices
    candidates = _candidate_factorisations(size, d, D)
    if not candidates:
        # Degenerate (d == 1): treat the whole component as a circuit.
        return (1, size, False)

    if certify:
        for r, k in candidates:
            reference = conjunction(de_bruijn(d, r), circuit(k))
            if _quick_reject(component, reference):
                continue
            if are_isomorphic(component, reference):
                return (r, k, True)
    r, k = candidates[0]
    return (r, k, False)


def _quick_reject(g1: Digraph, g2: Digraph | RegularDigraph) -> bool:
    """Cheap necessary-condition screen before the full isomorphism search."""
    if g1.num_vertices != g2.num_vertices or g1.num_arcs != g2.num_arcs:
        return True
    if g1.num_loops() != g2.num_loops():
        return True
    return False
