"""Fast structural checks for OTIS layouts of the de Bruijn digraph.

Section 4.4 of the paper turns the isomorphism theory into two small
algorithms:

* **Corollary 4.5** — deciding whether ``B(d, D)`` and ``H(d^{p'}, d^{q'}, d)``
  are isomorphic takes ``O(D)`` time: build the index permutation ``f`` of
  Proposition 4.1 and test whether it is cyclic.  No graph is ever
  constructed; compare with the generic isomorphism search over ``d**D``
  vertices benchmarked in ``benchmarks/test_check_complexity.py``.

* **Corollary 4.6** — finding the ``(p', q')`` split that minimises the
  number of lenses ``d^{p'} + d^{q'}`` takes ``O(D^2)`` time: try the ``D``
  possible splits, each tested in ``O(D)``.

The paper's structural results are also encoded directly:

* **Proposition 4.1** — ``H(d^{p'}, d^{q'}, d) ≅ A(f, C, p'-1)`` for the
  explicit ``f`` returned by :func:`prop_4_1_index_permutation`.
* **Proposition 4.3** — for odd ``D > 1`` the balanced split ``p' = q'``
  never yields a de Bruijn layout.
* **Corollary 4.4** — for even ``D`` the split ``p' = D/2``, ``q' = D/2 + 1``
  always does, giving ``p + q = Θ(√n)`` lenses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet_digraph import AlphabetDigraphSpec
from repro.permutations import Permutation, complement
from repro.words import check_alphabet

__all__ = [
    "prop_4_1_index_permutation",
    "otis_alphabet_spec",
    "is_otis_layout_of_de_bruijn",
    "otis_split_lens_count",
    "LensSplit",
    "enumerate_layout_splits",
    "minimal_lens_split",
    "balanced_split_is_layout",
]


def prop_4_1_index_permutation(p_prime: int, q_prime: int) -> Permutation:
    """The index permutation ``f`` of Proposition 4.1.

    For ``D = p' + q' - 1``, the OTIS digraph ``H(d^{p'}, d^{q'}, d)`` is
    isomorphic to the alphabet digraph ``A(f, C, p'-1)`` with

    ``f(i) = i + p'``            if ``i < q' - 1``,
    ``f(i) = p' - 1``            if ``i = q' - 1``,
    ``f(i) = i + p' - 1 (mod D)`` otherwise.

    >>> prop_4_1_index_permutation(2, 3).as_tuple()   # D = 4
    (2, 3, 1, 0)
    """
    if p_prime < 1 or q_prime < 1:
        raise ValueError("p' and q' must be at least 1")
    D = p_prime + q_prime - 1
    mapping = []
    for i in range(D):
        if i < q_prime - 1:
            mapping.append(i + p_prime)
        elif i == q_prime - 1:
            mapping.append(p_prime - 1)
        else:
            mapping.append((i + p_prime - 1) % D)
    return Permutation(mapping)


def otis_alphabet_spec(d: int, p_prime: int, q_prime: int) -> AlphabetDigraphSpec:
    """The alphabet digraph spec ``A(f, C, p'-1)`` matching ``H(d^{p'}, d^{q'}, d)``.

    Proposition 4.1 shows the two digraphs are isomorphic (in fact, with the
    natural labelling used in this library, they coincide as labelled
    digraphs — the tests verify this).
    """
    check_alphabet(d)
    f = prop_4_1_index_permutation(p_prime, q_prime)
    D = p_prime + q_prime - 1
    return AlphabetDigraphSpec(
        d=d, D=D, f=f, sigma=complement(d), j=p_prime - 1
    )


def is_otis_layout_of_de_bruijn(d: int, p_prime: int, q_prime: int) -> bool:
    """Corollary 4.2 / 4.5: is ``H(d^{p'}, d^{q'}, d)`` isomorphic to ``B(d, D)``?

    Runs in ``O(D)``: build ``f`` and follow the orbit of one element.  The
    value of ``d`` does not influence the answer (only ``p'`` and ``q'`` do),
    but it is kept in the signature for interface symmetry with the layout
    constructors.
    """
    check_alphabet(d)
    return prop_4_1_index_permutation(p_prime, q_prime).is_cyclic()


def otis_split_lens_count(d: int, p_prime: int, q_prime: int) -> int:
    """Number of lenses ``p + q = d^{p'} + d^{q'}`` of the ``OTIS(d^{p'}, d^{q'})`` system."""
    check_alphabet(d)
    if p_prime < 1 or q_prime < 1:
        raise ValueError("p' and q' must be at least 1")
    return d**p_prime + d**q_prime


@dataclass(frozen=True)
class LensSplit:
    """One candidate OTIS split for laying out ``B(d, D)``.

    Attributes
    ----------
    d, D:
        Degree and diameter of the target de Bruijn digraph.
    p_prime, q_prime:
        Exponents of the split; the OTIS system is
        ``OTIS(d^{p'}, d^{q'})`` and ``p' + q' - 1 = D``.
    lenses:
        ``d^{p'} + d^{q'}``, the hardware cost the paper minimises.
    is_layout:
        True when the split actually yields a digraph isomorphic to
        ``B(d, D)`` (Corollary 4.2).
    """

    d: int
    D: int
    p_prime: int
    q_prime: int
    lenses: int
    is_layout: bool

    @property
    def p(self) -> int:
        """The OTIS parameter ``p = d^{p'}`` (number of transmitter groups)."""
        return self.d**self.p_prime

    @property
    def q(self) -> int:
        """The OTIS parameter ``q = d^{q'}`` (transmitters per group)."""
        return self.d**self.q_prime


def enumerate_layout_splits(d: int, D: int) -> list[LensSplit]:
    """All splits ``p' + q' - 1 = D`` with ``p', q' >= 1``, each tested in O(D).

    This is the inner loop of Corollary 4.6; the full list is returned so the
    benchmarks can show the lens-count landscape (Table of Section 4.3 /
    EXPERIMENTS.md).
    """
    check_alphabet(d, D)
    splits = []
    for p_prime in range(1, D + 1):
        q_prime = D + 1 - p_prime
        splits.append(
            LensSplit(
                d=d,
                D=D,
                p_prime=p_prime,
                q_prime=q_prime,
                lenses=otis_split_lens_count(d, p_prime, q_prime),
                is_layout=is_otis_layout_of_de_bruijn(d, p_prime, q_prime),
            )
        )
    return splits


def minimal_lens_split(d: int, D: int) -> LensSplit:
    """Corollary 4.6: the valid split minimising ``d^{p'} + d^{q'}``, in ``O(D^2)``.

    For even ``D`` the answer is always ``p' = D/2``, ``q' = D/2 + 1``
    (Corollary 4.4), giving ``Θ(√n)`` lenses.  For odd ``D > 1`` the balanced
    split is impossible (Proposition 4.3) and the best valid split is
    returned; for some odd ``D`` (e.g. ``D = 13``) even the near-balanced
    split fails and a more skewed one wins.

    Raises
    ------
    ValueError
        If no split yields a de Bruijn layout (never happens for ``D >= 1``
        since ``p' = D``, ``q' = 1`` — the Imase–Itoh layout — always works).
    """
    candidates = [split for split in enumerate_layout_splits(d, D) if split.is_layout]
    if not candidates:
        raise ValueError(f"no OTIS layout of B({d},{D}) with power-of-d splits")
    return min(candidates, key=lambda split: (split.lenses, abs(split.p_prime - split.q_prime)))


def balanced_split_is_layout(d: int, D: int) -> bool:
    """Proposition 4.3 / Corollary 4.4 combined: does the most balanced split work?

    * Even ``D``: checks ``p' = D/2``, ``q' = D/2 + 1`` — always True
      (Corollary 4.4).
    * Odd ``D``: checks the exactly balanced ``p' = q' = (D+1)/2`` — True only
      for ``D = 1`` (Proposition 4.3).
    """
    check_alphabet(d, D)
    if D % 2 == 0:
        return is_otis_layout_of_de_bruijn(d, D // 2, D // 2 + 1)
    half = (D + 1) // 2
    return is_otis_layout_of_de_bruijn(d, half, half)
