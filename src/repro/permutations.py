"""Permutation algebra for alphabet digraphs.

The isomorphism results of the paper are parameterised by two permutations:

* ``sigma`` — a permutation of the alphabet ``Z_d`` (Proposition 3.2), and
* ``f`` — a permutation of the word indices ``Z_D`` (Proposition 3.9), which
  must be *cyclic* (a single ``D``-cycle) for the alphabet digraph
  ``A(f, sigma, j)`` to be isomorphic to the de Bruijn digraph ``B(d, D)``.

This module provides a small, self-contained :class:`Permutation` class with
the operations the paper relies on: composition, inversion, powers ``f^i``
(Definition "f^{i+1} = f o f^i"), orbit computation, cycle structure,
cyclicity tests, the complement permutation ``C(u) = n - u - 1``
(Definition 2.1), the rotation ``rho: i -> i + 1 mod D`` (Remark 3.8), and the
induced linear map ``->f`` on digit vectors (Definition 3.5).

Permutations are stored as numpy ``int64`` arrays mapping ``i -> perm[i]`` and
are hashable / comparable, so they can be used as dictionary keys when
enumerating the ``d! (D-1)!`` alternative de Bruijn definitions.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Permutation",
    "identity",
    "complement",
    "rotation",
    "transposition",
    "cycle",
    "random_permutation",
    "random_cyclic_permutation",
    "all_permutations",
    "all_cyclic_permutations",
    "count_debruijn_definitions",
]


class Permutation:
    """A permutation of ``Z_n`` stored in one-line notation.

    ``Permutation(mapping)`` takes any sequence ``mapping`` of length ``n``
    containing each of ``0, ..., n-1`` exactly once; ``mapping[i]`` is the
    image of ``i``.

    The class supports:

    * ``p(i)`` — apply to a single element,
    * ``p * q`` — composition ``(p * q)(i) == p(q(i))``,
    * ``p ** k`` — integer powers (including negative powers),
    * ``p.inverse()``, ``p.orbit(i)``, ``p.cycles()``, ``p.is_cyclic()``,
    * ``p.apply_word(word)`` — apply letter-wise to a word (Definition 3.6),
    * ``p.permute_positions(word)`` — the induced linear map ``->p`` acting on
      digit vectors (Definition 3.5): position ``i`` of the input is sent to
      position ``p(i)`` of the output.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Sequence[int] | np.ndarray):
        arr = np.asarray(list(mapping), dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("a permutation must be a 1-D sequence")
        n = arr.shape[0]
        if n == 0:
            raise ValueError("a permutation must act on at least one element")
        if sorted(arr.tolist()) != list(range(n)):
            raise ValueError(
                f"{arr.tolist()!r} is not a permutation of Z_{n}: "
                "it must contain each of 0..n-1 exactly once"
            )
        arr.setflags(write=False)
        self._map = arr

    # ------------------------------------------------------------------ basic
    @property
    def n(self) -> int:
        """Size of the ground set ``Z_n``."""
        return int(self._map.shape[0])

    @property
    def mapping(self) -> np.ndarray:
        """Read-only one-line notation array (``mapping[i]`` is the image of ``i``)."""
        return self._map

    def __call__(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise ValueError(f"element {i} out of range for Z_{self.n}")
        return int(self._map[i])

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Apply the permutation element-wise to an integer array."""
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.n):
            raise ValueError(f"values out of range for Z_{self.n}")
        return self._map[values]

    # ------------------------------------------------------------ composition
    def __mul__(self, other: "Permutation") -> "Permutation":
        """Composition: ``(p * q)(i) == p(q(i))`` (apply ``q`` first)."""
        if not isinstance(other, Permutation):
            return NotImplemented
        if other.n != self.n:
            raise ValueError("cannot compose permutations of different sizes")
        return Permutation(self._map[other._map])

    def inverse(self) -> "Permutation":
        """The inverse permutation ``p^{-1}``."""
        inv = np.empty_like(self._map)
        inv[self._map] = np.arange(self.n, dtype=np.int64)
        return Permutation(inv)

    def __pow__(self, k: int) -> "Permutation":
        """Integer power ``p**k``; ``p**0`` is the identity, negative allowed."""
        if not isinstance(k, (int, np.integer)):
            return NotImplemented
        if k < 0:
            return self.inverse() ** (-k)
        result = identity(self.n)
        base = self
        k = int(k)
        while k:
            if k & 1:
                result = base * result
            base = base * base
            k >>= 1
        return result

    # ----------------------------------------------------------- cycle theory
    def orbit(self, start: int) -> list[int]:
        """Orbit of ``start`` under repeated application: ``[start, p(start), ...]``."""
        if not 0 <= start < self.n:
            raise ValueError(f"element {start} out of range for Z_{self.n}")
        orbit = [start]
        current = self(start)
        while current != start:
            orbit.append(current)
            current = self(current)
        return orbit

    def cycles(self) -> list[list[int]]:
        """Cycle decomposition, each cycle starting at its smallest element."""
        seen = [False] * self.n
        cycles = []
        for i in range(self.n):
            if seen[i]:
                continue
            cyc = self.orbit(i)
            for element in cyc:
                seen[element] = True
            cycles.append(cyc)
        return cycles

    def cycle_type(self) -> tuple[int, ...]:
        """Sorted tuple of cycle lengths (a partition of ``n``)."""
        return tuple(sorted(len(c) for c in self.cycles()))

    def is_identity(self) -> bool:
        """True when ``p(i) == i`` for all ``i``."""
        return bool(np.array_equal(self._map, np.arange(self.n)))

    def is_cyclic(self) -> bool:
        """True when the permutation is a single ``n``-cycle.

        This is the condition of Proposition 3.9: ``A(f, sigma, j)`` is
        isomorphic to ``B(d, D)`` exactly when the index permutation ``f`` is
        cyclic.  The check runs in ``O(n)`` by following the orbit of ``0``.
        """
        return len(self.orbit(0)) == self.n

    def order(self) -> int:
        """Multiplicative order: least ``k >= 1`` with ``p**k == identity``."""
        return math.lcm(*(len(c) for c in self.cycles()))

    def fixed_points(self) -> list[int]:
        """Elements ``i`` with ``p(i) == i``."""
        return [int(i) for i in np.nonzero(self._map == np.arange(self.n))[0]]

    def sign(self) -> int:
        """Signature ``+1``/``-1`` of the permutation."""
        transpositions = sum(len(c) - 1 for c in self.cycles())
        return -1 if transpositions % 2 else 1

    # ---------------------------------------------------------- word actions
    def apply_word(self, word: Sequence[int]) -> tuple[int, ...]:
        """Letter-wise action on a word over ``Z_n`` (Definition 3.6).

        ``sigma(x_{D-1} ... x_0) = sigma(x_{D-1}) ... sigma(x_0)``.
        """
        return tuple(self(int(letter)) for letter in word)

    def permute_positions(self, word: Sequence[int]) -> tuple[int, ...]:
        """The induced linear map ``->p`` on digit vectors (Definition 3.5).

        ``->p`` sends the basis vector ``e_i`` to ``e_{p(i)}``: the letter at
        position ``i`` of the input appears at position ``p(i)`` of the
        output.  Positions are counted from the right (position 0 is the
        rightmost letter), consistent with :mod:`repro.words`.

        >>> rho = rotation(3)            # i -> i + 1 mod 3
        >>> rho.permute_positions((1, 2, 3))   # x_2 x_1 x_0 = 1 2 3
        (2, 3, 1)
        """
        D = len(word)
        if D != self.n:
            raise ValueError(
                f"word length {D} does not match permutation size {self.n}"
            )
        out = [0] * D
        for position in range(D):
            letter = int(word[D - 1 - position])
            target = self(position)
            out[D - 1 - target] = letter
        return tuple(out)

    def position_matrix(self) -> np.ndarray:
        """The ``D x D`` 0/1 permutation matrix of ``->p`` acting on ``e_i``."""
        mat = np.zeros((self.n, self.n), dtype=np.int64)
        for i in range(self.n):
            mat[self(i), i] = 1
        return mat

    # --------------------------------------------------------------- dunders
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self._map, other._map))

    def __hash__(self) -> int:
        return hash((self.n, self._map.tobytes()))

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return iter(int(x) for x in self._map)

    def __repr__(self) -> str:
        return f"Permutation({self._map.tolist()!r})"

    def as_tuple(self) -> tuple[int, ...]:
        """One-line notation as a tuple (useful as a dict key)."""
        return tuple(int(x) for x in self._map)


# ------------------------------------------------------------- constructors
def identity(n: int) -> Permutation:
    """The identity permutation of ``Z_n``."""
    return Permutation(np.arange(n, dtype=np.int64))


def complement(n: int) -> Permutation:
    """The complement permutation ``C(u) = n - u - 1`` (Definition 2.1).

    The paper writes ``C(u)`` as ``ū``; it is the permutation that turns the
    de Bruijn congruence ``u -> d u + λ`` into the Imase–Itoh congruence
    ``u -> -d u - λ`` (proof of Proposition 3.3).
    """
    return Permutation(np.arange(n - 1, -1, -1, dtype=np.int64))


def rotation(n: int, shift: int = 1) -> Permutation:
    """The rotation ``i -> i + shift (mod n)``.

    With ``shift = 1`` this is the permutation ``rho`` of Remark 3.8, for
    which ``B(d, D) = A(rho, Id, 0)``.
    """
    return Permutation((np.arange(n, dtype=np.int64) + shift) % n)


def transposition(n: int, i: int, j: int) -> Permutation:
    """The transposition of ``i`` and ``j`` in ``Z_n``."""
    mapping = np.arange(n, dtype=np.int64)
    mapping[i], mapping[j] = mapping[j], mapping[i]
    return Permutation(mapping)


def cycle(n: int, elements: Sequence[int]) -> Permutation:
    """The permutation of ``Z_n`` acting as the given cycle, fixing the rest.

    ``cycle(5, [0, 2, 3])`` maps ``0 -> 2 -> 3 -> 0`` and fixes 1 and 4.
    """
    mapping = np.arange(n, dtype=np.int64)
    elements = [int(e) for e in elements]
    if len(set(elements)) != len(elements):
        raise ValueError("cycle elements must be distinct")
    for index, element in enumerate(elements):
        mapping[element] = elements[(index + 1) % len(elements)]
    return Permutation(mapping)


def from_cycles(n: int, cycles: Iterable[Sequence[int]]) -> Permutation:
    """Build a permutation of ``Z_n`` from disjoint cycles."""
    mapping = np.arange(n, dtype=np.int64)
    seen: set[int] = set()
    for cyc in cycles:
        cyc = [int(e) for e in cyc]
        if seen.intersection(cyc):
            raise ValueError("cycles must be disjoint")
        seen.update(cyc)
        for index, element in enumerate(cyc):
            mapping[element] = cyc[(index + 1) % len(cyc)]
    return Permutation(mapping)


def random_permutation(n: int, rng: np.random.Generator | None = None) -> Permutation:
    """A uniformly random permutation of ``Z_n``."""
    rng = np.random.default_rng() if rng is None else rng
    return Permutation(rng.permutation(n))


def random_cyclic_permutation(
    n: int, rng: np.random.Generator | None = None
) -> Permutation:
    """A uniformly random *cyclic* permutation (single ``n``-cycle) of ``Z_n``.

    There are ``(n-1)!`` such permutations; by Proposition 3.9 each one gives
    an alternative definition of the de Bruijn digraph.
    """
    rng = np.random.default_rng() if rng is None else rng
    order = rng.permutation(n)
    mapping = np.empty(n, dtype=np.int64)
    for index in range(n):
        mapping[order[index]] = order[(index + 1) % n]
    return Permutation(mapping)


def all_permutations(n: int) -> Iterator[Permutation]:
    """Iterate over all ``n!`` permutations of ``Z_n`` (use for small ``n``)."""
    for mapping in itertools.permutations(range(n)):
        yield Permutation(mapping)


def all_cyclic_permutations(n: int) -> Iterator[Permutation]:
    """Iterate over all ``(n-1)!`` cyclic permutations of ``Z_n``.

    Each cyclic permutation is generated exactly once by fixing the cycle to
    start at element 0.
    """
    for rest in itertools.permutations(range(1, n)):
        yield cycle(n, (0, *rest))


def count_debruijn_definitions(d: int, D: int) -> int:
    """Number of alternative de Bruijn definitions ``d! (D-1)!`` (Section 3.2).

    Proposition 3.2 contributes ``d!`` alphabet permutations and Proposition
    3.9 contributes ``(D-1)!`` cyclic index permutations.
    """
    if d < 1 or D < 1:
        raise ValueError("d and D must be positive")
    return math.factorial(d) * math.factorial(D - 1)
