"""Guard the ``BENCH_*.json`` performance trajectory against regressions.

The BENCH files at the repository root are merge-don't-clobber JSON maps: a
benchmark run *updates* entries, it never rewrites history.  That makes them
a cheap regression tripwire: compare the freshly written file against the
committed version and fail when any wall-time key an earlier PR recorded got
slower by more than :data:`REGRESSION_FACTOR`.

Wall-time keys are, by convention, the numeric leaves whose name ends in
``_s`` (``wall_time_s``, ``batched_s``, ``cold_s``, …).  Throughput keys
end in ``_qps`` (or are literally ``qps``) and are checked in the opposite
direction: they fail when the fresh value dropped below ``committed /
REGRESSION_FACTOR``.  Keys present only in one side are ignored — new
benchmarks appear and old ones are renamed; the check is about *existing*
keys getting slower, nothing else.  Speedups and non-timing metrics never
fail.

Usage:

* ``python -m repro.analysis.bench_check BENCH_sim.json BENCH_table1.json``
  — compares each file's working-tree content against ``git show HEAD:...``
  (exit 1 on regression, 0 otherwise, including when git has no committed
  version to compare against);
* ``pytest benchmarks/test_bench_gate.py --run-bench-check`` — the same
  comparison as an opt-in pytest marker, meant to run right after a
  benchmark session rewrote the BENCH files.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

__all__ = [
    "REGRESSION_FACTOR",
    "iter_wall_time_keys",
    "iter_throughput_keys",
    "compare_bench",
    "committed_bench",
    "main",
]

#: A wall-time key fails when ``fresh > REGRESSION_FACTOR * committed``.
REGRESSION_FACTOR = 2.0

#: Timings below this (seconds) are never flagged: they sit inside scheduler
#: noise, and a 2x blip on a 5 ms benchmark is not a regression signal.
MIN_SIGNIFICANT_SECONDS = 0.05

#: Throughput keys below this (queries/sec) are never flagged, for the same
#: noise-floor reason as :data:`MIN_SIGNIFICANT_SECONDS`.
MIN_SIGNIFICANT_QPS = 100.0


def iter_wall_time_keys(entry, prefix: tuple[str, ...] = ()):
    """Yield ``(key_path, seconds)`` for every numeric ``*_s`` leaf."""
    if isinstance(entry, dict):
        for key, value in entry.items():
            yield from iter_wall_time_keys(value, prefix + (str(key),))
    elif isinstance(entry, list):
        for index, value in enumerate(entry):
            yield from iter_wall_time_keys(value, prefix + (str(index),))
    elif isinstance(entry, (int, float)) and not isinstance(entry, bool):
        if prefix and prefix[-1].endswith("_s"):
            yield prefix, float(entry)


def iter_throughput_keys(entry, prefix: tuple[str, ...] = ()):
    """Yield ``(key_path, qps)`` for every numeric ``qps``/``*_qps`` leaf."""
    if isinstance(entry, dict):
        for key, value in entry.items():
            yield from iter_throughput_keys(value, prefix + (str(key),))
    elif isinstance(entry, list):
        for index, value in enumerate(entry):
            yield from iter_throughput_keys(value, prefix + (str(index),))
    elif isinstance(entry, (int, float)) and not isinstance(entry, bool):
        if prefix and (prefix[-1] == "qps" or prefix[-1].endswith("_qps")):
            yield prefix, float(entry)


def compare_bench(
    committed: dict, fresh: dict, factor: float = REGRESSION_FACTOR
) -> list[str]:
    """Regression messages for every shared wall-time key that got slower.

    Returns an empty list when nothing regressed.  Keys absent from either
    side are skipped; committed timings below
    :data:`MIN_SIGNIFICANT_SECONDS` (and throughputs below
    :data:`MIN_SIGNIFICANT_QPS`) are skipped too (noise floor).
    Throughput keys regress downward: a fresh value below ``committed /
    factor`` fails.
    """
    fresh_times = dict(iter_wall_time_keys(fresh))
    messages = []
    for path, old in iter_wall_time_keys(committed):
        if old < MIN_SIGNIFICANT_SECONDS:
            continue
        new = fresh_times.get(path)
        if new is None:
            continue
        if new > factor * old:
            joined = ".".join(path)
            messages.append(
                f"{joined}: {new:.4f}s vs committed {old:.4f}s "
                f"({new / old:.2f}x, limit {factor:.1f}x)"
            )
    fresh_rates = dict(iter_throughput_keys(fresh))
    for path, old in iter_throughput_keys(committed):
        if old < MIN_SIGNIFICANT_QPS:
            continue
        new = fresh_rates.get(path)
        if new is None:
            continue
        if new * factor < old:
            joined = ".".join(path)
            ratio = old / new if new > 0 else float("inf")
            messages.append(
                f"{joined}: {new:.1f} q/s vs committed {old:.1f} q/s "
                f"({ratio:.2f}x slower, limit {factor:.1f}x)"
            )
    return sorted(messages)


def committed_bench(path: str | Path, rev: str = "HEAD") -> dict | None:
    """The committed version of a BENCH file, or None when unavailable.

    Uses ``git show <rev>:<relative path>``; returns None outside a git
    checkout, for untracked files, or on malformed JSON — all of which mean
    "nothing to compare against", not "regression".
    """
    path = Path(path).resolve()
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=path.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        relative = path.relative_to(root)
        shown = subprocess.run(
            ["git", "show", f"{rev}:{relative.as_posix()}"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(shown)
    except (subprocess.CalledProcessError, OSError, ValueError):
        return None


def check_file(path: str | Path, factor: float = REGRESSION_FACTOR) -> list[str]:
    """Compare one BENCH file on disk against its committed version."""
    path = Path(path)
    committed = committed_bench(path)
    if committed is None or not path.exists():
        return []
    try:
        fresh = json.loads(path.read_text())
    except ValueError:
        return [f"{path.name}: working-tree file is not valid JSON"]
    return [f"{path.name}: {m}" for m in compare_bench(committed, fresh, factor)]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 1 when any file shows a regression."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        paths = [
            str(p) for p in sorted(Path.cwd().glob("BENCH_*.json"))
        ]
    if not paths:
        print("no BENCH_*.json files to check")
        return 0
    regressions = []
    for path in paths:
        regressions.extend(check_file(path))
    if regressions:
        print(f"{len(regressions)} wall-time regression(s) > {REGRESSION_FACTOR}x:")
        for message in regressions:
            print(f"  {message}")
        return 1
    print(f"bench-check: no wall-time regression > {REGRESSION_FACTOR}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
