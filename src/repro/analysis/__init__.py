"""Analysis and reporting helpers: lens scaling, table formatting, paper comparison."""

from repro.analysis.lens_count import (
    LensScalingRow,
    lens_scaling_study,
    lens_scaling_table,
)
from repro.analysis.tables import format_table, merge_bench_json, paper_vs_measured

__all__ = [
    "LensScalingRow",
    "lens_scaling_study",
    "lens_scaling_table",
    "format_table",
    "merge_bench_json",
    "paper_vs_measured",
]
