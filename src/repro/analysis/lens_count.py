"""Lens-count scaling of de Bruijn OTIS layouts (Corollary 4.4).

The paper's headline application: the previously known layout of ``B(d, D)``
(through the Imase–Itoh digraph, ref. [14]) uses an ``OTIS(d, n)`` system and
therefore ``d + n = O(n)`` lenses, while the split of Corollary 4.4 uses
``d^{D/2} + d^{D/2+1} = Θ(√n)`` lenses.  This module produces the scaling
table behind benchmark C44: for a sweep of diameters it reports both lens
counts, the ratio, and the constant ``(p+q)/√n`` which equals exactly
``1 + d`` for the balanced even-``D`` split (``p + q = (1+d)·d^{D/2}`` and
``√n = d^{D/2}``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.checks import minimal_lens_split, otis_split_lens_count

__all__ = ["LensScalingRow", "lens_scaling_study", "lens_scaling_table"]


@dataclass(frozen=True)
class LensScalingRow:
    """One diameter's worth of the lens-scaling comparison.

    Attributes
    ----------
    d, D:
        Degree and diameter of the de Bruijn digraph.
    n:
        Number of processors ``d**D``.
    lenses_imase_itoh:
        Lenses of the known ``OTIS(d, n)`` layout: ``d + n``.
    lenses_optimal:
        Lenses of the paper's best split (Corollary 4.6).
    p_prime, q_prime:
        The optimal split exponents.
    ratio:
        ``lenses_imase_itoh / lenses_optimal`` — the hardware saving.
    normalised:
        ``lenses_optimal / sqrt(n)`` — bounded for even ``D`` (Corollary 4.4).
    """

    d: int
    D: int
    n: int
    lenses_imase_itoh: int
    lenses_optimal: int
    p_prime: int
    q_prime: int
    ratio: float
    normalised: float

    @property
    def theoretical_constant(self) -> float:
        """The constant ``1 + d`` achieved by the balanced even-``D`` split."""
        return 1.0 + self.d


def lens_scaling_study(d: int, diameters: list[int]) -> list[LensScalingRow]:
    """Compare O(n)-lens and Θ(√n)-lens de Bruijn layouts for several diameters."""
    rows = []
    for D in diameters:
        n = d**D
        split = minimal_lens_split(d, D)
        optimal = otis_split_lens_count(d, split.p_prime, split.q_prime)
        baseline = d + n  # OTIS(d, n) through the Imase-Itoh layout
        rows.append(
            LensScalingRow(
                d=d,
                D=D,
                n=n,
                lenses_imase_itoh=baseline,
                lenses_optimal=optimal,
                p_prime=split.p_prime,
                q_prime=split.q_prime,
                ratio=baseline / optimal,
                normalised=optimal / math.sqrt(n),
            )
        )
    return rows


def lens_scaling_table(d: int, diameters: list[int]) -> str:
    """Plain-text rendering of :func:`lens_scaling_study` (used by the examples)."""
    rows = lens_scaling_study(d, diameters)
    lines = [
        f"de Bruijn B({d}, D) OTIS layouts: known O(n) lenses vs Corollary 4.4/4.6",
        f"{'D':>3} {'n':>9} {'II lenses':>10} {'optimal':>8} {'split':>9} "
        f"{'ratio':>8} {'(p+q)/sqrt(n)':>14}",
    ]
    for row in rows:
        lines.append(
            f"{row.D:>3} {row.n:>9} {row.lenses_imase_itoh:>10} {row.lenses_optimal:>8} "
            f"{('(' + str(row.p_prime) + ',' + str(row.q_prime) + ')'):>9} "
            f"{row.ratio:>8.1f} {row.normalised:>14.3f}"
        )
    return "\n".join(lines)
