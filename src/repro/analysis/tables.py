"""Small reporting helpers used by the examples, benchmarks and EXPERIMENTS.md.

Nothing here is scientific: :func:`format_table` renders rows of dictionaries
as aligned plain text (no external dependency on tabulate),
:func:`paper_vs_measured` lines up a paper-reported quantity with the value
this reproduction measures (computing the relative deviation when both are
numeric), and :func:`merge_bench_json` is the one shared writer of the
``BENCH_*.json`` trajectory files (used by the benchmarks and the CLI, so
every entry goes through the same merge-don't-clobber, sorted-keys path).
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from collections.abc import Mapping, Sequence
from pathlib import Path

try:  # file locks for cross-process merge exclusion (POSIX)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["format_table", "paper_vs_measured", "merge_bench_json"]


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render a list of dictionaries as an aligned plain-text table.

    Column order is taken from ``columns`` when given, otherwise from the keys
    of the first row.  Floats are shown with 4 significant digits.
    """
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


#: Serialises in-process merges; the sidecar ``flock`` below covers other
#: processes.  One shared lock (not per-path) keeps the bookkeeping trivial —
#: BENCH merges are rare and tiny, contention is irrelevant.
_MERGE_LOCK = threading.Lock()


def merge_bench_json(path: str | Path, name: str, entry: object) -> Path:
    """Merge one named entry into a ``BENCH_*.json`` trajectory file.

    Existing entries under other names are preserved (the BENCH files track
    the performance trajectory *across* PRs, so a run must never clobber the
    whole file).  The merge is crash- and concurrency-safe:

    * the new contents are written to a sibling temp file and moved into
      place with :func:`os.replace` (the ``ChunkStore`` pattern), so a crash
      mid-write leaves the previous file intact — readers never observe a
      torn file;
    * the read-modify-write cycle runs under a process-wide thread lock plus
      a sidecar ``flock`` (``.<name>.lock``, POSIX), so two concurrent
      writers — e.g. ``repro fleet sim --merge --json`` racing a benchmark
      run — cannot drop each other's entries;
    * an unreadable or corrupt existing file is still treated as empty (the
      fresh numbers must land), but a :class:`RuntimeWarning` is emitted
      instead of silently resetting the trajectory.
    """
    path = Path(path)
    with _MERGE_LOCK:
        lock_path = path.with_name(f".{path.name}.lock")
        lock_fd = None
        if fcntl is not None:
            lock_fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
        try:
            data: dict = {}
            if path.exists():
                try:
                    data = json.loads(path.read_text())
                except (ValueError, OSError) as error:
                    warnings.warn(
                        f"{path}: existing bench file is unreadable "
                        f"({error}); starting a fresh trajectory file",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    data = {}
            data[name] = entry
            tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
            try:
                tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        finally:
            if lock_fd is not None:
                fcntl.flock(lock_fd, fcntl.LOCK_UN)
                os.close(lock_fd)
    return path


def paper_vs_measured(
    name: str, paper_value: object, measured_value: object
) -> dict[str, object]:
    """One comparison row for EXPERIMENTS.md-style reporting.

    When both values are numeric the relative deviation
    ``|measured - paper| / |paper|`` is included (``0`` when the paper value
    is zero and they agree, ``inf`` otherwise).
    """
    row: dict[str, object] = {
        "quantity": name,
        "paper": paper_value,
        "measured": measured_value,
    }
    if isinstance(paper_value, (int, float)) and isinstance(
        measured_value, (int, float)
    ):
        if paper_value == 0:
            row["relative_deviation"] = 0.0 if measured_value == 0 else float("inf")
        else:
            row["relative_deviation"] = abs(measured_value - paper_value) / abs(
                paper_value
            )
        row["match"] = paper_value == measured_value
    else:
        row["match"] = paper_value == measured_value
    return row
