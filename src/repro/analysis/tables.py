"""Small reporting helpers used by the examples, benchmarks and EXPERIMENTS.md.

Nothing here is scientific: :func:`format_table` renders rows of dictionaries
as aligned plain text (no external dependency on tabulate),
:func:`paper_vs_measured` lines up a paper-reported quantity with the value
this reproduction measures (computing the relative deviation when both are
numeric), and :func:`merge_bench_json` is the one shared writer of the
``BENCH_*.json`` trajectory files (used by the benchmarks and the CLI, so
every entry goes through the same merge-don't-clobber, sorted-keys path).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["format_table", "paper_vs_measured", "merge_bench_json"]


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render a list of dictionaries as an aligned plain-text table.

    Column order is taken from ``columns`` when given, otherwise from the keys
    of the first row.  Floats are shown with 4 significant digits.
    """
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def merge_bench_json(path: str | Path, name: str, entry: object) -> Path:
    """Merge one named entry into a ``BENCH_*.json`` trajectory file.

    Existing entries under other names are preserved (the BENCH files track
    the performance trajectory *across* PRs, so a run must never clobber the
    whole file); an unreadable or corrupt file is treated as empty rather
    than aborting the benchmark that produced the fresh numbers.
    """
    path = Path(path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[name] = entry
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def paper_vs_measured(
    name: str, paper_value: object, measured_value: object
) -> dict[str, object]:
    """One comparison row for EXPERIMENTS.md-style reporting.

    When both values are numeric the relative deviation
    ``|measured - paper| / |paper|`` is included (``0`` when the paper value
    is zero and they agree, ``inf`` otherwise).
    """
    row: dict[str, object] = {
        "quantity": name,
        "paper": paper_value,
        "measured": measured_value,
    }
    if isinstance(paper_value, (int, float)) and isinstance(
        measured_value, (int, float)
    ):
        if paper_value == 0:
            row["relative_deviation"] = 0.0 if measured_value == 0 else float("inf")
        else:
            row["relative_deviation"] = abs(measured_value - paper_value) / abs(
                paper_value
            )
        row["match"] = paper_value == measured_value
    else:
        row["match"] = paper_value == measured_value
    return row
