"""Trace-replay load generator for the serve layer (``repro serve bench``).

Replays a simulator-generated workload (:func:`make_workload` — so the same
uniform/hotspot/permutation/bursty/diurnal arrival processes the PR 6
scenario layer sweeps) against a running server: the ``(source, target)``
pairs are cut into batches of ``batch_pairs``, the batches are spread over
``connections`` concurrent keep-alive connections, and every request's
round-trip latency is recorded.  The result carries exact client-side
percentiles (every sample is kept) and the aggregate queries/sec, and
serialises into the ``BENCH_serve.json`` trajectory format whose
``wall_time_s`` / ``*_s`` latency keys and ``qps`` throughput key are
regression-checked by the bench gate.

:class:`ServerThread` runs a :class:`RouteQueryServer` on a background
thread with its own event loop — the in-process harness the tests, the
benchmarks and ``repro serve bench --self-host`` all share.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from dataclasses import dataclass

from repro.serve.registry import RouterRegistry
from repro.serve.server import RouteQueryServer

__all__ = [
    "ServerThread",
    "http_request",
    "ExponentialBackoff",
    "BenchResult",
    "run_bench",
]


class ServerThread:
    """A :class:`RouteQueryServer` on a dedicated thread + event loop.

    >>> registry = RouterRegistry()
    >>> _ = registry.add("demo", "B(2,3)")
    >>> with ServerThread(registry) as server:
    ...     reply = http_request(server.host, server.port, "GET", "/healthz")
    >>> reply["ok"]
    True
    """

    def __init__(self, registry: RouterRegistry, **server_kwargs):
        self.server = RouteQueryServer(registry, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("serve thread failed to start")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise RuntimeError("serve thread failed to start") from (
                self._startup_error
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main():
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                raise
            finally:
                self._started.set()
            # Sleep forever; stop() interrupts via loop.stop().
            await asyncio.Event().wait()

        try:
            loop.run_until_complete(main())
        except RuntimeError:  # loop.stop() interrupts run_until_complete
            pass
        except Exception:  # startup failure already captured above
            pass
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def http_request(
    host: str, port: int, method: str, path: str, body: object = None
) -> dict:
    """One blocking JSON-over-HTTP round trip (stdlib ``http.client``)."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return json.loads(response.read())
    finally:
        connection.close()


class ExponentialBackoff:
    """Jittered exponential retry delays (equal-jitter variant).

    ``delay(attempt)`` for attempt 0, 1, 2, … is drawn uniformly from
    ``[d/2, d]`` where ``d = min(cap_s, base_s * multiplier**attempt)``.
    The deterministic half keeps the expected delay growing exponentially
    (so an overloaded server's offered retry load halves every round);  the
    jittered half de-correlates clients that were all shed at the same
    instant — without it every rejected client would retry in lock-step and
    re-arrive as the same thundering herd that got them shed the first
    time.  Seedable for reproducible tests.
    """

    def __init__(
        self,
        *,
        base_s: float = 0.05,
        cap_s: float = 5.0,
        multiplier: float = 2.0,
        seed: int | None = None,
    ):
        if base_s <= 0 or cap_s < base_s or multiplier < 1.0:
            raise ValueError("need 0 < base_s <= cap_s and multiplier >= 1")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.multiplier = float(multiplier)
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        ceiling = min(self.cap_s, self.base_s * self.multiplier**attempt)
        return ceiling / 2.0 + self._rng.uniform(0.0, ceiling / 2.0)


@dataclass
class BenchResult:
    """One load-generation run against a serve endpoint."""

    topology: str
    op: str
    workload: str
    queries: int
    requests: int
    batch_pairs: int
    connections: int
    wall_s: float
    qps: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    retries: int = 0  #: requests re-sent after a 429 (backpressure retries)

    def to_json(self) -> dict:
        """The ``BENCH_serve.json`` entry format (keys feed the bench gate)."""
        return {
            "topology": self.topology,
            "op": self.op,
            "workload": self.workload,
            "queries": self.queries,
            "requests": self.requests,
            "batch_pairs": self.batch_pairs,
            "connections": self.connections,
            "wall_time_s": round(self.wall_s, 4),
            "qps": round(self.qps, 1),
            "p50_s": round(self.p50_s, 6),
            "p95_s": round(self.p95_s, 6),
            "p99_s": round(self.p99_s, 6),
            "max_s": round(self.max_s, 6),
            "retries": self.retries,
        }

    def describe(self) -> str:
        return (
            f"{self.topology}/{self.op}: {self.queries} queries in "
            f"{self.wall_s:.3f}s = {self.qps:,.0f} q/s "
            f"(p50 {self.p50_s * 1e3:.2f}ms, p99 {self.p99_s * 1e3:.2f}ms, "
            f"{self.requests} requests x {self.batch_pairs} pairs, "
            f"{self.connections} connections)"
        )


#: How many times one request is re-sent after a 429 before the bench fails.
MAX_RETRY_ATTEMPTS = 8


async def _read_response(reader) -> tuple[int, dict[str, str], bytes]:
    """One HTTP/1.1 response: ``(status code, lowercase headers, body)``."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("server closed the connection")
    parts = status_line.decode("latin-1").split(None, 2)
    status = int(parts[1]) if len(parts) >= 2 else 0
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def _replay_connection(
    host: str,
    port: int,
    payloads: list[bytes],
    latencies: list[float],
    *,
    backoff: ExponentialBackoff,
    sleep=asyncio.sleep,
) -> int:
    """Send this connection's payloads sequentially (keep-alive).

    A ``429`` answer is not a failure: the server is shedding load, and the
    client's contract is to back off — ``max(Retry-After, jittered
    exponential delay)`` — and re-send.  Only the finally *accepted*
    attempt's round-trip enters ``latencies`` (shed attempts measure the
    server's rejection fast-path, not query latency).  Returns the number
    of retried sends.
    """
    reader, writer = await asyncio.open_connection(host, port)
    retries = 0
    try:
        for payload in payloads:
            for attempt in range(MAX_RETRY_ATTEMPTS + 1):
                start = time.perf_counter()
                writer.write(
                    (
                        f"POST /v1/query HTTP/1.1\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(payload)}\r\n"
                        "\r\n"
                    ).encode()
                    + payload
                )
                await writer.drain()
                status, headers, body = await _read_response(reader)
                if status == 429:
                    if attempt >= MAX_RETRY_ATTEMPTS:
                        raise RuntimeError(
                            f"server still shedding after "
                            f"{MAX_RETRY_ATTEMPTS} retries: {body!r}"
                        )
                    retries += 1
                    try:
                        retry_after = float(headers.get("retry-after", "0"))
                    except ValueError:
                        retry_after = 0.0
                    await sleep(max(retry_after, backoff.delay(attempt)))
                    continue
                latencies.append(time.perf_counter() - start)
                reply = json.loads(body)
                if not reply.get("ok"):
                    raise RuntimeError(f"server rejected a bench query: {reply}")
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return retries


async def _replay(
    host: str,
    port: int,
    batches: list[bytes],
    connections: int,
    *,
    backoff_seed: int | None = None,
) -> tuple[list[float], float, int]:
    per_connection: list[list[bytes]] = [[] for _ in range(connections)]
    for index, payload in enumerate(batches):
        per_connection[index % connections].append(payload)
    latencies: list[float] = []
    start = time.perf_counter()
    retry_counts = await asyncio.gather(
        *(
            _replay_connection(
                host,
                port,
                payloads,
                latencies,
                # Per-connection RNG streams: seeded runs replay, but the
                # connections still jitter independently of each other.
                backoff=ExponentialBackoff(
                    seed=None if backoff_seed is None else backoff_seed + index
                ),
            )
            for index, payloads in enumerate(per_connection)
            if payloads
        )
    )
    return latencies, time.perf_counter() - start, sum(retry_counts)


def run_bench(
    host: str,
    port: int,
    *,
    topology: str,
    op: str = "next-hop",
    workload: str = "uniform",
    messages: int = 100_000,
    batch_pairs: int = 1024,
    connections: int = 4,
    seed: int = 0,
    rate: float | None = None,
) -> BenchResult:
    """Replay one workload against a running server; returns the result.

    The traffic is generated with the simulators'
    :func:`~repro.simulation.workloads.make_workload` (identical RNG stream,
    so a bench run queries exactly the pairs a simulation would route) and
    the topology size is discovered from the server's ``/stats`` endpoint —
    the client needs no local copy of the graph.
    """
    from repro.simulation.workloads import make_workload

    stats = http_request(host, port, "GET", "/stats")
    info = stats.get("topologies", {}).get(topology)
    if info is None:
        known = ", ".join(sorted(stats.get("topologies", {}))) or "(none)"
        raise ValueError(
            f"server does not serve topology {topology!r} (serving: {known})"
        )
    num_nodes = int(info["nodes"])
    traffic = make_workload(workload, num_nodes, messages, rng=seed, rate=rate)
    pairs = [[source, target] for source, target, _ in traffic]
    batches = []
    for offset in range(0, len(pairs), batch_pairs):
        chunk = pairs[offset : offset + batch_pairs]
        batches.append(
            json.dumps(
                {"op": op, "topology": topology, "pairs": chunk}
            ).encode()
        )
    latencies, wall, retries = asyncio.run(
        _replay(host, port, batches, connections, backoff_seed=seed)
    )
    latencies.sort()
    count = len(latencies)

    def percentile(p: float) -> float:
        if not count:
            return 0.0
        return latencies[min(count - 1, int(p / 100.0 * count))]

    queries = len(pairs)
    return BenchResult(
        topology=topology,
        op=op,
        workload=workload,
        queries=queries,
        requests=count,
        batch_pairs=batch_pairs,
        connections=connections,
        wall_s=wall,
        qps=queries / wall if wall > 0 else 0.0,
        p50_s=percentile(50),
        p95_s=percentile(95),
        p99_s=percentile(99),
        max_s=latencies[-1] if latencies else 0.0,
        retries=retries,
    )
