"""Trace-replay load generator for the serve layer (``repro serve bench``).

Replays a simulator-generated workload (:func:`make_workload` — so the same
uniform/hotspot/permutation/bursty/diurnal arrival processes the PR 6
scenario layer sweeps) against a running server: the ``(source, target)``
pairs are cut into batches of ``batch_pairs``, the batches are spread over
``connections`` concurrent keep-alive connections, and every request's
round-trip latency is recorded.  The result carries exact client-side
percentiles (every sample is kept) and the aggregate queries/sec, and
serialises into the ``BENCH_serve.json`` trajectory format whose
``wall_time_s`` / ``*_s`` latency keys and ``qps`` throughput key are
regression-checked by the bench gate.

:class:`ServerThread` runs a :class:`RouteQueryServer` on a background
thread with its own event loop — the in-process harness the tests, the
benchmarks and ``repro serve bench --self-host`` all share.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass

from repro.serve.registry import RouterRegistry
from repro.serve.server import RouteQueryServer

__all__ = ["ServerThread", "http_request", "BenchResult", "run_bench"]


class ServerThread:
    """A :class:`RouteQueryServer` on a dedicated thread + event loop.

    >>> registry = RouterRegistry()
    >>> _ = registry.add("demo", "B(2,3)")
    >>> with ServerThread(registry) as server:
    ...     reply = http_request(server.host, server.port, "GET", "/healthz")
    >>> reply["ok"]
    True
    """

    def __init__(self, registry: RouterRegistry, **server_kwargs):
        self.server = RouteQueryServer(registry, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("serve thread failed to start")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise RuntimeError("serve thread failed to start") from (
                self._startup_error
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main():
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                raise
            finally:
                self._started.set()
            # Sleep forever; stop() interrupts via loop.stop().
            await asyncio.Event().wait()

        try:
            loop.run_until_complete(main())
        except RuntimeError:  # loop.stop() interrupts run_until_complete
            pass
        except Exception:  # startup failure already captured above
            pass
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def http_request(
    host: str, port: int, method: str, path: str, body: object = None
) -> dict:
    """One blocking JSON-over-HTTP round trip (stdlib ``http.client``)."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return json.loads(response.read())
    finally:
        connection.close()


@dataclass
class BenchResult:
    """One load-generation run against a serve endpoint."""

    topology: str
    op: str
    workload: str
    queries: int
    requests: int
    batch_pairs: int
    connections: int
    wall_s: float
    qps: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def to_json(self) -> dict:
        """The ``BENCH_serve.json`` entry format (keys feed the bench gate)."""
        return {
            "topology": self.topology,
            "op": self.op,
            "workload": self.workload,
            "queries": self.queries,
            "requests": self.requests,
            "batch_pairs": self.batch_pairs,
            "connections": self.connections,
            "wall_time_s": round(self.wall_s, 4),
            "qps": round(self.qps, 1),
            "p50_s": round(self.p50_s, 6),
            "p95_s": round(self.p95_s, 6),
            "p99_s": round(self.p99_s, 6),
            "max_s": round(self.max_s, 6),
        }

    def describe(self) -> str:
        return (
            f"{self.topology}/{self.op}: {self.queries} queries in "
            f"{self.wall_s:.3f}s = {self.qps:,.0f} q/s "
            f"(p50 {self.p50_s * 1e3:.2f}ms, p99 {self.p99_s * 1e3:.2f}ms, "
            f"{self.requests} requests x {self.batch_pairs} pairs, "
            f"{self.connections} connections)"
        )


async def _replay_connection(
    host: str, port: int, payloads: list[bytes], latencies: list[float]
) -> None:
    """Send this connection's request payloads sequentially (keep-alive)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for payload in payloads:
            start = time.perf_counter()
            writer.write(
                (
                    f"POST /v1/query HTTP/1.1\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
            # Read the status line + headers, then exactly the body.
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = await reader.readexactly(length)
            latencies.append(time.perf_counter() - start)
            reply = json.loads(body)
            if not reply.get("ok"):
                raise RuntimeError(f"server rejected a bench query: {reply}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _replay(
    host: str, port: int, batches: list[bytes], connections: int
) -> tuple[list[float], float]:
    per_connection: list[list[bytes]] = [[] for _ in range(connections)]
    for index, payload in enumerate(batches):
        per_connection[index % connections].append(payload)
    latencies: list[float] = []
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _replay_connection(host, port, payloads, latencies)
            for payloads in per_connection
            if payloads
        )
    )
    return latencies, time.perf_counter() - start


def run_bench(
    host: str,
    port: int,
    *,
    topology: str,
    op: str = "next-hop",
    workload: str = "uniform",
    messages: int = 100_000,
    batch_pairs: int = 1024,
    connections: int = 4,
    seed: int = 0,
    rate: float | None = None,
) -> BenchResult:
    """Replay one workload against a running server; returns the result.

    The traffic is generated with the simulators'
    :func:`~repro.simulation.workloads.make_workload` (identical RNG stream,
    so a bench run queries exactly the pairs a simulation would route) and
    the topology size is discovered from the server's ``/stats`` endpoint —
    the client needs no local copy of the graph.
    """
    from repro.simulation.workloads import make_workload

    stats = http_request(host, port, "GET", "/stats")
    info = stats.get("topologies", {}).get(topology)
    if info is None:
        known = ", ".join(sorted(stats.get("topologies", {}))) or "(none)"
        raise ValueError(
            f"server does not serve topology {topology!r} (serving: {known})"
        )
    num_nodes = int(info["nodes"])
    traffic = make_workload(workload, num_nodes, messages, rng=seed, rate=rate)
    pairs = [[source, target] for source, target, _ in traffic]
    batches = []
    for offset in range(0, len(pairs), batch_pairs):
        chunk = pairs[offset : offset + batch_pairs]
        batches.append(
            json.dumps(
                {"op": op, "topology": topology, "pairs": chunk}
            ).encode()
        )
    latencies, wall = asyncio.run(_replay(host, port, batches, connections))
    latencies.sort()
    count = len(latencies)

    def percentile(p: float) -> float:
        if not count:
            return 0.0
        return latencies[min(count - 1, int(p / 100.0 * count))]

    queries = len(pairs)
    return BenchResult(
        topology=topology,
        op=op,
        workload=workload,
        queries=queries,
        requests=count,
        batch_pairs=batch_pairs,
        connections=connections,
        wall_s=wall,
        qps=queries / wall if wall > 0 else 0.0,
        p50_s=percentile(50),
        p95_s=percentile(95),
        p99_s=percentile(99),
        max_s=latencies[-1] if latencies else 0.0,
    )
