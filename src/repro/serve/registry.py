"""Named-topology router registry with atomic hot reload.

The registry maps service-visible names to built :class:`Router` instances.
Specs are the same canonical family strings the rest of the repository uses
(``B(d,D)``, ``K(d,D)``, ``RRK(d,n)``, ``II(d,n)``, ``H(p,q,d)``), so a
registry entry is exactly "the graph the CLI would build, routed by the
router ``make_router`` would pick".

Hot reload: the registry can be bound to a JSON spec file
(:meth:`RouterRegistry.load_spec_file`); :meth:`RouterRegistry.reload`
re-reads it when its mtime/size changed and rebuilds only the entries whose
spec or router kind actually differ.  Rebuilds are atomic — the new
:class:`RouterEntry` replaces the old one in a single dict assignment under
the registry lock, so in-flight queries either see the complete old router
or the complete new one, never a half-built state.  Entry versions increase
monotonically so clients can detect a reload in ``/stats``.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.graphs.digraph import BaseDigraph
from repro.routing.routers import ROUTER_KINDS, Router, make_router

__all__ = ["build_graph", "RouterEntry", "RouterRegistry", "SPEC_PATTERN"]

#: Accepted topology spec strings: a family name and its integer parameters.
SPEC_PATTERN = re.compile(r"^(B|K|RRK|II|H)\((\d+(?:,\d+)*)\)$")


def build_graph(spec: str) -> BaseDigraph:
    """Build the digraph a canonical family spec string names.

    >>> build_graph("B(2,3)").num_vertices
    8
    """
    match = SPEC_PATTERN.match(spec.replace(" ", ""))
    if not match:
        raise ValueError(
            f"bad topology spec {spec!r} (expected e.g. B(2,6), K(2,5), "
            "RRK(2,64), II(2,64) or H(16,32,2))"
        )
    family = match.group(1)
    params = tuple(int(x) for x in match.group(2).split(","))
    from repro.graphs.generators import (
        de_bruijn,
        imase_itoh,
        kautz,
        reddy_raghavan_kuhl,
    )
    from repro.otis.h_digraph import h_digraph

    builders = {
        "B": (de_bruijn, 2),
        "K": (kautz, 2),
        "RRK": (reddy_raghavan_kuhl, 2),
        "II": (imase_itoh, 2),
        "H": (h_digraph, 3),
    }
    builder, arity = builders[family]
    if len(params) != arity:
        raise ValueError(
            f"bad topology spec {spec!r}: {family} takes {arity} parameters"
        )
    return builder(*params)


@dataclass(frozen=True)
class RouterEntry:
    """One immutable registry entry: a built router plus its provenance."""

    name: str
    spec: str
    router_kind: str  #: the *requested* kind ("auto" resolves at build time)
    graph: BaseDigraph
    router: Router
    version: int  #: bumps on every rebuild of this name (hot reload marker)

    def snapshot(self) -> dict:
        """JSON-able description for ``/stats`` (includes cache hit rates)."""
        info: dict = {
            "spec": self.spec,
            "requested_router": self.router_kind,
            "router": self.router.kind,
            "nodes": self.graph.num_vertices,
            "links": self.graph.num_arcs,
            "state_bytes": self.router.state_bytes(),
            "version": self.version,
        }
        hits = getattr(self.router, "hits", None)
        misses = getattr(self.router, "misses", None)
        if hits is not None and misses is not None:
            total = hits + misses
            info["cache_hits"] = int(hits)
            info["cache_misses"] = int(misses)
            info["cache_hit_rate"] = round(hits / total, 6) if total else None
        return info


class RouterRegistry:
    """Thread-safe name -> :class:`RouterEntry` map with hot reload.

    Lookups (:meth:`get`) take the lock only for the dict read; the returned
    entry is immutable, so queries answered from it are not affected by a
    concurrent reload — they finish on the router they started with.
    """

    def __init__(self):
        self._entries: dict[str, RouterEntry] = {}
        self._lock = threading.RLock()
        self._versions = 0
        self._spec_file: Path | None = None
        self._spec_file_stamp: tuple[float, int] | None = None
        self.reloads = 0
        self.failed_reloads = 0
        self.last_error: str | None = None  #: message of the last failed reload

    # -------------------------------------------------------------- access
    def get(self, name: str) -> RouterEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise KeyError(name)
        return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def snapshot(self) -> dict:
        """Per-topology ``/stats`` section."""
        with self._lock:
            entries = list(self._entries.values())
        return {entry.name: entry.snapshot() for entry in entries}

    # --------------------------------------------------------------- build
    def add(self, name: str, spec: str, router: str = "auto") -> RouterEntry:
        """Build (or rebuild) the entry for ``name``; returns it.

        A no-op returning the existing entry when ``(spec, router)`` are
        unchanged — hot reload only rebuilds what actually differs.
        """
        if router not in ROUTER_KINDS:
            raise ValueError(
                f"unknown router kind {router!r} (expected one of {ROUTER_KINDS})"
            )
        with self._lock:
            current = self._entries.get(name)
            if (
                current is not None
                and current.spec == spec
                and current.router_kind == router
            ):
                return current
        # Build outside the lock (graph + router construction can be slow);
        # the final dict assignment is the atomic switch-over.
        graph = build_graph(spec)
        built = make_router(graph, router)
        with self._lock:
            self._versions += 1
            entry = RouterEntry(
                name=name,
                spec=spec,
                router_kind=router,
                graph=graph,
                router=built,
                version=self._versions,
            )
            self._entries[name] = entry
        return entry

    def remove(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    # ---------------------------------------------------------- spec files
    @staticmethod
    def _parse_spec_value(name: str, value) -> tuple[str, str]:
        """``(spec, router)`` from a spec-file value (string or object)."""
        if isinstance(value, str):
            return value, "auto"
        if isinstance(value, dict) and "spec" in value:
            return str(value["spec"]), str(value.get("router", "auto"))
        raise ValueError(
            f"spec file entry {name!r} must be a spec string or an object "
            'with a "spec" key'
        )

    def load_spec_file(self, path: str | Path) -> list[str]:
        """Bind the registry to a JSON spec file and (re)build its entries.

        The file maps names to either a spec string or
        ``{"spec": ..., "router": ...}``::

            {"prod": {"spec": "H(16,32,2)", "router": "closed-form"},
             "lab": "B(2,6)"}

        Returns the names whose entries changed (rebuilt, added or removed).

        **Transactional**: the file is parsed in full and every new entry is
        built *before* anything is committed to the live registry, in one
        dict update under the lock.  A truncated file, unparseable JSON, a
        bad spec string or a router that fails to build therefore leaves the
        registry exactly on its last good snapshot — a half-written reload
        can never tear down entries the server is answering from.
        """
        path = Path(path)
        raw = json.loads(path.read_text())
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: spec file must be a JSON object")
        parsed = {
            name: self._parse_spec_value(name, value)
            for name, value in raw.items()
        }
        # Build every changed entry outside the lock (construction can be
        # slow, and it can fail — nothing is committed yet).
        with self._lock:
            current = dict(self._entries)
        built: dict[str, RouterEntry] = {}
        for name, (spec, router) in sorted(parsed.items()):
            if router not in ROUTER_KINDS:
                raise ValueError(
                    f"unknown router kind {router!r} "
                    f"(expected one of {ROUTER_KINDS})"
                )
            before = current.get(name)
            if (
                before is not None
                and before.spec == spec
                and before.router_kind == router
            ):
                continue  # unchanged — keep the live entry
            graph = build_graph(spec)
            built[name] = RouterEntry(
                name=name,
                spec=spec,
                router_kind=router,
                graph=graph,
                router=make_router(graph, router),
                version=0,  # stamped at commit time below
            )
        removed = [name for name in current if name not in parsed]
        stat = path.stat()
        # Commit: one atomic switch-over of everything that changed.
        changed: list[str] = []
        with self._lock:
            for name, entry in built.items():
                self._versions += 1
                self._entries[name] = RouterEntry(
                    name=entry.name,
                    spec=entry.spec,
                    router_kind=entry.router_kind,
                    graph=entry.graph,
                    router=entry.router,
                    version=self._versions,
                )
                changed.append(name)
            for name in removed:
                if name in self._entries:
                    del self._entries[name]
                    changed.append(name)
            self._spec_file = path
            self._spec_file_stamp = (stat.st_mtime, stat.st_size)
            if changed:
                self.reloads += 1
            self.last_error = None
        return changed

    def reload(self, force: bool = False, *, strict: bool = False) -> list[str]:
        """Re-read the bound spec file if it changed; returns changed names.

        Cheap when nothing changed (one ``stat``), so the server calls this
        periodically.  ``force=True`` skips the mtime check (the ``/reload``
        endpoint).

        By default a failed re-read **degrades instead of raising**: the
        registry keeps serving its last good snapshot, the failure is
        recorded in :attr:`last_error`/:attr:`failed_reloads` (surfaced via
        ``/stats``), and the next poll retries.  ``strict=True`` propagates
        the exception — the explicit ``/reload`` endpoint uses it so a
        caller asking for a reload hears that it failed.
        """
        with self._lock:
            path = self._spec_file
            stamp = self._spec_file_stamp
        if path is None:
            return []
        try:
            stat = path.stat()
        except OSError as exc:
            if strict:
                raise
            with self._lock:
                self.failed_reloads += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
            return []
        if not force and stamp == (stat.st_mtime, stat.st_size):
            return []
        try:
            return self.load_spec_file(path)
        except (OSError, ValueError) as exc:
            if strict:
                raise
            with self._lock:
                self.failed_reloads += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
            return []
