"""Serve-side metrics: counters, queries/sec and latency histograms.

Everything is allocation-light and thread-safe (one lock per metrics
object): the server records one sample per request from executor threads
while ``/stats`` snapshots from the event loop.

Latencies go into a fixed log-spaced histogram (:class:`LatencyHistogram`),
so percentiles are bucket upper bounds — a deliberately cheap estimator
whose error is bounded by the bucket ratio (~26% with the default 48 buckets
spanning 1 µs .. 100 s).  That is plenty for tail-latency regression
tracking, and it never stores per-request samples.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["LatencyHistogram", "EndpointMetrics", "ServeMetrics"]

#: Cap on distinct endpoint labels — requests beyond it aggregate under
#: ``"__other__"`` so an attacker (or a typo'd load generator) sending
#: unbounded distinct op names cannot grow the metrics dict without limit.
MAX_ENDPOINTS = 64

#: Cap on the sliding-window qps samples.  At the default 10 s window this
#: still resolves ~400 samples/s; beyond it old samples are evicted early,
#: which can only *under*-count qps — memory stays bounded no matter the
#: request rate or the process uptime.
MAX_RECENT = 4096


class LatencyHistogram:
    """Fixed log-spaced latency histogram with percentile estimates."""

    def __init__(
        self, *, min_s: float = 1e-6, max_s: float = 100.0, buckets: int = 48
    ):
        if buckets < 2 or not 0 < min_s < max_s:
            raise ValueError("need buckets >= 2 and 0 < min_s < max_s")
        ratio = (max_s / min_s) ** (1.0 / (buckets - 1))
        self.bounds = [min_s * ratio**i for i in range(buckets)]
        self.counts = [0] * (buckets + 1)  # +1: overflow bucket
        self.total = 0
        self.sum_s = 0.0

    def record(self, seconds: float) -> None:
        # Binary search beats a linear scan at 48 buckets; inline bisect.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < seconds:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.total += 1
        self.sum_s += seconds

    def percentile(self, p: float) -> float | None:
        """Upper bound of the bucket holding the ``p``-th percentile sample."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.total == 0:
            return None
        rank = max(1, int(p / 100.0 * self.total + 0.5))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")  # overflow bucket
        return self.bounds[-1]  # pragma: no cover - rank <= total

    def mean(self) -> float | None:
        return self.sum_s / self.total if self.total else None


class EndpointMetrics:
    """Counters + latency histogram of one endpoint/op."""

    def __init__(self):
        self.requests = 0
        self.queries = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "queries": self.queries,
            "errors": self.errors,
            "latency_mean_s": self.latency.mean(),
            "latency_p50_s": self.latency.percentile(50),
            "latency_p95_s": self.latency.percentile(95),
            "latency_p99_s": self.latency.percentile(99),
        }


class ServeMetrics:
    """All metrics of one server process (the ``/stats`` payload)."""

    def __init__(self, *, window_s: float = 10.0, clock=time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self._window_s = float(window_s)
        self._started = clock()
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._recent: deque[tuple[float, int]] = deque(maxlen=MAX_RECENT)
        self.batches = 0  # micro-batched router calls
        self.coalesced_requests = 0  # requests that shared a batch
        self.max_batch_pairs = 0
        self.shed = 0  # requests rejected by backpressure (429)
        self.deadline_exceeded = 0  # requests cancelled at their deadline

    def record(
        self, endpoint: str, *, queries: int, seconds: float, error: bool = False
    ) -> None:
        """One completed request: its endpoint/op, batch size and latency."""
        now = self._clock()
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                if len(self._endpoints) >= MAX_ENDPOINTS:
                    endpoint = "__other__"
                metrics = self._endpoints.setdefault(endpoint, EndpointMetrics())
            metrics.requests += 1
            metrics.queries += queries
            if error:
                metrics.errors += 1
            metrics.latency.record(seconds)
            self._recent.append((now, queries))
            horizon = now - self._window_s
            while self._recent and self._recent[0][0] < horizon:
                self._recent.popleft()

    def record_shed(self) -> None:
        """One request rejected with 429 by the in-flight limit."""
        with self._lock:
            self.shed += 1

    def record_deadline(self) -> None:
        """One request cancelled because it overran its deadline."""
        with self._lock:
            self.deadline_exceeded += 1

    def record_batch(self, *, requests: int, pairs: int) -> None:
        """One coalesced router call of the micro-batcher."""
        with self._lock:
            self.batches += 1
            if requests > 1:
                self.coalesced_requests += requests
            self.max_batch_pairs = max(self.max_batch_pairs, pairs)

    def queries_per_second(self) -> float:
        """Queries/sec over the sliding window (0 when idle)."""
        now = self._clock()
        with self._lock:
            horizon = now - self._window_s
            total = sum(q for t, q in self._recent if t >= horizon)
        return total / self._window_s

    def snapshot(self) -> dict:
        now = self._clock()
        qps = self.queries_per_second()
        with self._lock:
            endpoints = {
                name: metrics.snapshot()
                for name, metrics in sorted(self._endpoints.items())
            }
            return {
                "uptime_s": now - self._started,
                "queries_per_second": qps,
                "endpoints": endpoints,
                "batching": {
                    "batches": self.batches,
                    "coalesced_requests": self.coalesced_requests,
                    "max_batch_pairs": self.max_batch_pairs,
                },
                "backpressure": {
                    "shed": self.shed,
                    "deadline_exceeded": self.deadline_exceeded,
                },
            }
