"""Async batch route-query service (``repro serve``).

The closed-form routers of :mod:`repro.routing.routers` answer next-hop
queries in O(D) from O(n) state — 2 MB at ``n = 131072`` where a dense table
is 275 GB — which makes them servable: a stateless worker holding only the
relabelling arrays can answer route queries for millions of users, and
horizontal scale-out is free.  This package turns that asset into a service:

* :mod:`repro.serve.registry` — named topologies -> built routers, with
  atomic hot reload when a spec changes,
* :mod:`repro.serve.protocol` — the batch JSON query format and its
  vectorised decode/answer kernels,
* :mod:`repro.serve.metrics` — per-endpoint counters, queries/sec and
  latency histograms behind the ``/stats`` endpoint,
* :mod:`repro.serve.server` — the asyncio HTTP server with micro-batching
  (concurrent requests coalesce into one ``next_hops`` call),
* :mod:`repro.serve.bench` — the trace-replay load generator feeding
  ``BENCH_serve.json``.

Everything is stdlib ``asyncio`` + numpy; there are no new dependencies.
"""

from repro.serve.bench import (
    BenchResult,
    ExponentialBackoff,
    ServerThread,
    run_bench,
)
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.protocol import (
    QUERY_OPS,
    BatchQuery,
    ProtocolError,
    answer_query,
    decode_query,
)
from repro.serve.registry import RouterEntry, RouterRegistry, build_graph
from repro.serve.server import RouteQueryServer

__all__ = [
    "RouterRegistry",
    "RouterEntry",
    "build_graph",
    "QUERY_OPS",
    "BatchQuery",
    "ProtocolError",
    "decode_query",
    "answer_query",
    "LatencyHistogram",
    "ServeMetrics",
    "RouteQueryServer",
    "ServerThread",
    "BenchResult",
    "ExponentialBackoff",
    "run_bench",
]
