"""The asyncio batch route-query server.

Transport is deliberately minimal HTTP/1.1 on stdlib ``asyncio`` streams (no
new dependencies): one JSON object per request body, keep-alive connections,
four routes:

* ``POST /v1/query`` — a batch next-hop / path / ETA query
  (:mod:`repro.serve.protocol`),
* ``GET /stats`` — the metrics snapshot (:mod:`repro.serve.metrics`) plus
  the per-topology registry snapshot (router kind, state bytes, cache hit
  rates, version),
* ``POST /reload`` — force a spec-file reload (hot reload also runs
  periodically), returns the changed topology names,
* ``GET /healthz`` — liveness.

**Micro-batching.**  Concurrent requests against the same
``(topology, version, op)`` coalesce: the first request arms a
``batch_window_s`` timer, later ones append to the pending bucket, and the
bucket flushes early when it accumulates ``batch_pairs`` pairs.  One flush
concatenates every pending query into single numpy arrays and makes *one*
router call in a worker thread, then splits the results back per request —
so a thousand small concurrent queries cost one vectorised ``next_hops``
dispatch, which is where the >100k queries/sec of ``BENCH_serve.json`` comes
from.  All batching state lives on the event-loop thread (no locks); only
the router call itself runs in the executor, which is why the router
thread-safety contract of :class:`repro.routing.routers.Router` matters.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import ProtocolError, answer_query, decode_query
from repro.serve.registry import RouterEntry, RouterRegistry

__all__ = ["RouteQueryServer"]

_JSON_HEADERS = "Content-Type: application/json\r\n"


class RouteQueryServer:
    """One server process: registry + metrics + micro-batched query loop."""

    def __init__(
        self,
        registry: RouterRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        link=None,
        batch_window_s: float = 0.002,
        batch_pairs: int = 8192,
        max_pairs: int = 65536,
        reload_interval_s: float = 2.0,
        executor_threads: int = 2,
        max_inflight: int | None = None,
        request_timeout_s: float | None = None,
        retry_after_s: float = 0.5,
    ):
        if link is None:
            from repro.simulation.network import LinkModel

            link = LinkModel()
        self.registry = registry
        self.host = host
        self.port = int(port)  # 0 until started; then the bound port
        self.link = link
        self.batch_window_s = float(batch_window_s)
        self.batch_pairs = int(batch_pairs)
        self.max_pairs = int(max_pairs)
        self.reload_interval_s = float(reload_interval_s)
        #: Admission cap on concurrently processed ``/v1/query`` requests.
        #: Beyond it the server sheds with ``429 + Retry-After`` instead of
        #: queueing without bound — accepted requests keep their latency,
        #: and ``/healthz``, ``/stats`` and ``/reload`` stay responsive.
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        #: Per-request deadline: a query slower than this is cancelled and
        #: answered ``503`` so a wedged router call cannot pin a connection
        #: (and its batch slot) forever.  None disables the deadline.
        self.request_timeout_s = (
            None if request_timeout_s is None else float(request_timeout_s)
        )
        self.retry_after_s = float(retry_after_s)
        self.metrics = ServeMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._reload_task: asyncio.Task | None = None
        # Micro-batch buckets, keyed (topology, entry version, op); only the
        # event-loop thread touches them, so no lock is needed.
        self._pending: dict[tuple, list] = {}
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._connections: set[asyncio.Task] = set()
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> int:
        """Bind and start serving; returns the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.reload_interval_s > 0:
            self._reload_task = asyncio.get_running_loop().create_task(
                self._reload_loop()
            )
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self, grace_s: float = 10.0) -> None:
        """Graceful shutdown: stop admitting queries, finish in-flight, stop.

        New ``/v1/query`` requests are answered ``503`` the moment draining
        starts (``/healthz`` turns unhealthy too, so load balancers pull the
        instance); requests already admitted get up to ``grace_s`` seconds
        to finish before :meth:`stop` tears the transport down.  This is
        what the CLI runs on SIGTERM.
        """
        self._draining = True
        if self._inflight and grace_s > 0:
            try:
                await asyncio.wait_for(self._idle.wait(), grace_s)
            except asyncio.TimeoutError:
                pass  # grace spent — stop() cancels the stragglers
        await self.stop()

    async def stop(self) -> None:
        if self._reload_task is not None:
            self._reload_task.cancel()
            self._reload_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit in readline() forever; cancel them
        # so loop teardown never destroys a pending handler task.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=False)

    async def _reload_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reload_interval_s)
            try:
                self.registry.reload()
            except (OSError, ValueError):  # keep serving on a bad spec file
                pass

    # ------------------------------------------------------------ HTTP layer
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:  # pragma: no branch
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                result = await self._dispatch(method, path, body)
                status, reply = result[0], result[1]
                extra = result[2] if len(result) > 2 else {}
                extra_lines = "".join(
                    f"{name}: {value}\r\n" for name, value in extra.items()
                )
                payload = (json.dumps(reply) + "\n").encode()
                writer.write(
                    (
                        f"HTTP/1.1 {status}\r\n"
                        f"{_JSON_HEADERS}"
                        f"{extra_lines}"
                        f"Content-Length: {len(payload)}\r\n"
                        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                        "\r\n"
                    ).encode()
                    + payload
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - racy teardown paths
                pass
            # Deregister last: until then stop() can still cancel/reap us.
            if task is not None:  # pragma: no branch
                self._connections.discard(task)

    @staticmethod
    async def _read_request(reader):
        """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            key, _, value = header.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; ``(status line, reply[, extra headers])``.

        Control-plane routes (``/healthz``, ``/stats``, ``/reload``) bypass
        admission control on purpose: an overloaded server must still
        answer its health checks — shedding keeps the data plane bounded
        precisely so the control plane stays green.
        """
        if path == "/healthz":
            if self._draining:
                return "503 Service Unavailable", {
                    "ok": False,
                    "draining": True,
                    "inflight": self._inflight,
                }
            return "200 OK", {"ok": True, "topologies": self.registry.names()}
        if path == "/stats":
            stats = self.metrics.snapshot()
            stats["ok"] = True
            stats["topologies"] = self.registry.snapshot()
            stats["inflight"] = self._inflight
            stats["max_inflight"] = self.max_inflight
            stats["draining"] = self._draining
            stats["reload"] = {
                "reloads": self.registry.reloads,
                "failed_reloads": self.registry.failed_reloads,
                "last_error": self.registry.last_error,
            }
            return "200 OK", stats
        if path == "/reload":
            if method != "POST":
                return "405 Method Not Allowed", {
                    "ok": False,
                    "error": "use POST /reload",
                }
            try:
                changed = self.registry.reload(force=True, strict=True)
            except (OSError, ValueError) as error:
                return "500 Internal Server Error", {
                    "ok": False,
                    "error": f"reload failed: {error}",
                }
            return "200 OK", {"ok": True, "changed": changed}
        if path == "/v1/query":
            if method != "POST":
                return "405 Method Not Allowed", {
                    "ok": False,
                    "error": "use POST /v1/query",
                }
            return await self._admit_query(body)
        return "404 Not Found", {"ok": False, "error": f"no route {path!r}"}

    async def _admit_query(self, body: bytes):
        """Backpressure wrapper around the query path.

        Sheds with ``429 + Retry-After`` at the in-flight cap (bounded
        queue ⇒ bounded latency for what *is* accepted), refuses with
        ``503`` while draining, and cancels at the per-request deadline.
        """
        retry_header = {"Retry-After": f"{self.retry_after_s:g}"}
        if self._draining:
            return (
                "503 Service Unavailable",
                {"ok": False, "error": "server is draining"},
                retry_header,
            )
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            self.metrics.record_shed()
            return (
                "429 Too Many Requests",
                {
                    "ok": False,
                    "error": "server at capacity",
                    "retry_after_s": self.retry_after_s,
                },
                retry_header,
            )
        self._inflight += 1
        self._idle.clear()
        try:
            if self.request_timeout_s is not None:
                try:
                    return await asyncio.wait_for(
                        self._handle_query(body), self.request_timeout_s
                    )
                except asyncio.TimeoutError:
                    self.metrics.record_deadline()
                    return (
                        "503 Service Unavailable",
                        {
                            "ok": False,
                            "error": "deadline exceeded "
                            f"({self.request_timeout_s:g}s)",
                        },
                        retry_header,
                    )
            return await self._handle_query(body)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # ----------------------------------------------------------- query path
    async def _handle_query(self, body: bytes):
        start = time.perf_counter()
        op = "invalid"
        try:
            try:
                obj = json.loads(body)
            except ValueError as error:
                raise ProtocolError(f"request body is not JSON: {error}")
            query = decode_query(obj, max_pairs=self.max_pairs)
            op = query.op
            try:
                entry = self.registry.get(query.topology)
            except KeyError:
                known = ", ".join(self.registry.names()) or "(none)"
                self.metrics.record(
                    op, queries=0, seconds=time.perf_counter() - start, error=True
                )
                return "404 Not Found", {
                    "ok": False,
                    "error": f"unknown topology {query.topology!r} "
                    f"(serving: {known})",
                }
            n = entry.router.num_vertices()
            for what, array in (
                ("source", query.sources),
                ("target", query.targets),
            ):
                if array.size and (array.min() < 0 or array.max() >= n):
                    raise ProtocolError(
                        f"{what} index out of range for {query.topology!r} "
                        f"(topology has {n} vertices)"
                    )
        except ProtocolError as error:
            self.metrics.record(
                op, queries=0, seconds=time.perf_counter() - start, error=True
            )
            return "400 Bad Request", {"ok": False, "error": str(error)}
        reply = await self._submit(entry, query)
        self.metrics.record(
            op, queries=query.count, seconds=time.perf_counter() - start
        )
        return "200 OK", reply

    async def _submit(self, entry: RouterEntry, query) -> dict:
        """Enqueue a validated query into its micro-batch; await the reply."""
        loop = asyncio.get_running_loop()
        key = (entry.name, entry.version, query.op)
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.setdefault(key, [])
        bucket.append((query, future))
        pending_pairs = sum(q.count for q, _ in bucket)
        if pending_pairs >= self.batch_pairs:
            self._cancel_timer(key)
            loop.create_task(self._flush(key, entry))
        elif len(bucket) == 1:
            self._timers[key] = loop.call_later(
                self.batch_window_s,
                lambda: loop.create_task(self._flush(key, entry)),
            )
        return await future

    def _cancel_timer(self, key) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()

    async def _flush(self, key, entry: RouterEntry) -> None:
        self._cancel_timer(key)
        bucket = self._pending.pop(key, None)
        if not bucket:
            return
        queries = [query for query, _ in bucket]
        loop = asyncio.get_running_loop()
        try:
            replies = await loop.run_in_executor(
                self._executor, self._run_batch, entry, queries
            )
        except Exception as error:  # noqa: BLE001 - fail every waiter
            for _, future in bucket:
                if not future.done():  # pragma: no branch
                    future.set_exception(error)
            return
        self.metrics.record_batch(
            requests=len(bucket), pairs=sum(q.count for q in queries)
        )
        for (_, future), reply in zip(bucket, replies):
            if not future.done():  # pragma: no branch
                future.set_result(reply)

    def _run_batch(self, entry: RouterEntry, queries) -> list[dict]:
        """One coalesced router call for a bucket of same-op queries.

        Runs in a worker thread.  Single-query buckets skip the concat/split
        round-trip; multi-query buckets answer the concatenated arrays once
        and slice the results back per request.  Either way every reply is
        bit-identical to answering each query alone — concatenation changes
        the batching, never the per-pair arithmetic.
        """
        if len(queries) == 1:
            return [
                answer_query(
                    queries[0],
                    entry.router,
                    link=self.link,
                    version=entry.version,
                )
            ]
        from repro.serve.protocol import BatchQuery

        combined = BatchQuery(
            op=queries[0].op,
            topology=queries[0].topology,
            sources=np.concatenate([q.sources for q in queries]),
            targets=np.concatenate([q.targets for q in queries]),
        )
        merged = answer_query(
            combined, entry.router, link=self.link, version=entry.version
        )
        replies = []
        offset = 0
        for query in queries:
            end = offset + query.count
            reply = {
                "ok": True,
                "op": query.op,
                "topology": query.topology,
                "count": query.count,
                "version": entry.version,
            }
            if query.id is not None:
                reply["id"] = query.id
            for field in ("hops", "lengths", "etas", "paths"):
                if field in merged:
                    reply[field] = merged[field][offset:end]
            replies.append(reply)
            offset = end
        return replies
