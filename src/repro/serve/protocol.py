"""The batch route-query wire format and its vectorised answer kernels.

One request is one JSON object (the body of a ``POST /v1/query``)::

    {"op": "next-hop", "topology": "prod", "pairs": [[0, 5], [3, 7], ...]}

``pairs`` may hold thousands of ``(source, target)`` pairs; they are decoded
into numpy arrays once and answered with *one* router call per batch —
``next_hops`` for ``op="next-hop"``, ``path_lengths`` (+ the uncongested ETA
formula) for ``op="eta"``, and a vectorised next-hop walk for ``op="path"``.
``{"sources": [...], "targets": [...]}`` is accepted as an alternative to
``pairs``.

Replies mirror the request::

    {"ok": true, "op": "next-hop", "topology": "prod", "version": 3,
     "count": 2, "hops": [1, 6]}

``op="eta"`` replies carry ``lengths`` (hop counts, ``-1`` unreachable) and
``etas`` (``hops * (latency + transmission_time)``, ``-1.0`` unreachable);
``op="path"`` carries ``paths`` (vertex lists, ``null`` when unreachable).
Failures are ``{"ok": false, "error": "..."}`` with an HTTP 4xx status.

Answers are bit-identical to calling the underlying router directly — the
serve layer adds batching and transport, never arithmetic (the parity tests
in ``tests/test_serve.py`` enforce this for every family and router kind).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.routers import Router

__all__ = [
    "QUERY_OPS",
    "ProtocolError",
    "BatchQuery",
    "decode_query",
    "batch_paths",
    "answer_query",
]

#: Operations a query may request.
QUERY_OPS = ("next-hop", "path", "eta")


class ProtocolError(ValueError):
    """A malformed or unanswerable query (maps to an HTTP 4xx reply)."""


@dataclass
class BatchQuery:
    """One decoded batch query."""

    op: str
    topology: str
    sources: np.ndarray
    targets: np.ndarray
    id: object = None

    @property
    def count(self) -> int:
        return int(self.sources.size)


def _as_index_array(values, what: str) -> np.ndarray:
    try:
        array = np.asarray(values, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as error:
        raise ProtocolError(f"{what} must be an array of integers: {error}")
    if array.ndim != 1:
        raise ProtocolError(f"{what} must be one-dimensional")
    return array


def decode_query(obj: object, *, max_pairs: int | None = None) -> BatchQuery:
    """Validate and decode one JSON query object into numpy arrays."""
    if not isinstance(obj, dict):
        raise ProtocolError("query must be a JSON object")
    op = obj.get("op")
    if op not in QUERY_OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {QUERY_OPS})")
    topology = obj.get("topology")
    if not isinstance(topology, str) or not topology:
        raise ProtocolError('query needs a "topology" name')
    if "pairs" in obj:
        try:
            pairs = np.asarray(obj["pairs"], dtype=np.int64)
        except (TypeError, ValueError, OverflowError) as error:
            raise ProtocolError(f"pairs must be [[source, target], ...]: {error}")
        if pairs.size == 0:
            sources = targets = np.zeros(0, dtype=np.int64)
        elif pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ProtocolError("pairs must be [[source, target], ...]")
        else:
            sources, targets = pairs[:, 0].copy(), pairs[:, 1].copy()
    elif "sources" in obj and "targets" in obj:
        sources = _as_index_array(obj["sources"], "sources")
        targets = _as_index_array(obj["targets"], "targets")
        if sources.size != targets.size:
            raise ProtocolError("sources and targets must have equal length")
    else:
        raise ProtocolError('query needs "pairs" or "sources"+"targets"')
    if max_pairs is not None and sources.size > max_pairs:
        raise ProtocolError(
            f"batch of {sources.size} pairs exceeds the per-request limit "
            f"of {max_pairs}"
        )
    return BatchQuery(
        op=op,
        topology=topology,
        sources=sources,
        targets=targets,
        id=obj.get("id"),
    )


def batch_paths(
    router: Router, sources: np.ndarray, targets: np.ndarray
) -> list[list[int] | None]:
    """Full routed paths for a batch, one vectorised router call per hop.

    Walks :meth:`Router.next_hops` level-synchronously over the still-active
    pairs, so a batch of ``k`` paths of diameter ``D`` costs ``D`` router
    calls, not ``sum(len(path))`` scalar lookups.  Unreachable pairs yield
    ``None`` (matching :meth:`Router.full_path`).
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    paths: list[list[int] | None] = [[int(s)] for s in sources.tolist()]
    current = sources.copy()
    active = np.flatnonzero(current != targets)
    limit = router.num_vertices()
    steps = 0
    while active.size:
        if steps >= limit:  # pragma: no cover - defensive (cyclic router)
            raise RuntimeError("routing walk exceeded the vertex count")
        nxt = router.next_hops(current[active], targets[active])
        for position, index in enumerate(active.tolist()):
            hop = int(nxt[position])
            if hop < 0:
                paths[index] = None
            else:
                paths[index].append(hop)
        reachable = nxt >= 0
        current[active] = np.where(reachable, nxt, targets[active])
        active = active[current[active] != targets[active]]
        steps += 1
    return paths


def answer_query(
    query: BatchQuery, router: Router, *, link=None, version: int | None = None
) -> dict:
    """Answer one decoded query against a router; returns the reply object.

    This is the single compute kernel the server's micro-batcher executes
    (in a worker thread); everything in it is a router call plus array
    serialisation.
    """
    n = router.num_vertices()
    for what, array in (("source", query.sources), ("target", query.targets)):
        if array.size and (array.min() < 0 or array.max() >= n):
            raise ProtocolError(
                f"{what} index out of range for {query.topology!r} "
                f"(topology has {n} vertices)"
            )
    reply: dict = {
        "ok": True,
        "op": query.op,
        "topology": query.topology,
        "count": query.count,
    }
    if version is not None:
        reply["version"] = version
    if query.id is not None:
        reply["id"] = query.id
    if query.op == "next-hop":
        reply["hops"] = router.next_hops(query.sources, query.targets).tolist()
    elif query.op == "eta":
        lengths = router.path_lengths(query.sources, query.targets)
        if link is None:
            from repro.simulation.network import LinkModel

            link = LinkModel()
        per_hop = float(link.latency + link.transmission_time)
        etas = np.where(lengths < 0, -1.0, lengths.astype(np.float64) * per_hop)
        reply["lengths"] = lengths.tolist()
        reply["etas"] = etas.tolist()
    else:  # "path"
        reply["paths"] = batch_paths(router, query.sources, query.targets)
    return reply
