"""The ``cnative`` backend: the kernels as C, compiled on demand.

This is a line-for-line translation of :mod:`repro.kernels._pyimpl` (same
functions, same argument order, same loop structure — the two files are
meant to be read side by side).  The C source is embedded below, compiled
once per source digest with the system C compiler into a shared library
under the kernel cache directory (``$REPRO_KERNELS_CACHE`` or
``~/.cache/repro-kernels``), and loaded via :mod:`ctypes`.  Builds are
atomic (tmp + :func:`os.replace`) and keyed by the sha256 of the source, so
concurrent processes race benignly and a source change can never pick up a
stale binary.

The only structural difference from the python source: C punned the float
bits with ``memcpy`` instead of the numpy view pair, and the round driver
(:func:`make_round_driver` below) pre-computes every ``ctypes`` pointer
once per run — the arrays live for the whole ``run_many`` call, and taking
``arr.ctypes.data_as(...)`` per round costs more than the kernels
themselves on small rounds.

Anything going wrong — no compiler, sandboxed filesystem, a cross-compile
toolchain that produces unloadable objects — raises
:class:`NativeBuildError`, which the dispatch layer in
:mod:`repro.kernels` treats as "backend unavailable" (falling back to
numpy); it is never fatal.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from types import SimpleNamespace

__all__ = ["NativeBuildError", "build_native_kernels", "library_path"]


class NativeBuildError(RuntimeError):
    """The C backend could not be built or loaded on this machine."""


C_SOURCE = r"""
/* repro.kernels native backend — translated from _pyimpl.py (keep in sync).
 *
 * All arrays are C-contiguous; int64/uint64/double/uint8 match the numpy
 * dtypes the wrappers enforce.  The event queue replicates
 * repro.simulation.events.BatchEventQueue structurally: a min-heap of
 * DISTINCT times, per-time FIFO buckets as intrusive linked lists over the
 * event slots, and an open-addressing time->bucket hash with tombstones
 * (state -1 = empty, -2 = dead).  Distinct heap times make time-only
 * ordering reproduce the (time, insertion-sequence) contract.
 */
#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

/* ------------------------------------------------------------------ apsp */

EXPORT int64_t ecc_sweep(
    const int64_t *succ, uint64_t *reach, uint64_t *scratch,
    const uint64_t *full_row, int64_t *ecc, uint8_t *done,
    int64_t n, int64_t d, int64_t w, int64_t upper_bound)
{
    int64_t num_done = 0;
    for (int64_t u = 0; u < n; u++) {
        int complete = 1;
        for (int64_t i = 0; i < w; i++) {
            if (reach[u * w + i] != full_row[i]) { complete = 0; break; }
        }
        if (complete) { done[u] = 1; ecc[u] = 0; num_done++; }
    }
    uint64_t *cur = reach;
    uint64_t *nxt = scratch;
    int64_t level = 0;
    while (num_done < n) {
        if (upper_bound >= 0 && level >= upper_bound) return 1;
        level++;
        if (d == 0) break;  /* no out-arcs anywhere: converged */
        int changed = 0;
        for (int64_t u = 0; u < n; u++) {
            const int64_t *row = succ + u * d;
            uint64_t *out = nxt + u * w;
            const uint64_t *s0 = cur + row[0] * w;
            for (int64_t i = 0; i < w; i++) out[i] = s0[i];
            for (int64_t j = 1; j < d; j++) {
                const uint64_t *sj = cur + row[j] * w;
                for (int64_t i = 0; i < w; i++) out[i] |= sj[i];
            }
            const uint64_t *self = cur + u * w;
            for (int64_t i = 0; i < w; i++) out[i] |= self[i];
            if (!changed) {
                for (int64_t i = 0; i < w; i++) {
                    if (out[i] != self[i]) { changed = 1; break; }
                }
            }
        }
        if (!changed) break;  /* converged: the rest can never complete */
        uint64_t *tmp = cur; cur = nxt; nxt = tmp;
        for (int64_t u = 0; u < n; u++) {
            if (done[u]) continue;
            int complete = 1;
            for (int64_t i = 0; i < w; i++) {
                if (cur[u * w + i] != full_row[i]) { complete = 0; break; }
            }
            if (complete) { done[u] = 1; ecc[u] = level; num_done++; }
        }
    }
    return 0;
}

EXPORT void subset_rows_sweep(
    const int64_t *pred, uint64_t *state, uint64_t *scratch,
    int64_t *rows, int64_t n, int64_t d, int64_t w)
{
    if (d == 0) return;
    uint64_t *cur = state;
    uint64_t *nxt = scratch;
    int64_t level = 0;
    for (;;) {
        level++;
        int changed = 0;
        for (int64_t v = 0; v < n; v++) {
            const int64_t *row = pred + v * d;
            uint64_t *out = nxt + v * w;
            const uint64_t *p0 = cur + row[0] * w;
            for (int64_t i = 0; i < w; i++) out[i] = p0[i];
            for (int64_t j = 1; j < d; j++) {
                const uint64_t *pj = cur + row[j] * w;
                for (int64_t i = 0; i < w; i++) out[i] |= pj[i];
            }
            const uint64_t *self = cur + v * w;
            for (int64_t i = 0; i < w; i++) out[i] |= self[i];
            if (!changed) {
                for (int64_t i = 0; i < w; i++) {
                    if (out[i] != self[i]) { changed = 1; break; }
                }
            }
        }
        if (!changed) return;
        for (int64_t v = 0; v < n; v++) {
            for (int64_t i = 0; i < w; i++) {
                uint64_t x = nxt[v * w + i] & ~cur[v * w + i];
                while (x) {
                    int64_t b = __builtin_ctzll(x);
                    rows[(i * 64 + b) * n + v] = level;
                    x &= x - 1;
                }
            }
        }
        uint64_t *tmp = cur; cur = nxt; nxt = tmp;
    }
}

EXPORT int64_t subset_ecc_sweep(
    const int64_t *pred, uint64_t *state, uint64_t *scratch,
    const uint64_t *full, uint64_t *done, int64_t *ecc,
    int64_t n, int64_t d, int64_t w, int64_t k, int64_t upper_bound)
{
    int64_t num_done = 0;
    for (int64_t i = 0; i < w; i++) {
        uint64_t c = state[i];
        for (int64_t v = 1; v < n; v++) c &= state[v * w + i];
        c &= full[i];
        done[i] = c;
        while (c) {
            int64_t b = __builtin_ctzll(c);
            ecc[i * 64 + b] = 0;
            num_done++;
            c &= c - 1;
        }
    }
    uint64_t *cur = state;
    uint64_t *nxt = scratch;
    int64_t level = 0;
    while (num_done < k) {
        if (upper_bound >= 0 && level >= upper_bound) return 1;
        level++;
        if (d == 0) break;
        int changed = 0;
        for (int64_t v = 0; v < n; v++) {
            const int64_t *row = pred + v * d;
            uint64_t *out = nxt + v * w;
            const uint64_t *p0 = cur + row[0] * w;
            for (int64_t i = 0; i < w; i++) out[i] = p0[i];
            for (int64_t j = 1; j < d; j++) {
                const uint64_t *pj = cur + row[j] * w;
                for (int64_t i = 0; i < w; i++) out[i] |= pj[i];
            }
            const uint64_t *self = cur + v * w;
            for (int64_t i = 0; i < w; i++) out[i] |= self[i];
            if (!changed) {
                for (int64_t i = 0; i < w; i++) {
                    if (out[i] != self[i]) { changed = 1; break; }
                }
            }
        }
        if (!changed) break;  /* converged: the rest can never cover */
        uint64_t *tmp = cur; cur = nxt; nxt = tmp;
        for (int64_t i = 0; i < w; i++) {
            uint64_t c = cur[i];
            for (int64_t v = 1; v < n; v++) c &= cur[v * w + i];
            uint64_t newly = (c & full[i]) & ~done[i];
            done[i] |= c & full[i];
            while (newly) {
                int64_t b = __builtin_ctzll(newly);
                ecc[i * 64 + b] = level;
                num_done++;
                newly &= newly - 1;
            }
        }
    }
    return 0;
}

/* ------------------------------------------------------------- simulator */

/* The queue arrays travel together; same order as _pyimpl's QUEUE tuple
 * (sans the python-only fbits/ubits punning pair). */
#define QUEUE_PARAMS \
    double *heap_time, int64_t *heap_bid, \
    int64_t *bucket_head, int64_t *bucket_tail, int64_t *next_slot, \
    int64_t *free_bids, double *hash_time, int64_t *hash_state, \
    int64_t *qstate, int64_t H
#define QUEUE_ARGS \
    heap_time, heap_bid, bucket_head, bucket_tail, next_slot, \
    free_bids, hash_time, hash_state, qstate, H

static inline uint64_t hash_bits(double t)
{
    if (t == 0.0) t = 0.0;  /* +0.0 and -0.0 share a bucket, like dict keys */
    uint64_t b;
    __builtin_memcpy(&b, &t, 8);
    b ^= b >> 33; b ^= b << 25; b ^= b >> 13; b ^= b << 41; b ^= b >> 29;
    return b;
}

/* Find t's bucket id (idx_out = its table index), or -1 (idx_out = where
 * to insert: the first tombstone probed, else the empty slot). */
static int64_t hash_locate(
    const double *hash_time, const int64_t *hash_state, int64_t H,
    double t, int64_t *idx_out)
{
    uint64_t mask = (uint64_t)(H - 1);
    uint64_t idx = hash_bits(t) & mask;
    int64_t first_free = -1;
    for (;;) {
        int64_t s = hash_state[idx];
        if (s == -1) {
            *idx_out = first_free >= 0 ? first_free : (int64_t)idx;
            return -1;
        }
        if (s == -2) {
            if (first_free < 0) first_free = (int64_t)idx;
        } else if (hash_time[idx] == t) {
            *idx_out = (int64_t)idx;
            return s;
        }
        idx = (idx + 1) & mask;
    }
}

/* Enqueue slot at time t: append to the existing bucket (FIFO), or claim
 * a bucket id off the free list and push the new distinct time onto the
 * heap.  qstate = [heap size, free-list top, used hash slots]. */
static void queue_push(QUEUE_PARAMS, double t, int64_t slot)
{
    next_slot[slot] = -1;
    int64_t ins;
    int64_t bid = hash_locate(hash_time, hash_state, H, t, &ins);
    if (bid >= 0) {
        next_slot[bucket_tail[bid]] = slot;
        bucket_tail[bid] = slot;
        return;
    }
    qstate[1]--;
    bid = free_bids[qstate[1]];
    bucket_head[bid] = slot;
    bucket_tail[bid] = slot;
    if (hash_state[ins] == -1) qstate[2]++;  /* consuming a never-used slot */
    hash_time[ins] = t;
    hash_state[ins] = bid;
    int64_t i = qstate[0]++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (t < heap_time[p]) {
            heap_time[i] = heap_time[p];
            heap_bid[i] = heap_bid[p];
            i = p;
        } else break;
    }
    heap_time[i] = t;
    heap_bid[i] = bid;
    if (2 * qstate[2] > H) {
        /* rebuild from the live heap entries, dropping all tombstones */
        for (int64_t x = 0; x < H; x++) hash_state[x] = -1;
        uint64_t mask = (uint64_t)(H - 1);
        for (int64_t e = 0; e < qstate[0]; e++) {
            double te = heap_time[e];
            uint64_t idx = hash_bits(te) & mask;
            while (hash_state[idx] != -1) idx = (idx + 1) & mask;
            hash_time[idx] = te;
            hash_state[idx] = heap_bid[e];
        }
        qstate[2] = qstate[0];
    }
}

EXPORT void queue_schedule(
    QUEUE_PARAMS, const int64_t *slots, const double *times, int64_t count)
{
    for (int64_t c = 0; c < count; c++)
        queue_push(QUEUE_ARGS, times[c], slots[c]);
}

EXPORT void pop_round(
    QUEUE_PARAMS, int64_t limit, const int64_t *loc, const int64_t *dst,
    int64_t *slots_out, int64_t *tails_out, int64_t *dests_out, int64_t *meta)
{
    double t = heap_time[0];
    int64_t bid = heap_bid[0];
    int64_t count = 0;
    int64_t nfwd = 0;
    int64_t cur = bucket_head[bid];
    while (cur >= 0 && count < limit) {
        slots_out[count++] = cur;
        int64_t node = loc[cur];
        if (node != dst[cur]) {
            tails_out[nfwd] = node;
            dests_out[nfwd] = dst[cur];
            nfwd++;
        }
        cur = next_slot[cur];
    }
    if (cur >= 0) {
        bucket_head[bid] = cur;  /* limit hit: leftovers stay queued at t */
    } else {
        /* bucket drained: retire it and pop the time off the heap */
        free_bids[qstate[1]] = bid;
        qstate[1]++;
        int64_t idx;
        hash_locate(hash_time, hash_state, H, t, &idx);
        hash_state[idx] = -2;  /* tombstone */
        int64_t size = qstate[0] - 1;
        qstate[0] = size;
        double mt = heap_time[size];
        int64_t mb = heap_bid[size];
        int64_t i = 0;
        for (;;) {
            int64_t c = 2 * i + 1;
            if (c >= size) break;
            if (c + 1 < size && heap_time[c + 1] < heap_time[c]) c = c + 1;
            if (heap_time[c] < mt) {
                heap_time[i] = heap_time[c];
                heap_bid[i] = heap_bid[c];
                i = c;
            } else break;
        }
        if (size > 0) { heap_time[i] = mt; heap_bid[i] = mb; }
    }
    meta[0] = count;
    meta[1] = nfwd;
}

EXPORT void finish_round(
    double t, double T, double L, int64_t count,
    const int64_t *slots, const int64_t *nxt,
    int64_t *loc, const int64_t *dst, int64_t *hops, double *arrival,
    int64_t *prev_link, const int64_t *rep, double *last_time,
    double *busy_until, int64_t *queue_len, int64_t *max_queue,
    int64_t *tx_count,
    const int64_t *group_keys, const int64_t *group_ptr,
    const int64_t *flat_links, const int64_t *vertex_groups,
    int64_t n, int64_t m,
    QUEUE_PARAMS,
    int64_t *out_links, double *out_starts, int64_t *out_movers, int64_t *meta)
{
    int64_t j = 0;
    int64_t nm = 0;
    for (int64_t k2 = 0; k2 < count; k2++) {
        int64_t i = slots[k2];
        int64_t r = rep[i];
        last_time[r] = t;
        int64_t il = prev_link[i];
        if (il >= 0) {
            hops[i]++;
            queue_len[il]--;
        }
        int64_t node = loc[i];
        if (node == dst[i]) {
            arrival[i] = t;
            continue;
        }
        int64_t nx = nxt[j++];
        if (nx < 0) continue;  /* unreachable: drop */
        /* the vertex's groups are contiguous in the sorted key array and
           number at most the out-degree: linear-probe that tiny range */
        int64_t key = node * n + nx;
        int64_t g = -1;
        for (int64_t q2 = vertex_groups[node]; q2 < vertex_groups[node + 1]; q2++) {
            if (group_keys[q2] == key) { g = q2; break; }
        }
        if (g < 0) continue;
        int64_t base = r * m;
        int64_t p0 = group_ptr[g], p1 = group_ptr[g + 1];
        int64_t best = base + flat_links[p0];
        double bb = busy_until[best];
        for (int64_t p = p0 + 1; p < p1; p++) {
            int64_t cand = base + flat_links[p];
            double cb = busy_until[cand];
            if (cb < bb) { best = cand; bb = cb; }
        }
        double start = t > bb ? t : bb;
        double finish = start + T;
        busy_until[best] = finish;
        int64_t depth = queue_len[best] + 1;
        queue_len[best] = depth;
        if (depth > max_queue[r]) max_queue[r] = depth;
        tx_count[r]++;
        prev_link[i] = best;
        loc[i] = nx;
        queue_push(QUEUE_ARGS, finish + L, i);
        out_links[nm] = best;
        out_starts[nm] = start;
        out_movers[nm] = i;
        nm++;
    }
    meta[0] = nm;
}
"""

SOURCE_DIGEST = hashlib.sha256(C_SOURCE.encode()).hexdigest()

_BUILD_LOCK = threading.Lock()
_LIB_CACHE: dict[str, SimpleNamespace] = {}

_i64 = ctypes.POINTER(ctypes.c_int64)
_u64 = ctypes.POINTER(ctypes.c_uint64)
_u8 = ctypes.POINTER(ctypes.c_uint8)
_f64 = ctypes.POINTER(ctypes.c_double)
_I = ctypes.c_int64
_D = ctypes.c_double

# The C-side expansion of QUEUE_PARAMS.
_QSIG = [_f64, _i64, _i64, _i64, _i64, _i64, _f64, _i64, _i64, _I]

_SIGNATURES = {
    "ecc_sweep": (_I, [_i64, _u64, _u64, _u64, _i64, _u8, _I, _I, _I, _I]),
    "subset_rows_sweep": (None, [_i64, _u64, _u64, _i64, _I, _I, _I]),
    "subset_ecc_sweep": (
        _I,
        [_i64, _u64, _u64, _u64, _u64, _i64, _I, _I, _I, _I, _I],
    ),
    "queue_schedule": (None, _QSIG + [_i64, _f64, _I]),
    "pop_round": (None, _QSIG + [_I, _i64, _i64, _i64, _i64, _i64, _i64]),
    "finish_round": (
        None,
        # fmt: off
        [_D, _D, _D, _I,                      # t, T, L, count
         _i64, _i64,                          # slots, nxt
         _i64, _i64, _i64, _f64,              # loc, dst, hops, arrival
         _i64, _i64, _f64,                    # prev_link, rep, last_time
         _f64, _i64, _i64, _i64,              # busy_until, queue_len, max_queue, tx_count
         _i64, _i64, _i64, _i64,              # group_keys, group_ptr, flat_links, vertex_groups
         _I, _I]                              # n, m
        + _QSIG
        + [_i64, _f64, _i64, _i64],           # out_links, out_starts, out_movers, meta
        # fmt: on
    ),
}


def cache_dir() -> Path:
    """The directory compiled kernel libraries live in."""
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def library_path() -> Path:
    """Where the shared library for the current source digest belongs."""
    suffix = ".dll" if os.name == "nt" else ".so"
    return cache_dir() / f"repro_kernels_{SOURCE_DIGEST[:16]}{suffix}"


def _find_compiler() -> str:
    override = os.environ.get("REPRO_CC")
    if override:
        return override
    for cc in ("cc", "gcc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    raise NativeBuildError("no C compiler found (cc/gcc/clang; set REPRO_CC)")


def _compile() -> Path:
    lib = library_path()
    if lib.exists():
        return lib
    cc = _find_compiler()
    directory = lib.parent
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise NativeBuildError(f"cannot create kernel cache {directory}: {exc}")
    src = directory / f"repro_kernels_{SOURCE_DIGEST[:16]}.c"
    fd, tmp = tempfile.mkstemp(suffix=lib.suffix, dir=directory)
    os.close(fd)
    try:
        src.write_text(C_SOURCE)
        cmd = [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(src)]
        if sys.platform == "darwin":
            cmd.insert(1, "-dynamiclib")
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"kernel compile failed ({' '.join(cmd)}):\n{proc.stderr}"
            )
        os.replace(tmp, lib)  # atomic: concurrent builders race benignly
    except NativeBuildError:
        raise
    except Exception as exc:
        raise NativeBuildError(f"kernel compile failed: {exc}")
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return lib


def _load(lib_path: Path) -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError as exc:
        raise NativeBuildError(f"cannot load kernel library {lib_path}: {exc}")
    for name, (restype, argtypes) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = argtypes
    return lib


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


def _queue_ptrs(queue):
    """The QUEUE_ARGS tuple for a python-side queue-array tuple.

    The trailing ``fbits``/``ubits`` punning pair is python-only (C puns
    with ``memcpy``) and is dropped here.
    """
    (heap_time, heap_bid, bucket_head, bucket_tail, next_slot,
     free_bids, hash_time, hash_state, qstate, _fbits, _ubits) = queue
    return (
        _ptr(heap_time, _f64), _ptr(heap_bid, _i64),
        _ptr(bucket_head, _i64), _ptr(bucket_tail, _i64),
        _ptr(next_slot, _i64), _ptr(free_bids, _i64),
        _ptr(hash_time, _f64), _ptr(hash_state, _i64),
        _ptr(qstate, _i64), hash_state.shape[0],
    )


def build_native_kernels() -> SimpleNamespace:
    """Compile (or reuse) the shared library and return wrapped kernels.

    The wrappers take the exact argument lists of the `_pyimpl` kernels
    (arrays plus python-int scalars) and derive the C-side shape arguments
    from the array shapes; arrays must be C-contiguous with the documented
    dtypes — the integration layer allocates them that way.

    Raises :class:`NativeBuildError` when the backend is unavailable.
    """
    with _BUILD_LOCK:
        cached = _LIB_CACHE.get(SOURCE_DIGEST)
        if cached is not None:
            return cached
        lib = _load(_compile())

        def ecc_sweep(succ, reach, scratch, full_row, ecc, done, upper_bound):
            n, d = succ.shape
            w = reach.shape[1]
            return int(
                lib.ecc_sweep(
                    _ptr(succ, _i64), _ptr(reach, _u64), _ptr(scratch, _u64),
                    _ptr(full_row, _u64), _ptr(ecc, _i64), _ptr(done, _u8),
                    n, d, w, upper_bound,
                )
            )

        def subset_rows_sweep(pred, state, scratch, rows):
            n, d = pred.shape
            w = state.shape[1]
            lib.subset_rows_sweep(
                _ptr(pred, _i64), _ptr(state, _u64), _ptr(scratch, _u64),
                _ptr(rows, _i64), n, d, w,
            )

        def subset_ecc_sweep(pred, state, scratch, full, done, ecc, upper_bound):
            n, d = pred.shape
            w = state.shape[1]
            k = ecc.shape[0]
            return int(
                lib.subset_ecc_sweep(
                    _ptr(pred, _i64), _ptr(state, _u64), _ptr(scratch, _u64),
                    _ptr(full, _u64), _ptr(done, _u64), _ptr(ecc, _i64),
                    n, d, w, k, upper_bound,
                )
            )

        # --- raw queue kernels: same python arg lists as _pyimpl (used by
        # --- the differential tests; the engines go through the driver)

        def queue_schedule(*args):
            queue, slots, times = args[:11], args[11], args[12]
            lib.queue_schedule(
                *_queue_ptrs(queue),
                _ptr(slots, _i64), _ptr(times, _f64), slots.shape[0],
            )

        def pop_round(*args):
            queue = args[:11]
            limit, loc, dst, slots_out, tails_out, dests_out, meta = args[11:]
            lib.pop_round(
                *_queue_ptrs(queue), limit,
                _ptr(loc, _i64), _ptr(dst, _i64),
                _ptr(slots_out, _i64), _ptr(tails_out, _i64),
                _ptr(dests_out, _i64), _ptr(meta, _i64),
            )

        def finish_round(*args):
            (t, T, L, count, slots, nxt, loc, dst, hops, arrival,
             prev_link, rep, last_time, busy_until, queue_len, max_queue,
             tx_count, group_keys, group_ptr, flat_links, vertex_groups,
             n, m) = args[:23]
            queue = args[23:34]
            out_links, out_starts, out_movers, meta = args[34:]
            lib.finish_round(
                t, T, L, count,
                _ptr(slots, _i64), _ptr(nxt, _i64),
                _ptr(loc, _i64), _ptr(dst, _i64), _ptr(hops, _i64),
                _ptr(arrival, _f64),
                _ptr(prev_link, _i64), _ptr(rep, _i64), _ptr(last_time, _f64),
                _ptr(busy_until, _f64), _ptr(queue_len, _i64),
                _ptr(max_queue, _i64), _ptr(tx_count, _i64),
                _ptr(group_keys, _i64), _ptr(group_ptr, _i64),
                _ptr(flat_links, _i64), _ptr(vertex_groups, _i64),
                n, m,
                *_queue_ptrs(queue),
                _ptr(out_links, _i64), _ptr(out_starts, _f64),
                _ptr(out_movers, _i64), _ptr(meta, _i64),
            )

        class RoundDriver:
            """Pre-bound per-run driver (see _pyimpl.RoundDriver).

            Every stable array's ctypes pointer is computed once here;
            per-round calls only convert a handful of scalars plus the
            fresh ``nxt`` array.
            """

            __slots__ = ("_q", "_pop_tail", "_fin_mid", "_slots_p", "_T", "_L")

            def __init__(self, queue, msg, links, topo, bufs, T, L):
                self._q = _queue_ptrs(queue)
                loc, dst, hops, arrival, prev_link, rep = msg
                busy_until, queue_len, max_queue, tx_count, last_time = links
                group_keys, group_ptr, flat_links, vertex_groups, n, m = topo
                (slots_buf, tails_buf, dests_buf,
                 out_links, out_starts, out_movers, meta) = bufs
                loc_p = _ptr(loc, _i64)
                dst_p = _ptr(dst, _i64)
                meta_p = _ptr(meta, _i64)
                self._slots_p = _ptr(slots_buf, _i64)
                self._pop_tail = (
                    loc_p, dst_p, self._slots_p,
                    _ptr(tails_buf, _i64), _ptr(dests_buf, _i64), meta_p,
                )
                self._fin_mid = (
                    loc_p, dst_p, _ptr(hops, _i64), _ptr(arrival, _f64),
                    _ptr(prev_link, _i64), _ptr(rep, _i64),
                    _ptr(last_time, _f64),
                    _ptr(busy_until, _f64), _ptr(queue_len, _i64),
                    _ptr(max_queue, _i64), _ptr(tx_count, _i64),
                    _ptr(group_keys, _i64), _ptr(group_ptr, _i64),
                    _ptr(flat_links, _i64), _ptr(vertex_groups, _i64),
                    n, m,
                ) + self._q + (
                    _ptr(out_links, _i64), _ptr(out_starts, _f64),
                    _ptr(out_movers, _i64), meta_p,
                )
                self._T = T
                self._L = L

            def schedule(self, slots, times):
                lib.queue_schedule(
                    *self._q, _ptr(slots, _i64), _ptr(times, _f64),
                    slots.shape[0],
                )

            def pop(self, limit):
                lib.pop_round(*self._q, limit, *self._pop_tail)

            def finish(self, t, count, nxt):
                lib.finish_round(
                    t, self._T, self._L, count,
                    self._slots_p, _ptr(nxt, _i64), *self._fin_mid,
                )

        def make_round_driver(queue, msg, links, topo, bufs, T, L):
            return RoundDriver(queue, msg, links, topo, bufs, T, L)

        kernels = SimpleNamespace(
            ecc_sweep=ecc_sweep,
            subset_rows_sweep=subset_rows_sweep,
            subset_ecc_sweep=subset_ecc_sweep,
            make_round_driver=make_round_driver,
            # exposed for the differential tests (not used by the engines)
            queue_schedule=queue_schedule,
            pop_round=pop_round,
            finish_round=finish_round,
        )
        _LIB_CACHE[SOURCE_DIGEST] = kernels
        return kernels
