"""Compiled kernel backends for the two engine hot loops.

The uint64 bit-sweep behind :mod:`repro.graphs.apsp` and the
same-timestamp round resolution behind
:class:`repro.simulation.network.BatchedNetworkSimulator` each have a
compiled implementation here, selected at run time:

``numba``
    :func:`numba.njit` over the shared jittable source
    (:mod:`repro.kernels._pyimpl`).  Used when numba is importable.
``cnative``
    The same loops as C, compiled once with the system C compiler and
    loaded via ctypes (:mod:`repro.kernels.native`).  Used when numba is
    absent but a working compiler is available.
``numpy``
    No kernels at all — the engines run their original vectorised numpy
    paths.  Always available; this is the reference the differential tests
    compare every backend against, and results are **bit-identical** across
    all three by contract (see ``tests/test_kernel_parity.py`` and
    ``docs/kernels.md``).

Selection: the ``REPRO_KERNELS`` environment variable (``auto`` — the
default — or an explicit backend name) decides the process-wide default;
``batched_eccentricities(..., backend=...)`` /
``BatchedNetworkSimulator(..., kernels=...)`` override per call site.
Requesting an unavailable backend explicitly warns and falls back to
numpy; ``auto`` silently picks the best available
(``numba`` > ``cnative`` > ``numpy``).

The active backend is part of result identity: it joins
``code_version()`` / ``sim_code_version()`` (see ``repro.otis.sweep`` and
``repro.simulation.sharding``), so on-disk caches and chunk stores can
never silently mix backends even though the results are bit-identical —
an intentionally conservative contract.
"""

from __future__ import annotations

import os
import warnings

__all__ = [
    "KERNEL_BACKENDS",
    "ENV_VAR",
    "available_backends",
    "resolve_backend",
    "active_backend",
    "get_kernels",
    "warmup",
    "diagnostics",
]

#: All backend names, in ``auto`` preference order.
KERNEL_BACKENDS = ("numba", "cnative", "numpy")

#: The environment override: ``auto`` or one of :data:`KERNEL_BACKENDS`.
ENV_VAR = "REPRO_KERNELS"

_probe_cache: dict[str, bool] = {}


def _probe(backend: str) -> bool:
    """Is ``backend`` usable in this process?  (Cached; may compile.)"""
    if backend == "numpy":
        return True
    cached = _probe_cache.get(backend)
    if cached is not None:
        return cached
    ok = False
    if backend == "numba":
        try:
            from repro.kernels.numba_backend import build_numba_kernels  # noqa: F401

            ok = True
        except ImportError:
            ok = False
    elif backend == "cnative":
        try:
            from repro.kernels.native import NativeBuildError, build_native_kernels

            try:
                build_native_kernels()
                ok = True
            except NativeBuildError:
                ok = False
        except ImportError:  # pragma: no cover - ctypes is stdlib
            ok = False
    _probe_cache[backend] = ok
    return ok


def _reset_probe_cache() -> None:
    """Forget probe results (test hook — lets tests simulate absent backends)."""
    _probe_cache.clear()


def available_backends() -> tuple[str, ...]:
    """The backends usable in this process, in preference order."""
    return tuple(b for b in KERNEL_BACKENDS if _probe(b))


def resolve_backend(request: str | None = None) -> str:
    """Resolve a backend request to an available backend name.

    ``request=None`` reads :data:`ENV_VAR` (default ``auto``).  ``auto``
    picks the first available backend in :data:`KERNEL_BACKENDS` order.  An
    explicit, unavailable backend warns (``RuntimeWarning``) and resolves
    to ``numpy`` — never an error, so a pinned configuration still runs
    anywhere.  An unknown name raises ``ValueError`` (that is a typo, not
    an environment problem).
    """
    if request is None:
        request = os.environ.get(ENV_VAR, "auto") or "auto"
    request = request.strip().lower()
    if request == "auto":
        for backend in KERNEL_BACKENDS:
            if _probe(backend):
                return backend
        return "numpy"  # unreachable (numpy always probes True); explicit anyway
    if request not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {request!r}; expected 'auto' or one of "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    if not _probe(request):
        warnings.warn(
            f"kernel backend {request!r} is unavailable in this environment; "
            f"falling back to 'numpy'",
            RuntimeWarning,
            stacklevel=2,
        )
        return "numpy"
    return request


def active_backend() -> str:
    """The backend the current environment resolves to (no override)."""
    return resolve_backend(None)


def get_kernels(backend: str | None = None):
    """The kernel namespace for ``backend`` (resolved), or None for numpy.

    Returns an object with the six kernel functions (see
    ``repro.kernels._pyimpl.KERNEL_NAMES``) for the compiled backends, and
    ``None`` for ``numpy`` — callers treat ``None`` as "run the original
    vectorised path".
    """
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return None
    if resolved == "numba":
        from repro.kernels.numba_backend import build_numba_kernels

        return build_numba_kernels()
    from repro.kernels.native import build_native_kernels

    return build_native_kernels()


def warmup(backend: str | None = None) -> str:
    """Force-compile every kernel of the resolved backend; returns its name.

    One tiny end-to-end call per engine seam: a 2-vertex eccentricity
    sweep, a 1-source subset sweep, and a 2-message simulation.  After this
    returns, no JIT or C compile cost can land inside a benchmark key or a
    first request.  A no-op (beyond resolution) for ``numpy``.
    """
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return resolved
    from repro.graphs.apsp import batched_eccentricities, subset_distance_rows
    from repro.graphs.digraph import Digraph
    from repro.simulation.network import BatchedNetworkSimulator

    graph = Digraph(2, [(0, 1), (1, 0)])
    batched_eccentricities(graph, backend=resolved)
    batched_eccentricities(graph, 1, sources=[0], backend=resolved)
    subset_distance_rows(graph, [0], backend=resolved)
    sim = BatchedNetworkSimulator(graph, kernels=resolved)
    sim.run_many([[(0, 1, 0.0), (1, 0, 0.0)]], return_messages=False)
    return resolved


def diagnostics() -> str:
    """One line per backend for ``repro --version``-style output."""
    requested = os.environ.get(ENV_VAR, "auto") or "auto"
    active = active_backend()
    lines = [f"kernels: {active} ({ENV_VAR}={requested})"]
    for backend in KERNEL_BACKENDS:
        status = "available" if _probe(backend) else "unavailable"
        note = ""
        if backend == "numba":
            try:
                import numba

                note = f" (numba {numba.__version__})"
            except ImportError:
                note = " (numba not installed)"
        elif backend == "cnative":
            from repro.kernels import native

            if _probe(backend):
                note = f" ({native.library_path()})"
        lines.append(f"  {backend}: {status}{note}")
    return "\n".join(lines)
