"""The ``numba`` backend: the shared jittable source, njit-compiled.

Importing this module raises :class:`ImportError` when numba is not
installed — the dispatch layer in :mod:`repro.kernels` catches that and
falls back (to ``cnative`` or numpy), so numba never becomes a hard
dependency.  The kernels themselves live in :mod:`repro.kernels._pyimpl`;
this module only supplies ``numba.njit`` as the ``jit`` wrapper, so the
numba backend executes *literally the same code* the interpreted reference
build runs (numba resolves the closed-over jitted dispatchers for the
inter-kernel calls).

Compilation is lazy per function signature, as usual for numba;
:func:`repro.kernels.warmup` triggers one tiny call of every kernel so JIT
cost never lands inside a benchmark or a latency-sensitive first request.
(numba's on-disk cache is not usable here — the kernels close over each
other's dispatchers, which ``cache=True`` cannot serialise — so warm-up is
per process.)
"""

from __future__ import annotations

import numba

from repro.kernels._pyimpl import build_kernels

__all__ = ["build_numba_kernels"]

_KERNELS = None


def build_numba_kernels():
    """Build (once) and return the njit-compiled kernel set."""
    global _KERNELS
    if _KERNELS is None:
        _KERNELS = build_kernels(numba.njit(nogil=True))
    return _KERNELS
