r"""The compiled-kernel algorithms, written once in jittable scalar-loop form.

This module is the *single source* of the kernel semantics: every backend
executes exactly this code —

* the ``numba`` backend jits each function with ``numba.njit`` (see
  :mod:`repro.kernels.numba_backend`), via the :func:`build_kernels` factory
  so the inter-function calls resolve to the jitted dispatchers;
* the ``cnative`` backend (:mod:`repro.kernels.native`) is a line-for-line C
  translation of these loops, kept in the same function/argument order so
  the two can be diffed side by side;
* the plain-python build (``PY_KERNELS`` below) runs the very same loops
  interpreted.  It is far too slow to be a production fallback (that role
  belongs to the vectorised numpy paths in ``repro.graphs.apsp`` and
  ``repro.simulation.network``), but it is invaluable as a third independent
  executable reference for the differential tests in
  ``tests/test_kernel_parity.py`` — it runs everywhere, numba or not.

Bit-identity contract: every floating-point operation here replicates the
reference engines op-for-op (``start = max(t, busy)``, ``finish = start +
T``, one sequential add per FIFO slot — never ``start + k*T``), and all
graph-side kernels are pure ``uint64``/``int64`` arithmetic, so results are
*byte-identical* to the numpy paths, not merely close.

The simulator kernels replicate :class:`repro.simulation.events.
BatchEventQueue` *structurally*: a binary min-heap of **distinct** event
times plus, per live time, a FIFO bucket of event slots (an intrusive
linked list — append at tail, drain from head, so bucket order is insertion
order, exactly the bucketed queue's sequence order).  Times map to buckets
through an open-addressing hash on the canonicalised float bit pattern
(``-0.0`` hashes as ``+0.0``, matching python dict keys); dead entries
tombstone and the table rebuilds from the live heap when tombstones pile
up.  Since bucket times are distinct, ordering the heap by time alone
reproduces the ``(time, insertion-sequence)`` contract.

The queue state is a flat tuple of arrays (``QUEUE``/``Q`` below)::

    heap_time   f8[C]   heap of distinct live times (C = event capacity)
    heap_bid    i64[C]  bucket id of each heap entry
    bucket_head i64[C]  per-bucket-id first slot
    bucket_tail i64[C]  per-bucket-id last slot
    next_slot   i64[C]  intrusive linked list over event slots (-1 = end)
    free_bids   i64[C]  bucket-id free list
    hash_time   f8[H]   open-addressing table: key (H = power of two)
    hash_state  i64[H]  bucket id, -1 empty, -2 tombstone
    qstate      i64[4]  [0] heap size, [1] free-list top, [2] used slots
    fbits       f8[1]   \ one shared 8-byte buffer, viewed both ways —
    ubits       u64[1]  / portable float-bit punning for the hash
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

__all__ = ["build_kernels", "PY_KERNELS", "KERNEL_NAMES"]

#: The functions every backend must provide (the dispatch surface).
KERNEL_NAMES = (
    "ecc_sweep",
    "subset_rows_sweep",
    "subset_ecc_sweep",
    "make_round_driver",
)


def build_kernels(jit):
    """Build the kernel set, wrapping every function with ``jit``.

    ``jit`` is ``numba.njit`` for the numba backend and the identity
    function for the interpreted reference build.  Helper functions are
    jitted first so the main kernels call the jitted dispatchers (numba
    resolves closed-over dispatcher objects but not plain python
    functions).
    """

    # ------------------------------------------------------------- apsp
    @jit
    def ecc_sweep(succ, reach, scratch, full_row, ecc, done, upper_bound):
        """Level-synchronous uint64 bit sweep with streaming eccentricities.

        Mirrors ``repro.graphs.apsp._BitSweep`` + the ``batched_
        eccentricities`` driver loop exactly: ``reach``/``scratch`` are the
        two ``(n, words)`` ping-pong buffers (``reach`` pre-seeded with the
        identity bits), ``ecc`` starts at ``-1``, ``done`` at 0.  Returns 1
        when the ``upper_bound`` cut fired (``upper_bound < 0`` disables
        it), 0 otherwise.
        """
        n = succ.shape[0]
        d = succ.shape[1]
        w = reach.shape[1]
        num_done = 0
        for u in range(n):
            complete = True
            for i in range(w):
                if reach[u, i] != full_row[i]:
                    complete = False
                    break
            if complete:
                done[u] = 1
                ecc[u] = 0
                num_done += 1
        cur = reach
        nxt = scratch
        level = 0
        while num_done < n:
            if upper_bound >= 0 and level >= upper_bound:
                return 1
            level += 1
            if d == 0:
                break  # no out-arcs anywhere: the sweep has converged
            changed = False
            for u in range(n):
                s0 = succ[u, 0]
                for i in range(w):
                    nxt[u, i] = cur[s0, i]
                for j in range(1, d):
                    sj = succ[u, j]
                    for i in range(w):
                        nxt[u, i] |= cur[sj, i]
                for i in range(w):
                    nxt[u, i] |= cur[u, i]
                if not changed:
                    for i in range(w):
                        if nxt[u, i] != cur[u, i]:
                            changed = True
                            break
            if not changed:
                break  # converged: the remaining sources can never complete
            tmp = cur
            cur = nxt
            nxt = tmp
            for u in range(n):
                if done[u]:
                    continue
                complete = True
                for i in range(w):
                    if cur[u, i] != full_row[i]:
                        complete = False
                        break
                if complete:
                    done[u] = 1
                    ecc[u] = level
                    num_done += 1
        return 0

    @jit
    def subset_rows_sweep(pred, state, scratch, rows):
        """Transposed sweep extracting per-level distance rows.

        ``state`` is the ``(n, kwords)`` bit matrix (bit ``b`` of row ``v``
        = "``sources[b]`` reaches ``v``"), pre-seeded with the source bits;
        ``rows`` is the ``(k, n)`` output, pre-filled with ``-1`` and the
        ``rows[b, sources[b]] = 0`` diagonal.  Newly-set bits at level
        ``L`` write ``rows[b, v] = L``.
        """
        n = pred.shape[0]
        d = pred.shape[1]
        w = state.shape[1]
        if d == 0:
            return
        cur = state
        nxt = scratch
        level = 0
        while True:
            level += 1
            changed = False
            for v in range(n):
                p0 = pred[v, 0]
                for i in range(w):
                    nxt[v, i] = cur[p0, i]
                for j in range(1, d):
                    pj = pred[v, j]
                    for i in range(w):
                        nxt[v, i] |= cur[pj, i]
                for i in range(w):
                    nxt[v, i] |= cur[v, i]
                if not changed:
                    for i in range(w):
                        if nxt[v, i] != cur[v, i]:
                            changed = True
                            break
            if not changed:
                return
            for v in range(n):
                for i in range(w):
                    x = nxt[v, i] & ~cur[v, i]
                    while x:
                        b = 0
                        while (x >> np.uint64(b)) & np.uint64(1) == 0:
                            b += 1
                        rows[i * 64 + b, v] = level
                        x &= x - np.uint64(1)
            tmp = cur
            cur = nxt
            nxt = tmp

    @jit
    def subset_ecc_sweep(pred, state, scratch, full, done, ecc, upper_bound):
        """Transposed sweep with streaming per-source eccentricities.

        ``full`` masks the valid ``k`` bits; ``done`` is the
        completed-source ``(kwords,)`` bitmask; ``ecc`` starts at ``-1``.
        Returns 1 when the ``upper_bound`` cut fired.
        """
        n = pred.shape[0]
        d = pred.shape[1]
        w = state.shape[1]
        k = ecc.shape[0]
        num_done = 0
        for i in range(w):
            c = state[0, i]
            for v in range(1, n):
                c &= state[v, i]
            c &= full[i]
            done[i] = c
            while c:
                b = 0
                while (c >> np.uint64(b)) & np.uint64(1) == 0:
                    b += 1
                ecc[i * 64 + b] = 0
                num_done += 1
                c &= c - np.uint64(1)
        cur = state
        nxt = scratch
        level = 0
        while num_done < k:
            if upper_bound >= 0 and level >= upper_bound:
                return 1
            level += 1
            if d == 0:
                break
            changed = False
            for v in range(n):
                p0 = pred[v, 0]
                for i in range(w):
                    nxt[v, i] = cur[p0, i]
                for j in range(1, d):
                    pj = pred[v, j]
                    for i in range(w):
                        nxt[v, i] |= cur[pj, i]
                for i in range(w):
                    nxt[v, i] |= cur[v, i]
                if not changed:
                    for i in range(w):
                        if nxt[v, i] != cur[v, i]:
                            changed = True
                            break
            if not changed:
                break  # converged: the rest can never cover the digraph
            tmp = cur
            cur = nxt
            nxt = tmp
            for i in range(w):
                c = cur[0, i]
                for v in range(1, n):
                    c &= cur[v, i]
                newly = c & full[i] & ~done[i]
                done[i] |= c & full[i]
                while newly:
                    b = 0
                    while (newly >> np.uint64(b)) & np.uint64(1) == 0:
                        b += 1
                    ecc[i * 64 + b] = level
                    num_done += 1
                    newly &= newly - np.uint64(1)
        return 0

    # -------------------------------------------------------- event queue
    @jit
    def _hash_bits(fbits, ubits, t):
        """Mixed bits of ``t`` (``-0.0`` canonicalised to ``+0.0``).

        Shift/xor mixing only — multiplies would overflow-warn on
        interpreted numpy scalars; collisions merely cost probes.
        """
        if t == 0.0:
            t = 0.0  # +0.0 and -0.0 must share a bucket, like dict keys
        fbits[0] = t
        b = ubits[0]
        b ^= b >> np.uint64(33)
        b ^= b << np.uint64(25)
        b ^= b >> np.uint64(13)
        b ^= b << np.uint64(41)
        b ^= b >> np.uint64(29)
        return b

    @jit
    def _hash_locate(fbits, ubits, hash_time, hash_state, t):
        """Find ``t``'s bucket: ``(bid, index)``, or ``(-1, insert index)``."""
        mask = np.uint64(hash_state.shape[0] - 1)
        idx = _hash_bits(fbits, ubits, t) & mask
        first_free = -1
        while True:
            s = hash_state[idx]
            if s == -1:
                if first_free < 0:
                    first_free = np.int64(idx)
                return -1, first_free
            if s == -2:
                if first_free < 0:
                    first_free = np.int64(idx)
            elif hash_time[idx] == t:
                return s, np.int64(idx)
            idx = (idx + np.uint64(1)) & mask

    @jit
    def _queue_push(
        heap_time,
        heap_bid,
        bucket_head,
        bucket_tail,
        next_slot,
        free_bids,
        hash_time,
        hash_state,
        qstate,
        fbits,
        ubits,
        t,
        slot,
    ):
        """Enqueue ``slot`` at time ``t`` (append to its FIFO bucket)."""
        next_slot[slot] = -1
        bid, ins = _hash_locate(fbits, ubits, hash_time, hash_state, t)
        if bid >= 0:
            next_slot[bucket_tail[bid]] = slot
            bucket_tail[bid] = slot
            return
        qstate[1] -= 1
        bid = free_bids[qstate[1]]
        bucket_head[bid] = slot
        bucket_tail[bid] = slot
        if hash_state[ins] == -1:
            qstate[2] += 1  # consuming a never-used table slot
        hash_time[ins] = t
        hash_state[ins] = bid
        i = qstate[0]
        qstate[0] = i + 1
        while i > 0:
            p = (i - 1) >> 1
            if t < heap_time[p]:
                heap_time[i] = heap_time[p]
                heap_bid[i] = heap_bid[p]
                i = p
            else:
                break
        heap_time[i] = t
        heap_bid[i] = bid
        H = hash_state.shape[0]
        if 2 * qstate[2] > H:
            # rebuild from the live heap entries, dropping all tombstones
            for x in range(H):
                hash_state[x] = -1
            mask = np.uint64(H - 1)
            for e in range(qstate[0]):
                te = heap_time[e]
                idx = _hash_bits(fbits, ubits, te) & mask
                while hash_state[idx] != -1:
                    idx = (idx + np.uint64(1)) & mask
                hash_time[idx] = te
                hash_state[idx] = heap_bid[e]
            qstate[2] = qstate[0]

    @jit
    def queue_schedule(
        heap_time,
        heap_bid,
        bucket_head,
        bucket_tail,
        next_slot,
        free_bids,
        hash_time,
        hash_state,
        qstate,
        fbits,
        ubits,
        slots,
        times,
    ):
        """Enqueue one event per ``(slot, time)`` pair, in array order.

        Array order is insertion order, exactly as
        ``BatchEventQueue.schedule`` orders simultaneous pushes.
        """
        for c in range(slots.shape[0]):
            _queue_push(
                heap_time,
                heap_bid,
                bucket_head,
                bucket_tail,
                next_slot,
                free_bids,
                hash_time,
                hash_state,
                qstate,
                fbits,
                ubits,
                times[c],
                slots[c],
            )

    @jit
    def pop_round(
        heap_time,
        heap_bid,
        bucket_head,
        bucket_tail,
        next_slot,
        free_bids,
        hash_time,
        hash_state,
        qstate,
        fbits,
        ubits,
        limit,
        loc,
        dst,
        slots_out,
        tails_out,
        dests_out,
        meta,
    ):
        """Drain the minimum-time bucket (up to ``limit`` events).

        Writes the popped slots (in insertion order = sequence order) to
        ``slots_out`` and the forwarding subset's current node /
        destination to ``tails_out`` / ``dests_out`` (read-only pass: no
        simulation state is mutated yet, so the router sees exactly what
        the reference loop's per-event calls see).  A ``limit`` hit leaves
        the bucket's remaining events queued at the same time, exactly like
        ``BatchEventQueue.pop_batch(limit=...)``.  ``meta[0]`` = popped
        count, ``meta[1]`` = forwarding count.
        """
        t = heap_time[0]
        bid = heap_bid[0]
        count = 0
        nfwd = 0
        cur = bucket_head[bid]
        while cur >= 0 and count < limit:
            slots_out[count] = cur
            count += 1
            node = loc[cur]
            if node != dst[cur]:
                tails_out[nfwd] = node
                dests_out[nfwd] = dst[cur]
                nfwd += 1
            cur = next_slot[cur]
        if cur >= 0:
            bucket_head[bid] = cur  # limit hit: leftovers stay queued
        else:
            # bucket drained: retire it and pop the time off the heap
            free_bids[qstate[1]] = bid
            qstate[1] += 1
            _, idx = _hash_locate(fbits, ubits, hash_time, hash_state, t)
            hash_state[idx] = -2  # tombstone
            size = qstate[0] - 1
            qstate[0] = size
            mt = heap_time[size]
            mb = heap_bid[size]
            i = 0
            while True:
                c = 2 * i + 1
                if c >= size:
                    break
                if c + 1 < size and heap_time[c + 1] < heap_time[c]:
                    c = c + 1
                if heap_time[c] < mt:
                    heap_time[i] = heap_time[c]
                    heap_bid[i] = heap_bid[c]
                    i = c
                else:
                    break
            if size > 0:
                heap_time[i] = mt
                heap_bid[i] = mb
        meta[0] = count
        meta[1] = nfwd

    @jit
    def finish_round(
        t,
        T,
        L,
        count,
        slots,
        nxt,
        loc,
        dst,
        hops,
        arrival,
        prev_link,
        rep,
        last_time,
        busy_until,
        queue_len,
        max_queue,
        tx_count,
        group_keys,
        group_ptr,
        flat_links,
        vertex_groups,
        n,
        m,
        heap_time,
        heap_bid,
        bucket_head,
        bucket_tail,
        next_slot,
        free_bids,
        hash_time,
        hash_state,
        qstate,
        fbits,
        ubits,
        out_links,
        out_starts,
        out_movers,
        meta,
    ):
        """Resolve one popped batch with the literal reference semantics.

        Events are processed one at a time in sequence order — FIFO-slot
        release, arrival, earliest-free parallel-link greedy (strict ``<``
        over ascending link ids = the reference ``min`` by ``(raw free
        time, link id)``), sequential ``max(t, busy) + T`` accumulation —
        so every float is produced by the same op sequence as
        ``NetworkSimulator``.  ``nxt`` holds the router's next hops for the
        forwarding subset, aligned with the order ``pop_round`` emitted
        them.  Writes the per-transmission trace triple to ``out_*`` and
        the moved-message count to ``meta[0]``.
        """
        j = 0
        nm = 0
        for k2 in range(count):
            i = slots[k2]
            r = rep[i]
            last_time[r] = t
            il = prev_link[i]
            if il >= 0:
                hops[i] += 1
                queue_len[il] -= 1
            node = loc[i]
            if node == dst[i]:
                arrival[i] = t
                continue
            nx = nxt[j]
            j += 1
            if nx < 0:
                continue  # unreachable: drop (counted as undelivered)
            # the vertex's groups are contiguous in the sorted key array, and
            # there are at most out-degree of them: a linear probe of that
            # tiny range beats a binary search over all groups
            key = node * n + nx
            g = -1
            for q2 in range(vertex_groups[node], vertex_groups[node + 1]):
                if group_keys[q2] == key:
                    g = q2
                    break
            if g < 0:
                continue  # no such arc (cannot happen for router-valid hops)
            base = r * m
            p0 = group_ptr[g]
            p1 = group_ptr[g + 1]
            best = base + flat_links[p0]
            bb = busy_until[best]
            for p in range(p0 + 1, p1):
                cand = base + flat_links[p]
                cb = busy_until[cand]
                if cb < bb:
                    best = cand
                    bb = cb
            start = t if t > bb else bb
            finish = start + T
            busy_until[best] = finish
            depth = queue_len[best] + 1
            queue_len[best] = depth
            if depth > max_queue[r]:
                max_queue[r] = depth
            tx_count[r] += 1
            prev_link[i] = best
            loc[i] = nx
            _queue_push(
                heap_time,
                heap_bid,
                bucket_head,
                bucket_tail,
                next_slot,
                free_bids,
                hash_time,
                hash_state,
                qstate,
                fbits,
                ubits,
                finish + L,
                i,
            )
            out_links[nm] = best
            out_starts[nm] = start
            out_movers[nm] = i
            nm += 1
        meta[0] = nm

    class RoundDriver:
        """Pre-bound per-run driver: the arrays are captured once.

        ``queue``/``msg``/``links``/``topo``/``bufs`` are the array tuples
        documented in the module docstring and
        ``repro.simulation.network._run_rounds_kernel``; binding them here
        keeps the per-round python→kernel call down to a few scalars.
        """

        __slots__ = ("queue", "msg", "links", "topo", "bufs", "T", "L")

        def __init__(self, queue, msg, links, topo, bufs, T, L):
            self.queue = queue
            self.msg = msg
            self.links = links
            self.topo = topo
            self.bufs = bufs
            self.T = T
            self.L = L

        def schedule(self, slots, times):
            queue_schedule(*self.queue, slots, times)

        def pop(self, limit):
            loc, dst = self.msg[0], self.msg[1]
            slots_buf, tails_buf, dests_buf, meta = (
                self.bufs[0],
                self.bufs[1],
                self.bufs[2],
                self.bufs[6],
            )
            pop_round(
                *self.queue,
                limit,
                loc,
                dst,
                slots_buf,
                tails_buf,
                dests_buf,
                meta,
            )

        def finish(self, t, count, nxt):
            loc, dst, hops, arrival, prev_link, rep = self.msg
            busy_until, queue_len, max_queue, tx_count, last_time = self.links
            group_keys, group_ptr, flat_links, vertex_groups, n, m = self.topo
            slots_buf, _, _, out_links, out_starts, out_movers, meta = self.bufs
            finish_round(
                t,
                self.T,
                self.L,
                count,
                slots_buf,
                nxt,
                loc,
                dst,
                hops,
                arrival,
                prev_link,
                rep,
                last_time,
                busy_until,
                queue_len,
                max_queue,
                tx_count,
                group_keys,
                group_ptr,
                flat_links,
                vertex_groups,
                n,
                m,
                *self.queue,
                out_links,
                out_starts,
                out_movers,
                meta,
            )

    def make_round_driver(queue, msg, links, topo, bufs, T, L):
        return RoundDriver(queue, msg, links, topo, bufs, T, L)

    return SimpleNamespace(
        ecc_sweep=ecc_sweep,
        subset_rows_sweep=subset_rows_sweep,
        subset_ecc_sweep=subset_ecc_sweep,
        make_round_driver=make_round_driver,
        # exposed for the differential tests (not used by the engines)
        queue_schedule=queue_schedule,
        pop_round=pop_round,
        finish_round=finish_round,
    )


#: The interpreted reference build (slow; for differential tests only).
PY_KERNELS = build_kernels(lambda f: f)
