"""repro — reproduction of *De Bruijn Isomorphisms and Free Space Optical Networks*.

This library reproduces Coudert, Ferreira & Pérennes (IPDPS 2000): the
isomorphism theory of de Bruijn-like alphabet digraphs and its application to
optimal OTIS (Optical Transpose Interconnection System) layouts.

Quick tour of the public API (see README.md for a narrative introduction):

* digraph families — :func:`repro.graphs.de_bruijn`, :func:`repro.graphs.kautz`,
  :func:`repro.graphs.imase_itoh`, :func:`repro.graphs.reddy_raghavan_kuhl`;
* the paper's generalisations — :func:`repro.core.b_sigma`,
  :func:`repro.core.alphabet_digraph`, :class:`repro.core.AlphabetDigraphSpec`;
* constructive isomorphisms — :func:`repro.core.prop_3_2_isomorphism`,
  :func:`repro.core.prop_3_9_isomorphism`,
  :func:`repro.core.debruijn_to_alphabet_isomorphism`;
* OTIS optical layouts — :class:`repro.otis.OTISArchitecture`,
  :func:`repro.otis.h_digraph`, :func:`repro.otis.optimal_debruijn_layout`;
* the degree–diameter search of Table 1 — :func:`repro.otis.table1_rows`;
* routing, broadcast and gossip — :mod:`repro.routing`;
* the discrete-event network simulator — :mod:`repro.simulation`;
* analysis helpers — :mod:`repro.analysis`.

>>> from repro.otis import optimal_debruijn_layout
>>> layout = optimal_debruijn_layout(2, 8)          # B(2, 8): 256 processors
>>> layout.p, layout.q, layout.num_lenses
(16, 32, 48)
>>> layout.verify()
True
"""

from repro import analysis, core, graphs, otis, routing, simulation
from repro.core import (
    AlphabetDigraphSpec,
    alphabet_digraph,
    b_sigma,
    debruijn_to_alphabet_isomorphism,
    debruijn_to_imase_itoh_isomorphism,
    is_otis_layout_of_de_bruijn,
    minimal_lens_split,
    prop_3_2_isomorphism,
    prop_3_9_isomorphism,
)
from repro.graphs import (
    Digraph,
    RegularDigraph,
    de_bruijn,
    diameter,
    imase_itoh,
    kautz,
    reddy_raghavan_kuhl,
)
from repro.otis import (
    OTISArchitecture,
    OTISLayout,
    h_digraph,
    optimal_debruijn_layout,
    table1_rows,
)
from repro.permutations import Permutation
from repro.version import __version__

__all__ = [
    "__version__",
    # subpackages
    "graphs",
    "core",
    "otis",
    "routing",
    "simulation",
    "analysis",
    # digraph substrate
    "Digraph",
    "RegularDigraph",
    "Permutation",
    "de_bruijn",
    "kautz",
    "imase_itoh",
    "reddy_raghavan_kuhl",
    "diameter",
    # core contribution
    "AlphabetDigraphSpec",
    "alphabet_digraph",
    "b_sigma",
    "prop_3_2_isomorphism",
    "prop_3_9_isomorphism",
    "debruijn_to_imase_itoh_isomorphism",
    "debruijn_to_alphabet_isomorphism",
    "is_otis_layout_of_de_bruijn",
    "minimal_lens_split",
    # OTIS
    "OTISArchitecture",
    "OTISLayout",
    "h_digraph",
    "optimal_debruijn_layout",
    "table1_rows",
]
