"""Command-line interface: ``python -m repro <command>``.

Exposes the reproduction's main entry points without writing any Python:

* ``layout``  — compute the lens-optimal OTIS layout of ``B(d, D)``
  (Corollaries 4.4 / 4.6) and optionally dump the node→transceiver table,
* ``check``   — the O(D) isomorphism test of Corollary 4.5 for a given split,
* ``splits``  — the whole design space of splits for one diameter,
* ``table1``  — regenerate a block of Table 1 and compare with the paper,
* ``figure``  — emit a DOT rendering of one of the paper's figure digraphs,
* ``sim``     — throughput/latency sweep of workloads on ``H(p, q, d)`` with
  the batched network simulator (optionally cross-checked against the
  event-loop reference).  ``--router`` selects the routing backend
  (``auto``/``dense``/``closed-form``/``lru``); with ``--out-dir`` the
  ``(workload, rate, seed)`` replicas run as resumable chunks
  (:mod:`repro.simulation.sharding`) — ``--shard i/k`` per host,
  ``--resume`` after an interruption, ``--merge`` to fold the chunk files
  into the curves,
* ``sweep``   — the resumable, shardable degree–diameter sweep
  (:mod:`repro.otis.sweep`): run a shard with ``--shard i/k``, relaunch with
  ``--resume`` after an interruption, fold the chunk files with ``--merge``
  (``--partial`` for a progress report over an incomplete store), and
  memoise split verdicts across runs with ``--cache-dir``,
* ``scenarios`` — degraded-mode scenario sweeps on ``H(p, q, d)``
  (:mod:`repro.simulation.scenarios`): compose an arrival process
  (``--arrival uniform|hotspot|permutation|bursty|diurnal``), finite link
  buffers (``--capacity``/``--on-full``), a deterministic fault plan
  (``--fail-links``/``--fail-at``/``--heal-after``) and a reroute policy
  (``--reroute arc-disjoint``: deflect onto the alternate arc-disjoint
  paths), sweep the offered-load axis and print throughput–latency rows
  with drop/retransmit/reroute counters and Pareto-front flags
  (``--json`` merges them into e.g. ``BENCH_scenarios.json``),
* ``serve``   — the async batch route-query service (:mod:`repro.serve`):
  ``serve run`` starts an asyncio HTTP server answering batch next-hop /
  full-path / ETA queries from a named-topology router registry (with hot
  reload of a ``--specs`` file), ``serve bench`` replays a
  simulator-generated workload against a running (or ``--self-host``-ed)
  server and merges throughput + tail latency into ``BENCH_serve.json``,
  and ``serve stats`` / ``repro serve --stats`` print a running server's
  metrics snapshot,
* ``fleet``   — the lease-based fleet driver (:mod:`repro.fleet`): workers
  **auto-assign** sweep/sim chunks through atomic TTL leases on a shared
  out-dir (no ``--shard i/k`` bookkeeping, crashed workers' chunks are
  reclaimed).  ``fleet sweep ...`` / ``fleet sim ...`` start a worker,
  ``--watch`` tails a live progress/heartbeat snapshot, ``fleet status
  --out-dir ...`` prints a one-shot snapshot of any fleet's store
  (``--json`` for the machine-readable schema), ``--merge`` folds the
  completed store, and ``fleet --smoke`` runs a seconds-long end-to-end
  claim → run → reclaim → merge exercise of both backends.

Each subcommand prints plain text to stdout and exits non-zero on failure, so
the CLI can be scripted.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table, merge_bench_json
from repro.core.checks import enumerate_layout_splits, is_otis_layout_of_de_bruijn
from repro.graphs.drawing import adjacency_listing, otis_wiring_dot, to_dot
from repro.graphs.generators import de_bruijn, imase_itoh, kautz, reddy_raghavan_kuhl
from repro.otis.layout import optimal_debruijn_layout
from repro.otis.search import PAPER_TABLE1, compare_with_paper, table1_rows
from repro.version import __version__

__all__ = ["main", "build_parser"]


class _VersionAction(argparse.Action):
    """``--version`` with kernel-backend diagnostics.

    Lazy on purpose: probing the backends may import numba or compile the C
    kernels, which must never happen at parser-build time.
    """

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "show version and kernel backend diagnostics")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro import kernels

        print(f"repro {__version__}")
        print(kernels.diagnostics())
        parser.exit()


def _active_kernel_backend() -> str:
    """The kernel backend sweeps run on (lazy: probing may compile)."""
    from repro import kernels

    return kernels.active_backend()


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="De Bruijn isomorphisms and free space optical networks "
        "(IPDPS 2000) — reproduction CLI",
    )
    parser.add_argument("--version", action=_VersionAction)
    sub = parser.add_subparsers(dest="command", required=True)

    layout = sub.add_parser("layout", help="optimal OTIS layout of B(d, D)")
    layout.add_argument("-d", type=int, default=2, help="degree (alphabet size)")
    layout.add_argument("-D", type=int, required=True, help="diameter (word length)")
    layout.add_argument(
        "--assignments",
        action="store_true",
        help="also print the per-processor transceiver assignment",
    )

    check = sub.add_parser("check", help="O(D) layout test (Corollary 4.5)")
    check.add_argument("-d", type=int, default=2)
    check.add_argument("--p-prime", type=int, required=True)
    check.add_argument("--q-prime", type=int, required=True)

    splits = sub.add_parser("splits", help="all splits for one diameter")
    splits.add_argument("-d", type=int, default=2)
    splits.add_argument("-D", type=int, required=True)

    table = sub.add_parser("table1", help="regenerate a Table 1 block")
    table.add_argument("diameter", type=int, choices=sorted(PAPER_TABLE1))
    table.add_argument(
        "--full", action="store_true", help="full sweep instead of printed rows only"
    )

    figure = sub.add_parser("figure", help="emit a figure digraph as DOT / text")
    figure.add_argument(
        "which",
        choices=["1", "2", "3", "5", "6", "7", "8"],
        help="paper figure number",
    )
    figure.add_argument(
        "--format", choices=["dot", "text"], default="dot", help="output format"
    )

    sim = sub.add_parser(
        "sim", help="batched throughput/latency sweep on H(p, q, d)"
    )
    sim.add_argument("-p", type=int, required=True, help="OTIS parameter p")
    sim.add_argument("-q", type=int, required=True, help="OTIS parameter q")
    sim.add_argument("-d", type=int, default=2, help="transceivers per node")
    sim.add_argument(
        "--messages", type=int, default=2000, help="messages per workload instance"
    )
    sim.add_argument(
        "--seeds", type=int, default=3, help="seeds per (workload, rate) point"
    )
    sim.add_argument(
        "--workloads",
        nargs="+",
        default=["uniform"],
        choices=["uniform", "hotspot", "permutation", "bursty", "diurnal"],
        help="workload kinds to sweep",
    )
    sim.add_argument(
        "--rates",
        nargs="*",
        type=float,
        default=None,
        help="Poisson injection rates (omit for inject-everything-at-time-0)",
    )
    sim.add_argument(
        "--engine",
        choices=["batched", "event", "both"],
        default="batched",
        help="'both' also runs the event-loop reference and checks parity",
    )
    sim.add_argument(
        "--router",
        choices=["auto", "dense", "closed-form", "lru"],
        default="auto",
        help="routing backend (auto: dense table for small n, table-free above)",
    )
    sim.add_argument(
        "--json",
        metavar="PATH",
        help="merge the sweep result into a JSON file (e.g. BENCH_sim.json)",
    )
    sim.add_argument(
        "--out-dir",
        help="replica chunk store: run the sweep as resumable sharded chunks",
    )
    sim.add_argument(
        "--shard",
        default="0/1",
        metavar="I/K",
        help="with --out-dir: run only round-robin shard I of K",
    )
    sim.add_argument(
        "--resume",
        action="store_true",
        help="with --out-dir: skip replica chunks already published",
    )
    sim.add_argument(
        "--merge",
        action="store_true",
        help="with --out-dir: fold the completed chunks into curves instead of running",
    )
    sim.add_argument(
        "--chunk-size", type=int, default=4, help="replicas per chunk (sharded mode)"
    )
    sim.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool workers for this shard (sharded mode)",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="degraded-mode scenario sweep on H(p, q, d): arrivals x "
        "buffers x faults x rerouting, with Pareto-front curves",
    )
    scenarios.add_argument("-p", type=int, required=True, help="OTIS parameter p")
    scenarios.add_argument("-q", type=int, required=True, help="OTIS parameter q")
    scenarios.add_argument("-d", type=int, default=2, help="transceivers per node")
    scenarios.add_argument(
        "--arrival",
        choices=["uniform", "hotspot", "permutation", "bursty", "diurnal"],
        default="uniform",
        help="arrival process (the who-sends-to-whom-when layer)",
    )
    scenarios.add_argument(
        "--messages", type=int, default=2000, help="messages per replica"
    )
    scenarios.add_argument(
        "--rates",
        nargs="*",
        type=float,
        default=None,
        help="offered-load axis of the Pareto curve (arrival-process rates; "
        "omit for the process defaults)",
    )
    scenarios.add_argument(
        "--seeds", type=int, default=3, help="seeds per rate point"
    )
    scenarios.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="finite per-link buffer capacity (omit for infinite buffers)",
    )
    scenarios.add_argument(
        "--on-full",
        choices=["drop", "retry"],
        default="drop",
        help="full-buffer policy: drop the message, or back off and retry",
    )
    scenarios.add_argument(
        "--retry-delay",
        type=float,
        default=1.0,
        help="with --on-full retry: backoff before re-attempting the hop",
    )
    scenarios.add_argument(
        "--max-retries",
        type=int,
        default=16,
        help="with --on-full retry: attempts before the message is dropped",
    )
    scenarios.add_argument(
        "--fail-links",
        type=int,
        default=0,
        help="sever that many links (chosen by --fail-seed) at --fail-at",
    )
    scenarios.add_argument(
        "--fail-at",
        type=float,
        default=0.0,
        help="time at which the failed links go down (default 0)",
    )
    scenarios.add_argument(
        "--heal-after",
        type=float,
        default=None,
        help="bring the failed links back up after that many time units",
    )
    scenarios.add_argument(
        "--fail-seed",
        type=int,
        default=0,
        help="seed choosing which links fail (deterministic across hosts)",
    )
    scenarios.add_argument(
        "--reroute",
        choices=["none", "arc-disjoint"],
        default="none",
        help="severed-primary-hop policy: drop, or deflect onto the "
        "alternate arc-disjoint paths the topologies guarantee",
    )
    scenarios.add_argument(
        "--max-hops",
        type=int,
        default=None,
        help="per-message hop TTL (default: unlimited; 4n under reroute)",
    )
    scenarios.add_argument(
        "--engine",
        choices=["batched", "event", "both"],
        default="batched",
        help="'both' also runs the event-loop reference and checks parity",
    )
    scenarios.add_argument(
        "--router",
        choices=["auto", "dense", "closed-form", "lru"],
        default="auto",
    )
    scenarios.add_argument(
        "--json",
        metavar="PATH",
        help="merge the sweep into a JSON file (e.g. BENCH_scenarios.json)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="resumable/shardable degree-diameter sweep (chunk manifest + merge)",
    )
    sweep.add_argument("-d", type=int, default=2, help="degree")
    sweep.add_argument("-D", "--diameter", type=int, required=True, help="target diameter")
    sweep.add_argument("--n-min", type=int, required=True, help="smallest node count")
    sweep.add_argument("--n-max", type=int, required=True, help="largest node count")
    sweep.add_argument(
        "--out-dir",
        required=True,
        help="chunk store directory (shared by all shards of one sweep)",
    )
    sweep.add_argument(
        "--shard",
        default="0/1",
        metavar="I/K",
        help="run only round-robin shard I of K (default 0/1 = everything)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip chunks whose result file already exists (safe relaunch)",
    )
    sweep.add_argument(
        "--merge",
        action="store_true",
        help="fold the completed chunk files into the final table instead of running",
    )
    sweep.add_argument(
        "--partial",
        action="store_true",
        help="with --merge: report progress over an incomplete store "
        "(folds only the completed chunks)",
    )
    sweep.add_argument(
        "--cache-dir",
        help="on-disk split-verdict cache shared across sweeps and CI runs",
    )
    sweep.add_argument(
        "--chunk-size", type=int, default=32, help="(n, p, q) work items per chunk"
    )
    sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool workers for this shard"
    )
    sweep.add_argument(
        "--at-most",
        action="store_true",
        help="accept any diameter <= D instead of exactly D",
    )

    serve = sub.add_parser(
        "serve",
        help="async batch route-query service: next-hop/path/ETA over HTTP",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="shorthand for 'serve stats' against the default host/port",
    )
    serve_sub = serve.add_subparsers(dest="serve_command")

    def _add_server_address(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1", help="server address")
        p.add_argument(
            "--port", type=int, default=8642, help="server port (default 8642)"
        )

    serve_run = serve_sub.add_parser(
        "run", help="start the route-query server"
    )
    _add_server_address(serve_run)
    serve_run.add_argument(
        "--topology",
        action="append",
        default=[],
        metavar="NAME=SPEC[:ROUTER]",
        help="serve SPEC (e.g. prod=H(16,32,2):closed-form); repeatable",
    )
    serve_run.add_argument(
        "--specs",
        metavar="FILE",
        help="JSON spec file mapping names to specs; hot-reloaded on change",
    )
    serve_run.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="micro-batch coalescing window, seconds (default 2ms)",
    )
    serve_run.add_argument(
        "--batch-pairs",
        type=int,
        default=8192,
        help="flush a micro-batch early at this many pending pairs",
    )
    serve_run.add_argument(
        "--max-pairs",
        type=int,
        default=65536,
        help="reject single requests above this many pairs",
    )
    serve_run.add_argument(
        "--reload-interval",
        type=float,
        default=2.0,
        help="seconds between spec-file change checks (0 disables)",
    )
    serve_run.add_argument(
        "--link-latency",
        type=float,
        default=1.0,
        help="LinkModel latency used by ETA answers",
    )
    serve_run.add_argument(
        "--link-transmission",
        type=float,
        default=1.0,
        help="LinkModel transmission time used by ETA answers",
    )
    serve_run.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="shed /v1/query requests with 429 + Retry-After beyond this "
        "many concurrently processed ones (default: unbounded)",
    )
    serve_run.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline: cancel and answer 503 beyond it "
        "(default: none)",
    )
    serve_run.add_argument(
        "--retry-after",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="Retry-After hint sent with 429/503 answers (default 0.5)",
    )
    serve_run.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT: seconds to let in-flight requests finish "
        "before stopping (default 10)",
    )

    serve_bench = serve_sub.add_parser(
        "bench",
        help="trace-replay load generator: replay a workload against a "
        "running server, record throughput + tail latency",
    )
    _add_server_address(serve_bench)
    serve_bench.add_argument(
        "--topology",
        required=True,
        metavar="NAME[=SPEC[:ROUTER]]",
        help="topology to query (NAME=SPEC form required with --self-host)",
    )
    serve_bench.add_argument(
        "--op", choices=["next-hop", "path", "eta"], default="next-hop"
    )
    serve_bench.add_argument(
        "--workload",
        choices=["uniform", "hotspot", "permutation", "bursty", "diurnal"],
        default="uniform",
        help="trace to replay (same generators as the simulators)",
    )
    serve_bench.add_argument(
        "--messages", type=int, default=100000, help="queries to replay"
    )
    serve_bench.add_argument(
        "--rate", type=float, default=None, help="workload arrival rate knob"
    )
    serve_bench.add_argument(
        "--batch", type=int, default=1024, help="pairs per request"
    )
    serve_bench.add_argument(
        "--connections", type=int, default=4, help="concurrent connections"
    )
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument(
        "--self-host",
        action="store_true",
        help="start an in-process server for the bench instead of targeting "
        "a running one (--topology must carry =SPEC)",
    )
    serve_bench.add_argument(
        "--json",
        metavar="PATH",
        help="merge the result into a JSON file (e.g. BENCH_serve.json; "
        "BENCH files are bench-checked afterwards)",
    )

    serve_stats = serve_sub.add_parser(
        "stats", help="print a running server's /stats snapshot"
    )
    _add_server_address(serve_stats)
    serve_stats.add_argument(
        "--raw", action="store_true", help="print the raw JSON snapshot"
    )

    lint = sub.add_parser(
        "lint",
        help="AST contract checker: clock seams, atomic writes, sorted "
        "listings, lock discipline, fingerprint coverage, private access",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable findings on stdout"
    )
    lint.add_argument(
        "--rules",
        help="comma-separated rule names to run (default: all; see --list-rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule names and exit"
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline of accepted findings to subtract (default: "
        "lint-baseline.json when it exists; pass 'none' to disable)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )

    fleet = sub.add_parser(
        "fleet",
        help="lease-based fleet driver: workers auto-assign sweep/sim chunks",
    )
    fleet.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long end-to-end exercise of the claim/run/reclaim/merge "
        "cycle on both backends (tiny sweep + tiny sim in a temp dir)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command")

    def _add_lease_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ttl",
            type=float,
            default=60.0,
            help="lease TTL seconds - a protocol constant of the out-dir: "
            "every worker of one fleet must use the same value (default 60)",
        )
        p.add_argument(
            "--heartbeat",
            type=float,
            default=None,
            help="lease refresh interval while computing (default ttl/4)",
        )
        p.add_argument(
            "--worker-id", help="lease owner label (default host-pid-nonce)"
        )
        p.add_argument(
            "--max-chunks",
            type=int,
            default=None,
            help="stop this worker after running that many chunks",
        )
        p.add_argument(
            "--no-wait",
            action="store_true",
            help="exit when nothing is claimable instead of polling until "
            "the whole store completes",
        )
        p.add_argument(
            "--watch",
            action="store_true",
            help="do not run chunks: print a live progress/heartbeat "
            "snapshot until the store completes",
        )
        p.add_argument(
            "--interval",
            type=float,
            default=2.0,
            help="refresh period of --watch, seconds (default 2)",
        )
        p.add_argument(
            "--merge",
            action="store_true",
            help="fold the completed store into the final result instead of "
            "running chunks",
        )
        p.add_argument(
            "--split-after",
            type=float,
            default=None,
            metavar="SECONDS",
            help="straggler policy: when idle, split a chunk whose live "
            "lease has been held longer than this into sub-chunks any "
            "worker can claim (assembled result is byte-identical; "
            "default: no splitting)",
        )
        p.add_argument(
            "--split-parts",
            type=int,
            default=2,
            help="sub-chunks per straggler split (default 2)",
        )
        p.add_argument(
            "--clock-skew",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="worst-case wall-clock offset between fleet hosts; widens "
            "the lease-expiry margin on shared filesystems (default 0)",
        )
        p.add_argument(
            "--no-prefetch",
            action="store_true",
            help="disable claiming the next chunk's lease while computing "
            "the current one",
        )

    fleet_sweep = fleet_sub.add_parser(
        "sweep", help="degree-diameter sweep chunks under fleet leases"
    )
    fleet_sweep.add_argument("-d", type=int, default=2, help="degree")
    fleet_sweep.add_argument(
        "-D", "--diameter", type=int, required=True, help="target diameter"
    )
    fleet_sweep.add_argument("--n-min", type=int, required=True)
    fleet_sweep.add_argument("--n-max", type=int, required=True)
    fleet_sweep.add_argument(
        "--out-dir",
        required=True,
        help="shared chunk store (all fleet workers point at the same one)",
    )
    fleet_sweep.add_argument(
        "--cache-dir", help="shared on-disk split-verdict cache"
    )
    fleet_sweep.add_argument(
        "--chunk-size", type=int, default=32, help="(n, p, q) items per chunk"
    )
    fleet_sweep.add_argument(
        "--at-most",
        action="store_true",
        help="accept any diameter <= D instead of exactly D",
    )
    _add_lease_args(fleet_sweep)

    fleet_sim = fleet_sub.add_parser(
        "sim", help="replica-simulation chunks under fleet leases"
    )
    fleet_sim.add_argument("-p", type=int, required=True, help="OTIS parameter p")
    fleet_sim.add_argument("-q", type=int, required=True, help="OTIS parameter q")
    fleet_sim.add_argument("-d", type=int, default=2, help="transceivers per node")
    fleet_sim.add_argument(
        "--messages", type=int, default=2000, help="messages per workload instance"
    )
    fleet_sim.add_argument(
        "--seeds", type=int, default=3, help="seeds per (workload, rate) point"
    )
    fleet_sim.add_argument(
        "--workloads",
        nargs="+",
        default=["uniform"],
        choices=["uniform", "hotspot", "permutation", "bursty", "diurnal"],
    )
    fleet_sim.add_argument("--rates", nargs="*", type=float, default=None)
    fleet_sim.add_argument(
        "--router",
        choices=["auto", "dense", "closed-form", "lru"],
        default="auto",
    )
    fleet_sim.add_argument(
        "--out-dir",
        required=True,
        help="shared replica chunk store (all fleet workers point at it)",
    )
    fleet_sim.add_argument(
        "--chunk-size", type=int, default=4, help="replicas per chunk"
    )
    fleet_sim.add_argument(
        "--json",
        metavar="PATH",
        help="with --merge: merge the curves into a JSON file "
        "(BENCH_*.json files are bench-checked afterwards)",
    )
    _add_lease_args(fleet_sim)

    fleet_status_p = fleet_sub.add_parser(
        "status",
        help="one-shot store snapshot (no job parameters needed): "
        "completion counts plus live/expired leases",
    )
    fleet_status_p.add_argument(
        "--out-dir",
        required=True,
        help="the fleet's shared chunk store directory",
    )
    fleet_status_p.add_argument(
        "--ttl",
        type=float,
        default=60.0,
        help="the fleet's lease TTL (decides live vs. expired; default 60)",
    )
    fleet_status_p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable JSON snapshot instead of text",
    )

    fleet_sub.add_parser(
        "smoke", help="same as --smoke: tiny end-to-end fleet exercise"
    )
    return parser


def _cmd_layout(args: argparse.Namespace) -> int:
    layout = optimal_debruijn_layout(args.d, args.D)
    print(f"B({args.d},{args.D}): {layout.num_nodes} processors")
    print(f"layout: OTIS({layout.p},{layout.q}), {layout.num_lenses} lenses")
    verified = layout.verify()
    print(f"verified: {verified}")
    if args.assignments:
        rows = []
        for node in range(layout.num_nodes):
            assignment = layout.node_assignment(node)
            rows.append(
                {
                    "node": node,
                    "word": "".join(map(str, layout.graph.label_of(node))),
                    "transmitters": assignment.transmitters,
                    "receivers": assignment.receivers,
                }
            )
        print(format_table(rows))
    # A failed verification is a broken layout, not a report to ignore.
    return 0 if verified else 1


def _cmd_check(args: argparse.Namespace) -> int:
    verdict = is_otis_layout_of_de_bruijn(args.d, args.p_prime, args.q_prime)
    D = args.p_prime + args.q_prime - 1
    print(
        f"H({args.d}^{args.p_prime}, {args.d}^{args.q_prime}, {args.d}) "
        f"{'IS' if verdict else 'is NOT'} isomorphic to B({args.d},{D})"
    )
    return 0 if verdict else 1


def _cmd_splits(args: argparse.Namespace) -> int:
    rows = [
        {
            "p'": s.p_prime,
            "q'": s.q_prime,
            "p": s.p,
            "q": s.q,
            "lenses": s.lenses,
            "layout": "yes" if s.is_layout else "no",
        }
        for s in enumerate_layout_splits(args.d, args.D)
    ]
    print(format_table(rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    result = table1_rows(args.diameter, printed_rows_only=not args.full)
    print(result.as_table())
    report = compare_with_paper(result)
    print(f"all printed rows reproduced: {report['all_match']}")
    return 0 if report["all_match"] else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    graphs = {
        "1": de_bruijn(2, 3),
        "2": reddy_raghavan_kuhl(2, 8),
        "3": imase_itoh(2, 8),
        "7": None,  # handled below (OTIS wiring of H(4,8,2))
        "8": de_bruijn(2, 4),
    }
    if args.which == "6":
        print(otis_wiring_dot(3, 6) if args.format == "dot" else _otis_text(3, 6))
        return 0
    if args.which == "7":
        print(otis_wiring_dot(4, 8) if args.format == "dot" else _otis_text(4, 8))
        return 0
    if args.which == "5":
        from repro.core.alphabet_digraph import alphabet_digraph
        from repro.permutations import Permutation, identity

        graph = alphabet_digraph(2, 3, Permutation([2, 1, 0]), identity(2), 1)
    else:
        graph = graphs[args.which]
    print(to_dot(graph) if args.format == "dot" else adjacency_listing(graph))
    return 0


def _otis_text(p: int, q: int) -> str:
    from repro.graphs.drawing import otis_wiring_text

    return otis_wiring_text(p, q)


def _print_sweep_curves(sweep) -> None:
    rows = [
        {
            "workload": row["workload"],
            "rate": "t=0" if row["rate"] is None else f"{row['rate']:g}",
            "seeds": row["seeds"],
            "delivered": f"{row['delivered']}/{row['messages']}",
            "throughput": f"{row['throughput']:.3f}",
            "mean latency": f"{row['mean_latency']:.3f}",
            "mean hops": f"{row['mean_hops']:.3f}",
            "max queue": row["max_link_queue"],
        }
        for row in sweep.curves()
    ]
    print(format_table(rows))


def _cmd_sim(args: argparse.Namespace) -> int:
    from repro.otis.h_digraph import h_digraph
    from repro.simulation.workloads import run_throughput_sweep

    graph = h_digraph(args.p, args.q, args.d)
    rates = tuple(args.rates) if args.rates else (None,)
    sweep_kwargs = dict(
        workloads=tuple(args.workloads),
        rates=rates,
        seeds=range(args.seeds),
        num_messages=args.messages,
    )
    if args.out_dir:
        return _cmd_sim_sharded(args, graph, rates)
    engine = "batched" if args.engine == "both" else args.engine
    sweep = run_throughput_sweep(
        graph, engine=engine, router=args.router, **sweep_kwargs
    )
    print(
        f"{sweep.graph_name}: {sweep.num_nodes} nodes, {sweep.num_links} links, "
        f"engine={sweep.engine}, kernels={sweep.kernel_backend}, "
        f"wall={sweep.wall_time_s:.3f}s"
    )
    _print_sweep_curves(sweep)
    parity_ok = True
    if args.engine == "both":
        reference = run_throughput_sweep(
            graph, engine="event", router=args.router, **sweep_kwargs
        )
        parity_ok = [point.stats for point in sweep.points] == [
            point.stats for point in reference.points
        ]
        speedup = reference.wall_time_s / max(sweep.wall_time_s, 1e-9)
        print(
            f"event-loop reference: wall={reference.wall_time_s:.3f}s "
            f"(batched speedup {speedup:.1f}x)"
        )
        print(f"parity with event-loop reference: {parity_ok}")
    if args.json:
        key = f"sweep_H({args.p},{args.q},{args.d})_{sweep.engine}"
        path = merge_bench_json(args.json, key, sweep.to_json())
        print(f"wrote {path}")
        # Same gate as the scenarios/fleet merges: a BENCH rewrite that
        # regressed committed wall-time keys must fail the command.
        if _bench_check_after_merge(str(path)):
            return 1
    return 0 if parity_ok else 1


def _print_scenario_curves(sweep) -> None:
    rows = [
        {
            "rate": "default" if row["rate"] is None else f"{row['rate']:g}",
            "seeds": row["seeds"],
            "delivered": f"{row['delivered']}/{row['messages']}",
            "drop b/f/h": f"{row['dropped_buffer']}/{row['dropped_fault']}"
            f"/{row['dropped_hops']}",
            "retrans": row["retransmits"],
            "rerouted": row["rerouted_hops"],
            "throughput": f"{row['throughput']:.3f}",
            "mean latency": f"{row['mean_latency']:.3f}",
            "pareto": "*" if row["pareto"] else "",
        }
        for row in sweep.curves()
    ]
    print(format_table(rows))


def _build_scenario(args: argparse.Namespace, graph):
    """The :class:`~repro.simulation.scenarios.Scenario` a CLI call describes."""
    from repro.simulation.network import BufferedLinkModel, LinkModel
    from repro.simulation.scenarios import FaultPlan, Scenario, make_arrivals

    if args.arrival == "permutation":
        arrivals = make_arrivals(args.arrival)
    else:
        arrivals = make_arrivals(args.arrival, num_messages=args.messages)
    if args.capacity is not None:
        link = BufferedLinkModel(
            capacity=args.capacity,
            on_full=args.on_full,
            retry_delay=args.retry_delay,
            max_retries=args.max_retries,
        )
    else:
        link = LinkModel()
    if args.fail_links:
        faults = FaultPlan.random_link_failures(
            graph,
            args.fail_links,
            at=args.fail_at,
            heal_after=args.heal_after,
            seed=args.fail_seed,
        )
    else:
        faults = FaultPlan.none()
    return Scenario(
        arrivals=arrivals,
        link=link,
        faults=faults,
        reroute=args.reroute,
        max_hops=args.max_hops,
    )


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.otis.h_digraph import h_digraph
    from repro.simulation.scenarios import run_scenario_sweep

    graph = h_digraph(args.p, args.q, args.d)
    scenario = _build_scenario(args, graph)
    rates = tuple(args.rates) if args.rates else (None,)
    engine = "batched" if args.engine == "both" else args.engine
    sweep = run_scenario_sweep(
        graph,
        scenario,
        rates=rates,
        seeds=range(args.seeds),
        engine=engine,
        router=args.router,
    )
    print(
        f"{sweep.graph_name}: {sweep.num_nodes} nodes, {sweep.num_links} links, "
        f"engine={sweep.engine}, kernels={sweep.kernel_backend}, "
        f"wall={sweep.wall_time_s:.3f}s"
    )
    print(f"scenario [{scenario.digest()}]: {scenario.describe()}")
    _print_scenario_curves(sweep)
    parity_ok = True
    if args.engine == "both":
        reference = run_scenario_sweep(
            graph,
            scenario,
            rates=rates,
            seeds=range(args.seeds),
            engine="event",
            router=args.router,
        )
        parity_ok = [point.stats for point in sweep.points] == [
            point.stats for point in reference.points
        ]
        print(f"parity with event-loop reference: {parity_ok}")
    if args.json:
        key = f"scenarios_H({args.p},{args.q},{args.d})_{args.arrival}"
        path = merge_bench_json(args.json, key, sweep.to_json())
        print(f"wrote {path}")
        if _bench_check_after_merge(str(path)):
            return 1
    return 0 if parity_ok else 1


def _parse_topology_arg(
    text: str, *, require_spec: bool
) -> tuple[str, str | None, str]:
    """``NAME=SPEC[:ROUTER]`` (or plain ``NAME``) -> (name, spec, router)."""
    from repro.routing.routers import ROUTER_KINDS

    if "=" not in text:
        if require_spec:
            raise ValueError(
                f"--topology {text!r}: --self-host/serve run need the "
                "NAME=SPEC[:ROUTER] form (e.g. prod=H(16,32,2):closed-form)"
            )
        return text, None, "auto"
    name, _, rest = text.partition("=")
    router = "auto"
    spec, _, candidate = rest.rpartition(":")
    if spec and candidate in ROUTER_KINDS:
        rest, router = spec, candidate
    if not name or not rest:
        raise ValueError(f"--topology {text!r}: expected NAME=SPEC[:ROUTER]")
    return name, rest, router


def _serve_run(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import RouteQueryServer, RouterRegistry
    from repro.simulation.network import LinkModel

    registry = RouterRegistry()
    try:
        if args.specs:
            registry.load_spec_file(args.specs)
        for text in args.topology:
            name, spec, router = _parse_topology_arg(text, require_spec=True)
            registry.add(name, spec, router)
    except (OSError, ValueError) as error:
        print(f"serve run failed: {error}", file=sys.stderr)
        return 1
    if not registry.names():
        print(
            "serve run needs at least one --topology NAME=SPEC or --specs "
            "FILE",
            file=sys.stderr,
        )
        return 2
    link = LinkModel(
        latency=args.link_latency, transmission_time=args.link_transmission
    )
    server = RouteQueryServer(
        registry,
        host=args.host,
        port=args.port,
        link=link,
        batch_window_s=args.batch_window,
        batch_pairs=args.batch_pairs,
        max_pairs=args.max_pairs,
        reload_interval_s=args.reload_interval,
        max_inflight=args.max_inflight,
        request_timeout_s=args.request_timeout,
        retry_after_s=args.retry_after,
    )

    async def main() -> None:
        import signal as _signal

        port = await server.start()
        print(f"serving on http://{args.host}:{port}", flush=True)
        for name, info in sorted(registry.snapshot().items()):
            print(
                f"  {name}: {info['spec']} via {info['router']} router "
                f"({info['nodes']} nodes, {info['state_bytes']} bytes of "
                "routing state)",
                flush=True,
            )
        # Graceful shutdown: SIGTERM/SIGINT stop admission, let in-flight
        # requests finish (up to --drain-grace), then exit 0 — so rolling
        # restarts and supervisors never cut answered connections short.
        loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_signal.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops
        serving = asyncio.ensure_future(server.serve_forever())
        waiter = asyncio.ensure_future(stop_signal.wait())
        try:
            await asyncio.wait(
                {serving, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            waiter.cancel()
            serving.cancel()
            await asyncio.gather(serving, waiter, return_exceptions=True)
        if stop_signal.is_set():
            print("draining...", flush=True)
            await server.drain(grace_s=args.drain_grace)
            print("drained, stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("stopped")
    except OSError as error:
        print(f"serve run failed: {error}", file=sys.stderr)
        return 1
    return 0


def _serve_stats(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.bench import http_request

    try:
        stats = http_request(args.host, args.port, "GET", "/stats")
    except OSError as error:
        print(
            f"stats failed: no server at {args.host}:{args.port} ({error})",
            file=sys.stderr,
        )
        return 1
    if getattr(args, "raw", False):
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(
        f"uptime {stats['uptime_s']:.1f}s, "
        f"{stats['queries_per_second']:.0f} queries/s (10s window)"
    )
    batching = stats["batching"]
    print(
        f"micro-batching: {batching['batches']} batches, "
        f"{batching['coalesced_requests']} coalesced requests, "
        f"max {batching['max_batch_pairs']} pairs"
    )
    endpoint_rows = [
        {
            "op": name,
            "requests": e["requests"],
            "queries": e["queries"],
            "errors": e["errors"],
            "p50": "-" if e["latency_p50_s"] is None else f"{e['latency_p50_s'] * 1e3:.2f}ms",
            "p99": "-" if e["latency_p99_s"] is None else f"{e['latency_p99_s'] * 1e3:.2f}ms",
        }
        for name, e in sorted(stats["endpoints"].items())
    ]
    if endpoint_rows:
        print(format_table(endpoint_rows))
    topo_rows = [
        {
            "topology": name,
            "spec": info["spec"],
            "router": info["router"],
            "nodes": info["nodes"],
            "state bytes": info["state_bytes"],
            "hit rate": (
                "-"
                if info.get("cache_hit_rate") is None
                else f"{info['cache_hit_rate']:.3f}"
            ),
            "version": info["version"],
        }
        for name, info in sorted(stats["topologies"].items())
    ]
    if topo_rows:
        print(format_table(topo_rows))
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import RouterRegistry, ServerThread, run_bench

    try:
        name, spec, router = _parse_topology_arg(
            args.topology, require_spec=args.self_host
        )
    except ValueError as error:
        print(f"bench failed: {error}", file=sys.stderr)
        return 2

    def bench_against(host: str, port: int):
        return run_bench(
            host,
            port,
            topology=name,
            op=args.op,
            workload=args.workload,
            messages=args.messages,
            batch_pairs=args.batch,
            connections=args.connections,
            seed=args.seed,
            rate=args.rate,
        )

    try:
        if args.self_host:
            registry = RouterRegistry()
            registry.add(name, spec, router)
            with ServerThread(registry) as server:
                print(f"self-hosting {name}={spec} on port {server.port}")
                result = bench_against(server.host, server.port)
        else:
            result = bench_against(args.host, args.port)
    except (OSError, ValueError, RuntimeError) as error:
        print(f"bench failed: {error}", file=sys.stderr)
        return 1
    print(result.describe())
    if args.json:
        key = f"serve_{name}_{args.op}_{args.workload}"
        path = merge_bench_json(args.json, key, result.to_json())
        print(f"wrote {path}")
        if _bench_check_after_merge(str(path)):
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    command = getattr(args, "serve_command", None)
    if command == "run":
        return _serve_run(args)
    if command == "bench":
        return _serve_bench(args)
    if command == "stats" or (command is None and args.stats):
        # `repro serve --stats` hits the default host/port.
        if command is None:
            args.host, args.port = "127.0.0.1", 8642
        return _serve_stats(args)
    print(
        "serve needs a mode: serve run ..., serve bench ..., serve stats, "
        "or serve --stats",
        file=sys.stderr,
    )
    return 2


def _build_sim_study(args: argparse.Namespace, graph, rates):
    """``(combos, traffics, link, manifest)`` for a sharded/fleet sim study.

    Shared by ``repro sim --out-dir`` and ``repro fleet sim`` so both derive
    the same deterministic chunk ids from the same CLI parameters.
    """
    from repro.simulation.network import LinkModel
    from repro.simulation.sharding import ReplicaChunkManifest
    from repro.simulation.workloads import sweep_combos, sweep_traffics

    combos = sweep_combos(tuple(args.workloads), rates, range(args.seeds))
    traffics = sweep_traffics(graph.num_vertices, combos, args.messages)
    link = LinkModel()
    manifest = ReplicaChunkManifest.build(
        graph,
        traffics,
        link=link,
        router=args.router,
        chunk_size=args.chunk_size,
    )
    return combos, traffics, link, manifest


def _cmd_sim_sharded(args: argparse.Namespace, graph, rates) -> int:
    """``repro sim --out-dir ...``: replicas as resumable sharded chunks."""
    import time as _time

    from repro.otis.sweep import ChunkStore
    from repro.simulation.sharding import merge_replica_stats, run_replica_shard
    from repro.simulation.workloads import assemble_throughput_sweep

    if args.engine != "batched":
        print("sharded mode always uses the batched engine", file=sys.stderr)
        return 2
    combos, traffics, link, manifest = _build_sim_study(args, graph, rates)
    store = ChunkStore(args.out_dir)
    print(
        f"{graph.name}: {len(combos)} replicas x {args.messages} messages in "
        f"{len(manifest.chunks)} chunks (code version {manifest.code_version}, "
        f"router {manifest.router})"
    )
    if args.merge:
        start = _time.perf_counter()
        try:
            stats = merge_replica_stats(manifest, store)
        except FileNotFoundError as error:
            print(f"merge failed: {error}", file=sys.stderr)
            return 1
        sweep = assemble_throughput_sweep(
            graph,
            combos,
            traffics,
            stats,
            engine="batched",
            link=link,
            wall_time_s=_time.perf_counter() - start,
            kernel_backend=_active_kernel_backend(),
        )
        _print_sweep_curves(sweep)
        if args.json:
            key = f"sweep_H({args.p},{args.q},{args.d})_sharded"
            entry = sweep.to_json()
            # The merged sweep never timed the simulation (the shards did,
            # possibly on other hosts); recording the fold time under
            # `wall_time_s` would pollute the BENCH trajectory with a bogus
            # near-zero "simulation" timing.
            entry.pop("wall_time_s", None)
            entry["merge_wall_time_s"] = round(sweep.wall_time_s, 4)
            path = merge_bench_json(args.json, key, entry)
            print(f"wrote {path}")
        return 0
    outcome = run_replica_shard(
        manifest,
        store,
        graph,
        traffics,
        shard=_parse_shard(args.shard),
        resume=args.resume,
        workers=args.workers,
    )
    print(
        f"shard {args.shard}: ran {len(outcome['ran'])} chunks, "
        f"skipped {len(outcome['skipped'])} already complete"
    )
    done = store.completed_ids() & {chunk.chunk_id for chunk in manifest.chunks}
    print(
        f"store {store.directory}: {len(done)}/{len(manifest.chunks)} chunks complete"
    )
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``--shard I/K`` (e.g. ``0/2``) into an ``(index, count)`` pair."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard expects I/K (e.g. 0/2), got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise SystemExit(f"--shard needs 0 <= I < K, got {text!r}")
    return index, count


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.otis.search import PAPER_TABLE1, compare_with_paper
    from repro.otis.sweep import ChunkManifest, ChunkStore, merge_sweep, run_sweep

    if args.n_min < 1 or args.n_max < args.n_min:
        print("need 1 <= --n-min <= --n-max", file=sys.stderr)
        return 2
    manifest = ChunkManifest.build(
        args.d,
        args.diameter,
        range(args.n_min, args.n_max + 1),
        require_exact=not args.at_most,
        chunk_size=args.chunk_size,
    )
    store = ChunkStore(args.out_dir)
    print(
        f"sweep d={args.d} D={args.diameter} n={args.n_min}..{args.n_max}: "
        f"{len(manifest.chunks)} chunks (code version {manifest.code_version})"
    )
    if args.partial and not args.merge:
        print("--partial only makes sense with --merge", file=sys.stderr)
        return 2
    if args.merge:
        try:
            result = merge_sweep(manifest, store, partial=args.partial)
        except FileNotFoundError as error:
            print(f"merge failed: {error}", file=sys.stderr)
            return 1
        if args.partial:
            done = store.completed_ids() & {c.chunk_id for c in manifest.chunks}
            print(
                f"PARTIAL merge: {len(done)}/{len(manifest.chunks)} chunks "
                "complete - rows below cover only the published chunks"
            )
        print(result.as_table())
        if args.diameter in PAPER_TABLE1 and not args.at_most and not args.partial:
            report = compare_with_paper(result)
            print(f"paper rows in range reproduced: {report['all_match']}")
        return 0
    outcome = run_sweep(
        manifest,
        store,
        shard=_parse_shard(args.shard),
        resume=args.resume,
        cache=args.cache_dir,
        workers=args.workers,
    )
    print(
        f"shard {args.shard}: ran {len(outcome['ran'])} chunks, "
        f"skipped {len(outcome['skipped'])} already complete"
    )
    done = store.completed_ids() & {chunk.chunk_id for chunk in manifest.chunks}
    print(f"store {store.directory}: {len(done)}/{len(manifest.chunks)} chunks complete")
    return 0


def _fleet_kwargs(args: argparse.Namespace) -> dict:
    """The ``run_fleet`` keyword arguments shared by fleet sweep/sim."""
    return dict(
        worker_id=args.worker_id,
        ttl=args.ttl,
        heartbeat=args.heartbeat,
        wait=not args.no_wait,
        max_chunks=args.max_chunks,
        prefetch=not args.no_prefetch,
        split_after=args.split_after,
        split_parts=args.split_parts,
        clock_skew=args.clock_skew,
        # CLI workers are real processes under a supervisor: convert
        # SIGTERM into a prompt lease release + clean exit.
        handle_sigterm=True,
    )


def _fleet_watch(job, args: argparse.Namespace) -> int:
    """``--watch``: print status snapshots until the store completes.

    The refresh sleep backs off exponentially (capped at
    ``max(--interval, 5 s)``) while nothing changes and snaps back to
    ``--interval`` on any progress — a hundred idle watchers must not
    hammer the shared store with stat storms.
    """
    import time as _time

    from repro.fleet import fleet_status, format_status

    sleep_s = args.interval
    cap_s = max(args.interval, 5.0)
    last = None
    while True:
        status = fleet_status(job, ttl=args.ttl)
        try:
            summary = job.progress_summary()
        except (OSError, ValueError):
            summary = ""
        print(format_status(status, summary=summary), flush=True)
        if status["done"]:
            return 0
        # Heartbeat ages churn every snapshot; progress is judged on the
        # stable parts only (who holds what, how much is complete).
        fingerprint = (
            status["complete"],
            status.get("splits", 0),
            tuple(sorted((i.chunk_id, i.worker) for i in status["running"])),
            tuple(sorted(i.chunk_id for i in status["expired"])),
        )
        if fingerprint == last:
            sleep_s = min(cap_s, sleep_s * 2)
        else:
            sleep_s = args.interval
            last = fingerprint
        _time.sleep(sleep_s)


def _print_fleet_outcome(outcome: dict, job) -> None:
    complete = job.store.completed_ids() & {c.chunk_id for c in job.chunks()}
    line = (
        f"worker {outcome['worker']}: ran {len(outcome['ran'])} chunks; "
        f"store {outcome['store']}: {len(complete)}/{outcome['chunks']} "
        "chunks complete"
    )
    if outcome["lost"]:
        line += f"; {len(outcome['lost'])} lease(s) lost mid-run (reclaimed)"
    print(line)


def _bench_check_after_merge(json_path: str) -> int:
    """Gate a fleet merge that rewrote a ``BENCH_*.json`` trajectory file.

    Returns the number of wall-time regressions found (0 for non-BENCH
    paths or files with no committed baseline).
    """
    from pathlib import Path

    from repro.analysis.bench_check import REGRESSION_FACTOR, check_file

    if not Path(json_path).name.startswith("BENCH_"):
        return 0
    regressions = check_file(json_path)
    if regressions:
        print(
            f"bench-check: {len(regressions)} wall-time regression(s) "
            f"> {REGRESSION_FACTOR}x after fleet merge:",
            file=sys.stderr,
        )
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
    else:
        print(f"bench-check: {Path(json_path).name} shows no regression")
    return len(regressions)


def _fleet_sweep(args: argparse.Namespace) -> int:
    from repro.fleet import SweepFleetJob, run_fleet
    from repro.otis.search import PAPER_TABLE1, compare_with_paper
    from repro.otis.sweep import ChunkManifest, ChunkStore

    if args.n_min < 1 or args.n_max < args.n_min:
        print("need 1 <= --n-min <= --n-max", file=sys.stderr)
        return 2
    manifest = ChunkManifest.build(
        args.d,
        args.diameter,
        range(args.n_min, args.n_max + 1),
        require_exact=not args.at_most,
        chunk_size=args.chunk_size,
    )
    job = SweepFleetJob(
        manifest, ChunkStore(args.out_dir), cache=args.cache_dir
    )
    print(job.describe())
    if args.watch:
        return _fleet_watch(job, args)
    if args.merge:
        try:
            result = job.merge()
        except FileNotFoundError as error:
            print(f"merge failed: {error}", file=sys.stderr)
            return 1
        print(result.as_table())
        if args.diameter in PAPER_TABLE1 and not args.at_most:
            report = compare_with_paper(result)
            print(f"paper rows in range reproduced: {report['all_match']}")
        return 0
    outcome = run_fleet(job, **_fleet_kwargs(args))
    _print_fleet_outcome(outcome, job)
    return 0


def _fleet_sim(args: argparse.Namespace) -> int:
    import time as _time

    from repro.fleet import SimFleetJob, run_fleet
    from repro.otis.h_digraph import h_digraph
    from repro.otis.sweep import ChunkStore
    from repro.simulation.workloads import assemble_throughput_sweep

    graph = h_digraph(args.p, args.q, args.d)
    rates = tuple(args.rates) if args.rates else (None,)
    combos, traffics, link, manifest = _build_sim_study(args, graph, rates)
    job = SimFleetJob(manifest, ChunkStore(args.out_dir), graph, traffics)
    print(job.describe())
    if args.watch:
        return _fleet_watch(job, args)
    if args.merge:
        start = _time.perf_counter()
        try:
            stats = job.merge()
        except FileNotFoundError as error:
            print(f"merge failed: {error}", file=sys.stderr)
            return 1
        sweep = assemble_throughput_sweep(
            graph,
            combos,
            traffics,
            stats,
            engine="batched",
            link=link,
            wall_time_s=_time.perf_counter() - start,
            kernel_backend=_active_kernel_backend(),
        )
        _print_sweep_curves(sweep)
        if args.json:
            key = f"sweep_H({args.p},{args.q},{args.d})_fleet"
            entry = sweep.to_json()
            # As in the sharded merge: the fold never timed the simulation.
            entry.pop("wall_time_s", None)
            entry["merge_wall_time_s"] = round(sweep.wall_time_s, 4)
            path = merge_bench_json(args.json, key, entry)
            print(f"wrote {path}")
            if _bench_check_after_merge(str(path)):
                return 1
        return 0
    outcome = run_fleet(job, **_fleet_kwargs(args))
    _print_fleet_outcome(outcome, job)
    return 0


def _fleet_smoke(args: argparse.Namespace) -> int:
    """Tiny end-to-end fleet exercise: claim → run → reclaim → merge, both
    backends, asserting byte-identical merges against the serial paths."""
    import os
    import tempfile
    import time as _time
    from pathlib import Path

    from repro.fleet import LeaseManager, SimFleetJob, SweepFleetJob, run_fleet
    from repro.otis.h_digraph import h_digraph
    from repro.otis.search import degree_diameter_search
    from repro.otis.sweep import ChunkManifest, ChunkStore
    from repro.simulation.network import BatchedNetworkSimulator, LinkModel
    from repro.simulation.sharding import ReplicaChunkManifest
    from repro.simulation.workloads import make_workload

    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as base_str:
        base = Path(base_str)

        manifest = ChunkManifest.build(2, 6, range(62, 67), chunk_size=4)
        job = SweepFleetJob(
            manifest, ChunkStore(base / "sweep"), cache=base / "cache"
        )
        # Plant an already-expired foreign lease on the first chunk: the
        # worker must reclaim it, exercising the crashed-owner path.
        leases = LeaseManager(job.store.directory / "leases", ttl=5.0)
        stale = leases.try_acquire(
            manifest.chunks[0].chunk_id, worker="smoke-crashed-worker"
        )
        backdated = _time.time() - 3600
        os.utime(stale.path, (backdated, backdated))
        outcome = run_fleet(job, ttl=5.0, heartbeat=1.0)
        reclaimed = manifest.chunks[0].chunk_id in outcome["ran"]
        merged = job.merge()
        direct = degree_diameter_search(2, 6, 62, 66)
        sweep_ok = merged.rows == direct.rows and reclaimed
        print(
            f"sweep backend: {len(outcome['ran'])} chunks via leases, "
            f"expired lease reclaimed: {reclaimed}, "
            f"merge identical to serial search: {merged.rows == direct.rows}"
        )

        graph = h_digraph(4, 8, 2)
        link = LinkModel()
        traffics = [
            make_workload("uniform", graph.num_vertices, 30, rng=seed)
            for seed in range(4)
        ]
        sim_manifest = ReplicaChunkManifest.build(
            graph, traffics, link=link, chunk_size=2
        )
        sim_job = SimFleetJob(
            sim_manifest, ChunkStore(base / "sim"), graph, traffics
        )
        sim_outcome = run_fleet(sim_job, ttl=5.0, heartbeat=1.0)
        stats = sim_job.merge()
        expected = [
            s
            for s, _ in BatchedNetworkSimulator(graph, link=link).run_many(
                traffics, return_messages=False
            )
        ]
        sim_ok = stats == expected and sim_outcome["complete"]
        print(
            f"sim backend: {len(sim_outcome['ran'])} chunks via leases, "
            f"merge identical to in-process run_many: {stats == expected}"
        )
    ok = sweep_ok and sim_ok
    print(f"fleet smoke: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _fleet_status(args: argparse.Namespace) -> int:
    """``fleet status``: one-shot snapshot of a store, text or JSON."""
    import json as _json

    from repro.fleet import format_status, status_to_json, store_status

    try:
        status = store_status(args.out_dir, ttl=args.ttl)
    except FileNotFoundError as error:
        print(f"status failed: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(status_to_json(status), indent=2, sort_keys=True))
    else:
        print(format_status(status))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    command = getattr(args, "fleet_command", None)
    if args.smoke or command == "smoke":
        return _fleet_smoke(args)
    if command == "sweep":
        return _fleet_sweep(args)
    if command == "sim":
        return _fleet_sim(args)
    if command == "status":
        return _fleet_status(args)
    print(
        "fleet needs a mode: fleet sweep ..., fleet sim ..., fleet status "
        "..., or fleet --smoke",
        file=sys.stderr,
    )
    return 2


def _cmd_lint(args) -> int:
    """``repro lint``: 0 clean, 1 findings, 2 usage errors."""
    from pathlib import Path

    from repro import lint

    if args.list_rules:
        for rule in lint.all_rules():
            print(rule)
        return 0

    rules = None
    if args.rules:
        rules = tuple(part.strip() for part in args.rules.split(",") if part.strip())

    baseline_path: Path | None
    if args.baseline == "none":
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        default = Path("lint-baseline.json")
        baseline_path = default if default.exists() else None

    try:
        findings = lint.run_lint([Path(p) for p in args.paths], rules=rules)
    except ValueError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or Path("lint-baseline.json")
        lint.write_baseline(findings, target)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    if baseline_path is not None:
        try:
            findings = lint.apply_baseline(findings, lint.load_baseline(baseline_path))
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"repro lint: bad baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    output = lint.render_json(findings) if args.json else lint.render_text(findings)
    print(output, end="")
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.otis.sweep import StoreIdentityError

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "layout": _cmd_layout,
        "check": _cmd_check,
        "splits": _cmd_splits,
        "table1": _cmd_table1,
        "figure": _cmd_figure,
        "sim": _cmd_sim,
        "scenarios": _cmd_scenarios,
        "sweep": _cmd_sweep,
        "fleet": _cmd_fleet,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except StoreIdentityError as error:
        print(f"store identity mismatch: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
