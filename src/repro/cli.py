"""Command-line interface: ``python -m repro <command>``.

Exposes the reproduction's main entry points without writing any Python:

* ``layout``  — compute the lens-optimal OTIS layout of ``B(d, D)``
  (Corollaries 4.4 / 4.6) and optionally dump the node→transceiver table,
* ``check``   — the O(D) isomorphism test of Corollary 4.5 for a given split,
* ``splits``  — the whole design space of splits for one diameter,
* ``table1``  — regenerate a block of Table 1 and compare with the paper,
* ``figure``  — emit a DOT rendering of one of the paper's figure digraphs.

Each subcommand prints plain text to stdout and exits non-zero on failure, so
the CLI can be scripted.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.core.checks import enumerate_layout_splits, is_otis_layout_of_de_bruijn
from repro.graphs.drawing import adjacency_listing, otis_wiring_dot, to_dot
from repro.graphs.generators import de_bruijn, imase_itoh, kautz, reddy_raghavan_kuhl
from repro.otis.layout import optimal_debruijn_layout
from repro.otis.search import PAPER_TABLE1, compare_with_paper, table1_rows
from repro.version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="De Bruijn isomorphisms and free space optical networks "
        "(IPDPS 2000) — reproduction CLI",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    layout = sub.add_parser("layout", help="optimal OTIS layout of B(d, D)")
    layout.add_argument("-d", type=int, default=2, help="degree (alphabet size)")
    layout.add_argument("-D", type=int, required=True, help="diameter (word length)")
    layout.add_argument(
        "--assignments",
        action="store_true",
        help="also print the per-processor transceiver assignment",
    )

    check = sub.add_parser("check", help="O(D) layout test (Corollary 4.5)")
    check.add_argument("-d", type=int, default=2)
    check.add_argument("--p-prime", type=int, required=True)
    check.add_argument("--q-prime", type=int, required=True)

    splits = sub.add_parser("splits", help="all splits for one diameter")
    splits.add_argument("-d", type=int, default=2)
    splits.add_argument("-D", type=int, required=True)

    table = sub.add_parser("table1", help="regenerate a Table 1 block")
    table.add_argument("diameter", type=int, choices=sorted(PAPER_TABLE1))
    table.add_argument(
        "--full", action="store_true", help="full sweep instead of printed rows only"
    )

    figure = sub.add_parser("figure", help="emit a figure digraph as DOT / text")
    figure.add_argument(
        "which",
        choices=["1", "2", "3", "5", "6", "7", "8"],
        help="paper figure number",
    )
    figure.add_argument(
        "--format", choices=["dot", "text"], default="dot", help="output format"
    )
    return parser


def _cmd_layout(args: argparse.Namespace) -> int:
    layout = optimal_debruijn_layout(args.d, args.D)
    print(f"B({args.d},{args.D}): {layout.num_nodes} processors")
    print(f"layout: OTIS({layout.p},{layout.q}), {layout.num_lenses} lenses")
    print(f"verified: {layout.verify()}")
    if args.assignments:
        rows = []
        for node in range(layout.num_nodes):
            assignment = layout.node_assignment(node)
            rows.append(
                {
                    "node": node,
                    "word": "".join(map(str, layout.graph.label_of(node))),
                    "transmitters": assignment.transmitters,
                    "receivers": assignment.receivers,
                }
            )
        print(format_table(rows))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    verdict = is_otis_layout_of_de_bruijn(args.d, args.p_prime, args.q_prime)
    D = args.p_prime + args.q_prime - 1
    print(
        f"H({args.d}^{args.p_prime}, {args.d}^{args.q_prime}, {args.d}) "
        f"{'IS' if verdict else 'is NOT'} isomorphic to B({args.d},{D})"
    )
    return 0 if verdict else 1


def _cmd_splits(args: argparse.Namespace) -> int:
    rows = [
        {
            "p'": s.p_prime,
            "q'": s.q_prime,
            "p": s.p,
            "q": s.q,
            "lenses": s.lenses,
            "layout": "yes" if s.is_layout else "no",
        }
        for s in enumerate_layout_splits(args.d, args.D)
    ]
    print(format_table(rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    result = table1_rows(args.diameter, printed_rows_only=not args.full)
    print(result.as_table())
    report = compare_with_paper(result)
    print(f"all printed rows reproduced: {report['all_match']}")
    return 0 if report["all_match"] else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    graphs = {
        "1": de_bruijn(2, 3),
        "2": reddy_raghavan_kuhl(2, 8),
        "3": imase_itoh(2, 8),
        "7": None,  # handled below (OTIS wiring of H(4,8,2))
        "8": de_bruijn(2, 4),
    }
    if args.which == "6":
        print(otis_wiring_dot(3, 6) if args.format == "dot" else _otis_text(3, 6))
        return 0
    if args.which == "7":
        print(otis_wiring_dot(4, 8) if args.format == "dot" else _otis_text(4, 8))
        return 0
    if args.which == "5":
        from repro.core.alphabet_digraph import alphabet_digraph
        from repro.permutations import Permutation, identity

        graph = alphabet_digraph(2, 3, Permutation([2, 1, 0]), identity(2), 1)
    else:
        graph = graphs[args.which]
    print(to_dot(graph) if args.format == "dot" else adjacency_listing(graph))
    return 0


def _otis_text(p: int, q: int) -> str:
    from repro.graphs.drawing import otis_wiring_text

    return otis_wiring_text(p, q)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "layout": _cmd_layout,
        "check": _cmd_check,
        "splits": _cmd_splits,
        "table1": _cmd_table1,
        "figure": _cmd_figure,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
