"""sorted-iteration: directory listings must be ordered before use.

``Path.glob``/``os.listdir`` return entries in *filesystem* order — inode
order on ext4, readdir cookie order on NFS, something else again on tmpfs.
Any listing that feeds a digest, a merge, JSON output or chunk assembly
therefore produces machine-dependent bytes unless it is sorted first, and
byte-identical artifacts are this repo's core reproducibility claim (chunk
merges, ``BENCH_*.json``, status snapshots).

The rule flags calls to ``.glob(...)``/``.rglob(...)``/``.iterdir()`` and
``os.listdir``/``os.scandir`` anywhere in the scanned tree, unless an
enclosing call in the same expression is ``sorted(...)`` — the canonical
fix (see ``LeaseManager.active`` in fleet/leases.py) — or ``len(...)``,
which is order-insensitive by construction (the ``len(list(...))`` split
counters in fleet/status.py).  A listing bound to a variable and sorted
*later* still fires: keeping the ordering adjacent to the listing is the
point — reviewers should never have to chase data flow to check
determinism.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, ModuleContext

RULE = "sorted-iteration"

_LISTING_METHODS = ("glob", "rglob", "iterdir")
_OS_LISTINGS = ("listdir", "scandir")
_ORDER_INSENSITIVE_WRAPPERS = ("sorted", "len")


def _listing_call(node: ast.Call, os_aliases: set[str]) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in _OS_LISTINGS and (
            isinstance(func.value, ast.Name) and func.value.id in os_aliases
        ):
            return f"os.{func.attr}"
        if func.attr in _LISTING_METHODS:
            return f".{func.attr}"
    return None


def _wrapped_order_insensitively(ctx: ModuleContext, node: ast.Call) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.stmt):
            return False
        if (
            isinstance(ancestor, ast.Call)
            and isinstance(ancestor.func, ast.Name)
            and ancestor.func.id in _ORDER_INSENSITIVE_WRAPPERS
        ):
            return True
    return False


def check(ctx: ModuleContext) -> list[Finding]:
    os_aliases: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "os":
                    os_aliases.add(alias.asname or "os")

    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        what = _listing_call(node, os_aliases)
        if what is None:
            continue
        if _wrapped_order_insensitively(ctx, node):
            continue
        findings.append(
            ctx.finding(
                node,
                RULE,
                f"{what}() iterates in nondeterministic filesystem order; "
                "wrap the listing in sorted(...) where it is produced "
                "(or len(...) if only the count matters)",
            )
        )
    return findings
