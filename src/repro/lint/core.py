"""Shared machinery for the ``repro.lint`` contract checkers.

The linter is a thin orchestration layer over per-file and whole-project
checkers built on the stdlib :mod:`ast` module — no third-party dependency,
so it runs everywhere the library runs (including the numpy-fallback CI leg).

Vocabulary
----------

* A **checker module** exports ``RULE`` (the rule name used in findings,
  suppressions and ``--rules``) and either ``check(ctx)`` (per file) or
  ``check_project(contexts, config)`` (once per scan — used by the
  import-graph fingerprint-coverage walk).
* A :class:`ModuleContext` bundles everything a checker needs about one
  file: the parsed tree, the raw source, and where the file sits relative
  to the ``repro`` package (``rel``/``module`` are ``None`` for files
  outside it, e.g. when pointing the linter at a fixture directory).
* A :class:`Finding` is one violation.  Its :meth:`Finding.key` is
  line-number-free so baseline entries survive unrelated edits above the
  finding.

Suppressions
------------

A finding is dropped when the physical source line it is reported on
carries ``# lint: disable=<rule>`` (comma-separated rules, or ``all``).
Findings on multi-line statements are reported on the line of the
offending expression, so the comment goes there, not on the statement's
first line.

Baselines
---------

``load_baseline``/``write_baseline`` read and write the committed
``lint-baseline.json``: a JSON document whose ``suppressed`` entries are
``{"rule", "path", "message"}`` objects.  Baselined findings are filtered
out by :func:`apply_baseline`; the committed repo baseline is empty —
every real violation the checkers surfaced was fixed instead.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "FingerprintDecl",
    "LintConfig",
    "DEFAULT_CONFIG",
    "ModuleContext",
    "all_rules",
    "run_lint",
    "iter_python_files",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "render_text",
    "render_json",
]

#: ``# lint: disable=rule-a,rule-b`` (or ``disable=all``) on the reported line.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> str:
        """Line-free identity used for baseline matching."""
        return f"{self.rule}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class FingerprintDecl:
    """One fingerprint tuple the coverage walk must prove closed.

    ``declaring_file`` and every entry of the tuple are package-relative
    posix paths (``"otis/sweep.py"``).  ``exempt`` lists reachable files
    that are deliberately *not* in the tuple; each exemption needs a
    justification in docs/lint.md.  The default exempts ``version.py``
    because :func:`repro.otis.sweep.fingerprint_paths` already hashes
    ``repro.__version__`` directly — listing the file would double-count.
    """

    declaring_file: str
    variable: str
    exempt: tuple[str, ...] = ("version.py",)


@dataclass(frozen=True)
class LintConfig:
    """Repo-contract knobs; the defaults encode *this* repository's rules."""

    #: the package whose layout defines ``ModuleContext.rel``/``module``.
    package: str = "repro"

    #: package-relative prefixes whose modules must route wall-clock reads
    #: through injectable seams (the chaos harness only proves convergence
    #: for code it can freeze/skew).
    clock_seam_prefixes: tuple[str, ...] = ("fleet/", "serve/", "chaos/")

    #: ``(package-relative path, function qualname)`` pairs allowed to call
    #: ``time.time()``/``time.monotonic()`` directly — the declared seams
    #: themselves (e.g. a default-clock factory).  Empty: the repo's seams
    #: take clocks as constructor defaults, which are references, not calls.
    clock_seams: tuple[tuple[str, str], ...] = ()

    #: package-relative files whose writes land under store/lease/bench
    #: roots and therefore must be atomic (tmp+fsync+``os.replace``) or
    #: single-``os.write`` O_APPEND.
    atomic_write_files: tuple[str, ...] = (
        "otis/sweep.py",
        "fleet/leases.py",
        "fleet/driver.py",
        "fleet/status.py",
        "analysis/tables.py",
        "analysis/bench_check.py",
        "serve/registry.py",
        "simulation/sharding.py",
    )

    #: fingerprint tuples whose top-level import closure must be declared.
    fingerprint_decls: tuple[FingerprintDecl, ...] = (
        FingerprintDecl("otis/sweep.py", "_VERDICT_SOURCES"),
        FingerprintDecl("simulation/sharding.py", "_SIM_SOURCES"),
    )


DEFAULT_CONFIG = LintConfig()


@dataclass
class ModuleContext:
    """Everything the per-file checkers need about one source file."""

    path: Path
    display: str
    rel: str | None
    module: str | None
    source: str
    tree: ast.Module
    config: LintConfig
    _parents: dict | None = field(default=None, repr=False)

    def parents(self) -> dict:
        """Child-node -> parent-node map for ancestor walks (lazily built)."""
        if self._parents is None:
            parents: dict = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST):
        """Yield ``node``'s ancestors, innermost first."""
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def package_location(path: Path, package: str) -> tuple[str | None, str | None]:
    """``(rel, module)`` of ``path`` inside ``package``, or ``(None, None)``.

    ``rel`` is the posix path below the *last* directory named ``package``
    on the path (``fleet/driver.py``); ``module`` is the dotted module name
    (``repro.fleet.driver``).  Matching the last occurrence means a repo
    checked out under a directory that itself happens to be called
    ``repro`` still resolves correctly.
    """
    parts = path.parts
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == package:
            rel = "/".join(parts[i + 1 :])
            dotted = [package, *parts[i + 1 : -1]]
            stem = parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]
            if stem != "__init__":
                dotted.append(stem)
            return rel, ".".join(dotted)
    return None, None


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                seen.setdefault(child, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def _load_context(path: Path, root: Path, config: LintConfig) -> ModuleContext | Finding:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return Finding(
            path=_display(path, root),
            line=getattr(exc, "lineno", 1) or 1,
            col=0,
            rule="parse-error",
            message=f"could not parse file: {exc}",
        )
    rel, module = package_location(path, config.package)
    return ModuleContext(
        path=path,
        display=_display(path, root),
        rel=rel,
        module=module,
        source=source,
        tree=tree,
        config=config,
    )


def _display(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _suppressed(finding: Finding, source_lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _SUPPRESS_RE.search(source_lines[finding.line - 1])
    if match is None:
        return False
    rules = {part.strip() for part in match.group(1).split(",")}
    return "all" in rules or finding.rule in rules


def _checker_modules():
    # Imported lazily so checker modules can import this one freely.
    from repro.lint import (  # noqa: F401  (registry import)
        atomic_write,
        clock_seam,
        fingerprint,
        lock_discipline,
        private_access,
        sorted_iter,
    )

    file_checkers = {
        mod.RULE: mod.check
        for mod in (clock_seam, atomic_write, sorted_iter, lock_discipline, private_access)
    }
    project_checkers = {fingerprint.RULE: fingerprint.check_project}
    return file_checkers, project_checkers


def all_rules() -> tuple[str, ...]:
    file_checkers, project_checkers = _checker_modules()
    return tuple(sorted({*file_checkers, *project_checkers}))


def run_lint(
    paths: list[Path],
    *,
    config: LintConfig = DEFAULT_CONFIG,
    rules: tuple[str, ...] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the selected checkers over ``paths`` and return sorted findings.

    ``rules=None`` runs everything.  ``root`` anchors the displayed paths
    (defaults to the current working directory).  Inline suppressions are
    already applied; baseline subtraction is the caller's job
    (:func:`apply_baseline`) so ``--write-baseline`` can see raw findings.
    """
    file_checkers, project_checkers = _checker_modules()
    known = {*file_checkers, *project_checkers}
    selected = known if rules is None else set(rules)
    unknown = selected - known
    if unknown:
        raise ValueError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")

    root = Path.cwd() if root is None else root
    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    for path in iter_python_files(paths):
        loaded = _load_context(path, root, config)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        contexts.append(loaded)

    for ctx in contexts:
        lines = ctx.source.splitlines()
        for rule in sorted(selected & set(file_checkers)):
            for finding in file_checkers[rule](ctx):
                if not _suppressed(finding, lines):
                    findings.append(finding)

    sources = {ctx.rel: ctx.source.splitlines() for ctx in contexts if ctx.rel}
    displays = {ctx.display: ctx.rel for ctx in contexts}
    for rule in sorted(selected & set(project_checkers)):
        for finding in project_checkers[rule](contexts, config):
            rel = displays.get(finding.path)
            if rel and _suppressed(finding, sources.get(rel, [])):
                continue
            findings.append(finding)

    return sorted(findings)


# --------------------------------------------------------------------------
# baseline handling


def load_baseline(path: Path) -> set[str]:
    """Read a baseline file into a set of :meth:`Finding.key` strings."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "suppressed" not in data:
        raise ValueError(f"{path}: not a lint baseline (missing 'suppressed')")
    keys = set()
    for entry in data["suppressed"]:
        keys.add(f"{entry['rule']}:{entry['path']}:{entry['message']}")
    return keys


def apply_baseline(findings: list[Finding], keys: set[str]) -> list[Finding]:
    return [finding for finding in findings if finding.key() not in keys]


def write_baseline(findings: list[Finding], path: Path) -> None:
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message} for f in findings
    ]
    payload = {"version": 1, "suppressed": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------
# rendering


def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "repro lint: clean\n"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro lint: {len(findings)} finding(s)")
    return "\n".join(lines) + "\n"


def render_json(findings: list[Finding]) -> str:
    payload = {
        "findings": [finding.as_json() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
