"""private-access: no reaching across modules for ``_underscore`` names.

A single-underscore name is a module's (or class's) private surface: free
to change shape, rename or disappear without a deprecation dance.  The
moment another module imports or dereferences it, that freedom is gone —
silently, because nothing fails until the refactor lands.  The concrete
instance that motivated this rule: ``fleet/driver.py`` calling
``leases._expired(...)``, which pinned an internal lease-manager predicate
into the straggler-split policy.  The fix is always the same: promote the
name to a public method/function (keeping the old name as an alias for
compatibility) and depend on that.

The rule flags, per module:

* ``from repro.x import _name`` where ``repro.x`` is a *different* module
  (importing your own module's privates is impossible anyway);
* ``alias._name`` attribute access where ``alias`` is an imported
  ``repro.*`` module or an imported class/function from one; and
* ``var._name`` where ``var`` was assigned ``ImportedClass(...)`` — the
  linter's one bit of instance inference, deliberately limited to direct
  constructor calls so it never guesses.

``self._x``/``cls._x`` and dunders (``__version__``, ``__name__``) are
exempt, as is everything involving non-``repro`` modules — other
libraries' privacy is their linters' business.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, ModuleContext

RULE = "private-access"


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def check(ctx: ModuleContext) -> list[Finding]:
    package = ctx.config.package
    prefix = package + "."
    findings: list[Finding] = []

    #: local name -> originating repro module (dotted), for attribute checks.
    origins: dict[str, str] = {}
    #: imported callables (classes/factories) -> originating module.
    symbols: dict[str, str] = {}

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package or alias.name.startswith(prefix):
                    if alias.asname:
                        origins[alias.asname] = alias.name
                    # bare `import repro.x.y` binds `repro`; accessing
                    # privates through the root package is equally flagged.
                    else:
                        origins[package] = package
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            if node.module != package and not node.module.startswith(prefix):
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                if _is_private(alias.name) and node.module != ctx.module:
                    findings.append(
                        ctx.finding(
                            node,
                            RULE,
                            f"imports private name '{alias.name}' from "
                            f"{node.module}; promote it to a public name "
                            "(keep the old one as an alias) and import that",
                        )
                    )
                # Either a submodule (module alias) or a class/function
                # (symbol); both give `local._x` a cross-module origin.
                origins[local] = f"{node.module}.{alias.name}"
                symbols[local] = node.module

    #: var -> module, for `var = ImportedClass(...)` instances.
    instances: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in symbols
        ):
            instances[node.targets[0].id] = symbols[node.value.func.id]

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute) or not _is_private(node.attr):
            continue
        if not isinstance(node.value, ast.Name):
            continue
        name = node.value.id
        if name in ("self", "cls"):
            continue
        origin = origins.get(name) or instances.get(name)
        if origin is None or origin == ctx.module:
            continue
        findings.append(
            ctx.finding(
                node,
                RULE,
                f"access to private attribute '{node.attr}' of '{name}' "
                f"(from {origin}); promote it to a public name on that "
                "module/class instead",
            )
        )
    return findings
