"""fingerprint-coverage: verdict-defining code must be fingerprinted.

Chunk identity is ``params + code_version()``: ``fingerprint_paths`` hashes
the source bytes of every module listed in ``_VERDICT_SOURCES``
(otis/sweep.py) / ``_SIM_SOURCES`` (simulation/sharding.py), so editing
verdict-defining code renames every chunk and forces recomputation instead
of silently merging stale results.  The contract only holds if the tuples
actually *cover* the verdict paths — and nothing enforced that: a new
``import`` in a covered module quietly extends the verdict closure without
extending the fingerprint.

This checker closes that hole with an import-graph walk.  For each
declared tuple it parses the tuple literal out of the declaring module,
then BFS-walks **module-level imports** (including those under top-level
``if``/``try`` — e.g. optional-backend guards — but *not* imports inside
functions: lazy imports are runtime dependencies of a call, not of the
verdict definition) restricted to the ``repro`` package.  Every file
reachable from the declared set must itself be declared or explicitly
exempt (``FingerprintDecl.exempt``; ``version.py`` is exempt because
``fingerprint_paths`` hashes ``__version__`` directly).  Package
``__init__.py`` files are only followed when explicitly imported as a
module (``from repro import kernels``) — mere attribute traversal of a
parent package is namespace plumbing, not verdict logic.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.core import Finding, LintConfig, ModuleContext

RULE = "fingerprint-coverage"


def _declared_tuple(tree: ast.Module, variable: str):
    """``(entries, lineno)`` of the ``variable = ("a.py", ...)`` literal."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == variable for t in stmt.targets
        ):
            continue
        if isinstance(stmt.value, (ast.Tuple, ast.List)):
            entries = []
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append(element.value)
            return tuple(entries), stmt.lineno
    return None, None


def _top_level_imports(tree: ast.Module):
    """Import nodes executed at import time (module body, top-level if/try)."""
    stack = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


def _module_file(pkg_root: Path, tail: str) -> str | None:
    """Package-relative file for dotted ``tail`` below the package, if any."""
    if not tail:
        return None
    base = pkg_root.joinpath(*tail.split("."))
    if base.with_suffix(".py").is_file():
        return base.with_suffix(".py").relative_to(pkg_root).as_posix()
    if (base / "__init__.py").is_file():
        return (base / "__init__.py").relative_to(pkg_root).as_posix()
    return None


def _imports_of(rel: str, tree: ast.Module, pkg_root: Path, package: str):
    """Package-relative files imported at module level by ``rel``."""
    prefix = package + "."
    targets: set[str] = set()
    for node in _top_level_imports(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package or alias.name.startswith(prefix):
                    tail = alias.name[len(package) :].lstrip(".")
                    resolved = _module_file(pkg_root, tail)
                    if resolved:
                        targets.add(resolved)
        else:  # ImportFrom
            if node.level == 0:
                if node.module is None:
                    continue
                if node.module != package and not node.module.startswith(prefix):
                    continue
                tail = node.module[len(package) :].lstrip(".")
            else:
                base_parts = rel.split("/")[:-1]
                if rel.endswith("/__init__.py"):
                    base_parts = rel.split("/")[:-1]
                up = node.level - 1
                if up > len(base_parts):
                    continue
                base_parts = base_parts[: len(base_parts) - up]
                tail = ".".join(
                    base_parts + (node.module.split(".") if node.module else [])
                )
            for alias in node.names:
                sub = _module_file(pkg_root, f"{tail}.{alias.name}" if tail else alias.name)
                if sub is not None:
                    targets.add(sub)
                else:
                    mod = _module_file(pkg_root, tail)
                    if mod is not None:
                        targets.add(mod)
    return targets


def check_project(contexts: list[ModuleContext], config: LintConfig) -> list[Finding]:
    by_rel = {ctx.rel: ctx for ctx in contexts if ctx.rel is not None}
    findings: list[Finding] = []

    for decl in config.fingerprint_decls:
        declaring = by_rel.get(decl.declaring_file)
        if declaring is None:
            continue  # the declaring module was not part of this scan
        pkg_root = declaring.path.resolve().parents[
            len(decl.declaring_file.split("/")) - 1
        ]
        declared, lineno = _declared_tuple(declaring.tree, decl.variable)
        if declared is None:
            findings.append(
                Finding(
                    path=declaring.display,
                    line=1,
                    col=0,
                    rule=RULE,
                    message=(
                        f"could not find a literal tuple assignment "
                        f"'{decl.variable} = (...)' in {decl.declaring_file}"
                    ),
                )
            )
            continue

        declared_set = set(declared)
        exempt = set(decl.exempt)
        queue = sorted(declared_set)
        seen: set[str] = set(queue)
        reported: set[str] = set()
        importer_of: dict[str, str] = {}
        while queue:
            rel = queue.pop(0)
            path = pkg_root / rel
            if not path.is_file():
                findings.append(
                    Finding(
                        path=declaring.display,
                        line=lineno,
                        col=0,
                        rule=RULE,
                        message=(
                            f"{decl.variable} lists '{rel}' but "
                            f"{config.package}/{rel} does not exist"
                        ),
                    )
                )
                continue
            ctx = by_rel.get(rel)
            try:
                tree = ctx.tree if ctx is not None else ast.parse(
                    path.read_text(encoding="utf-8"), filename=str(path)
                )
            except (OSError, SyntaxError, ValueError):
                continue  # unparseable files surface via the parse-error rule
            for target in sorted(_imports_of(rel, tree, pkg_root, config.package)):
                if target == "__init__.py":
                    continue  # the root package namespace, never verdict logic
                if target not in seen:
                    seen.add(target)
                    importer_of[target] = rel
                    queue.append(target)
                if (
                    target not in declared_set
                    and target not in exempt
                    and target not in reported
                ):
                    reported.add(target)
                    importer = importer_of.get(target, rel)
                    findings.append(
                        Finding(
                            path=declaring.display,
                            line=lineno,
                            col=0,
                            rule=RULE,
                            message=(
                                f"module '{target}' is reachable from the "
                                f"{decl.variable} verdict path (imported by "
                                f"'{importer}') but is not fingerprinted; add "
                                f"it to {decl.variable} in {decl.declaring_file} "
                                "or exempt it with a documented justification"
                            ),
                        )
                    )
    return findings
