"""``repro.lint`` — AST contract checkers for this repository's invariants.

Nine PRs of growth accreted correctness contracts that nothing enforced
mechanically: chunk identity depends on fingerprinting every
verdict-defining module, the chaos harness only proves convergence for
code that routes clocks through injectable seams, and the fleet/serve
layers rely on atomic writes, sorted directory listings and lock-guarded
module state.  This package turns those conventions into CI-enforced
rules — stdlib :mod:`ast` only, no new dependencies.

Rules (see docs/lint.md for the full rationale of each):

========================  ==================================================
``clock-seam``            no bare ``time.time()``/``time.monotonic()`` calls
                          in fleet/serve/chaos modules outside declared seams
``atomic-write``          store/lease/bench writes use tmp+fsync+os.replace
                          or single-``os.write`` O_APPEND
``sorted-iteration``      ``glob()``/``listdir()`` results are sorted (or
                          only counted) where they are produced
``lock-discipline``       module-level mutable state in lock-declaring
                          modules mutates only under ``with <lock>:``
``fingerprint-coverage``  the import closure of ``_VERDICT_SOURCES`` /
                          ``_SIM_SOURCES`` is fully declared
``private-access``        no cross-module ``_underscore`` imports or
                          attribute access
========================  ==================================================

Entry points: ``repro lint`` (CLI) or :func:`run_lint` (programmatic).
"""

from repro.lint.core import (
    DEFAULT_CONFIG,
    Finding,
    FingerprintDecl,
    LintConfig,
    all_rules,
    apply_baseline,
    iter_python_files,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "FingerprintDecl",
    "LintConfig",
    "all_rules",
    "apply_baseline",
    "iter_python_files",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
