"""clock-seam: no bare wall-clock reads in chaos-covered modules.

The chaos harness (:mod:`repro.chaos`) proves fleet/serve convergence under
frozen and skewed clocks — but only for code that reads time through an
injectable seam (``LeaseManager(clock=..., monotonic=...)``,
``MetricsRegistry(clock=...)``).  A direct ``time.time()`` call inside
``fleet/``, ``serve/`` or ``chaos/`` is invisible to ``ChaosClock``: the
test sweeps pass while the production path takes a different branch.  This
is exactly how ``_maybe_split_stragglers`` regressed before this rule
existed.

What counts as a violation
--------------------------

A *call* to ``time.time`` or ``time.monotonic`` (through any import alias)
lexically inside a covered module.  References are fine — the canonical
seam pattern ``def __init__(self, *, clock=time.time)`` stores the function
without calling it, and stays allowed.  Declared seams
(``LintConfig.clock_seams`` as ``(rel_path, qualname)`` pairs) may call the
clock directly; they are the place the injected default comes from.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, ModuleContext

RULE = "clock-seam"

_CLOCK_FUNCS = ("time", "monotonic")


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext, module_aliases: set, func_aliases: dict):
        self.ctx = ctx
        self.module_aliases = module_aliases
        self.func_aliases = func_aliases
        self.allowed = {
            qualname
            for rel, qualname in ctx.config.clock_seams
            if rel == ctx.rel
        }
        self.stack: list[str] = []
        self.findings: list[Finding] = []

    def _enter(self, node):
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _enter
    visit_AsyncFunctionDef = _enter
    visit_ClassDef = _enter

    def _in_seam(self) -> bool:
        qualname = ".".join(self.stack)
        return any(
            qualname == seam or qualname.startswith(seam + ".")
            for seam in self.allowed
        )

    def visit_Call(self, node: ast.Call):
        func = node.func
        called = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CLOCK_FUNCS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.module_aliases
        ):
            called = func.attr
        elif isinstance(func, ast.Name) and func.id in self.func_aliases:
            called = self.func_aliases[func.id]
        if called is not None and not self._in_seam():
            self.findings.append(
                self.ctx.finding(
                    node,
                    RULE,
                    f"bare time.{called}() call in a chaos-covered module; "
                    "route it through an injected clock seam (e.g. the lease "
                    "manager's clock) or declare the seam in "
                    "LintConfig.clock_seams",
                )
            )
        self.generic_visit(node)


def check(ctx: ModuleContext) -> list[Finding]:
    if ctx.rel is None:
        return []
    if not any(ctx.rel.startswith(prefix) for prefix in ctx.config.clock_seam_prefixes):
        return []

    module_aliases: set[str] = set()
    func_aliases: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    module_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in _CLOCK_FUNCS:
                        func_aliases[alias.asname or alias.name] = alias.name

    if not module_aliases and not func_aliases:
        return []
    visitor = _Visitor(ctx, module_aliases, func_aliases)
    visitor.visit(ctx.tree)
    return visitor.findings
