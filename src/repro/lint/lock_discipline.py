"""lock-discipline: module-level mutable state mutates only under its lock.

PR 7's serve threads exposed exactly this class of bug: the module-level
routing-table LRU in ``repro.routing.paths`` was mutated from multiple
threads without a lock, corrupting the ``OrderedDict``.  The fix
established the repo's pattern — a module-level ``threading.Lock()`` /
``RLock()`` next to the state, every mutation inside ``with _LOCK:``
(``_TABLE_CACHE``/``_TABLE_CACHE_LOCK`` in routing/paths.py,
``_LIB_CACHE``/``_BUILD_LOCK`` in kernels/native.py).

The rule is deliberately opt-in by shape: it only examines modules that
define a module-level lock (no lock, no claim of thread-safety, no rule).
In those modules it finds the module-level mutable containers (dict/list/
set literals or ``dict()``/``OrderedDict()``/``defaultdict()``/... calls)
and the ``global``-rebound scalars, then requires every function-scope
mutation — subscript assignment, ``del``, augmented assignment, mutating
method calls (``append``/``pop``/``update``/``move_to_end``/...) and
``global`` rebinds — to sit lexically inside a ``with`` on one of the
module's locks.  Module top-level initialisation is exempt (imports run
single-threaded under the import lock); reads are exempt (callers decide
their own consistency needs, and flagging reads would drown the signal).
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, ModuleContext

RULE = "lock-discipline"

_LOCK_FACTORIES = ("Lock", "RLock")
_CONTAINER_CALLS = (
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
)
_CONTAINER_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "move_to_end",
        "appendleft",
        "popleft",
    }
)


def _module_level_names(ctx: ModuleContext):
    """(lock names, mutable-container names, all top-level assigned names)."""
    threading_aliases: set[str] = set()
    lock_ctors: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    threading_aliases.add(alias.asname or "threading")
        elif isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in _LOCK_FACTORIES:
                    lock_ctors.add(alias.asname or alias.name)

    locks: set[str] = set()
    containers: set[str] = set()
    assigned: set[str] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target] if isinstance(stmt.target, ast.Name) else []
            value = stmt.value
        else:
            continue
        names = {t.id for t in targets}
        assigned |= names
        if isinstance(value, ast.Call):
            func = value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _LOCK_FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id in threading_aliases
            ) or (isinstance(func, ast.Name) and func.id in lock_ctors):
                locks |= names
            elif isinstance(func, ast.Name) and func.id in _CONTAINER_CALLS:
                containers |= names
        elif isinstance(value, _CONTAINER_LITERALS):
            containers |= names
    return locks, containers, assigned


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext, locks, containers, rebindable):
        self.ctx = ctx
        self.locks = locks
        self.containers = containers
        self.rebindable = rebindable  # global-declared names assigned at top level
        self.func_depth = 0
        self.lock_depth = 0
        self.globals_stack: list[set] = []
        self.findings: list[Finding] = []

    def _enter_func(self, node):
        self.func_depth += 1
        self.globals_stack.append(set())
        self.generic_visit(node)
        self.globals_stack.pop()
        self.func_depth -= 1

    visit_FunctionDef = _enter_func
    visit_AsyncFunctionDef = _enter_func

    def visit_Global(self, node: ast.Global):
        if self.globals_stack:
            self.globals_stack[-1] |= set(node.names)

    def visit_With(self, node: ast.With):
        held = any(
            isinstance(item.context_expr, ast.Name)
            and item.context_expr.id in self.locks
            for item in node.items
        )
        if held:
            self.lock_depth += 1
        self.generic_visit(node)
        if held:
            self.lock_depth -= 1

    # -- mutation sites ----------------------------------------------------

    def _flag(self, node: ast.AST, name: str, action: str) -> None:
        if self.func_depth == 0 or self.lock_depth > 0:
            return
        self.findings.append(
            self.ctx.finding(
                node,
                RULE,
                f"{action} of module-level state '{name}' outside its lock; "
                "wrap the mutation in `with <module lock>:` "
                "(this module declares one, so the state is shared)",
            )
        )

    def _check_target(self, node, target) -> None:
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            if target.value.id in self.containers:
                self._flag(node, target.value.id, "subscript mutation")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(node, element)
        elif isinstance(target, ast.Name):
            declared_global = any(target.id in scope for scope in self.globals_stack)
            if declared_global and target.id in self.rebindable:
                self._flag(node, target.id, "global rebind")

    def visit_Assign(self, node: ast.Assign):
        for target in node.targets:
            self._check_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):
        self._check_target(node, node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id in self.containers:
                    self._flag(node, target.value.id, "subscript delete")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.containers
        ):
            self._flag(node, func.value.id, f".{func.attr}() mutation")
        self.generic_visit(node)


def check(ctx: ModuleContext) -> list[Finding]:
    locks, containers, assigned = _module_level_names(ctx)
    if not locks:
        return []

    rebindable = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Global):
            rebindable |= set(node.names) & assigned
    rebindable -= locks

    if not containers and not rebindable:
        return []
    visitor = _Visitor(ctx, locks, containers, rebindable)
    visitor.visit(ctx.tree)
    return visitor.findings
