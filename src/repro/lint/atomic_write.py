"""atomic-write: store/lease/bench files must publish atomically.

Everything under a chunk-store, lease or bench root is read concurrently
by other workers (often over NFS), so a partially written file is a
*protocol* error, not a cosmetic one: a torn ``chunk-*.jsonl`` corrupts a
merge, a torn lease breaks mutual exclusion.  The repo's two blessed write
shapes are

* **tmp + fsync + os.replace** — write to a temp name in the same
  directory, ``os.fsync``, then atomically ``os.replace`` onto the final
  name (``ChunkStore.write``, ``merge_bench_json``); and
* **single O_APPEND os.write** — one ``os.write`` on an
  ``O_CREAT | O_WRONLY | O_APPEND`` descriptor, which POSIX appends
  atomically for reasonable record sizes (``SplitVerdictCache.put``).

This rule flags, in the covered files (``LintConfig.atomic_write_files``):
``open(p, "w")``-style truncating/appending builtin or ``Path.open`` calls,
``Path.write_text``/``write_bytes``, and ``os.open`` with ``O_TRUNC`` (or
``O_WRONLY`` without ``O_APPEND``) — except when the target expression
mentions ``tmp``, which marks the first leg of the tmp+replace dance.
Read-only opens, ``O_RDWR`` lock-file descriptors and raw ``os.write`` on
an already-open fd are all untouched.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, ModuleContext

RULE = "atomic-write"

_MUTATING_MODE_CHARS = set("wax+")


def _mode_mutates(node: ast.Call, *, default: str) -> bool:
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if mode is None:
        return bool(_MUTATING_MODE_CHARS & set(default))
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_MUTATING_MODE_CHARS & set(mode.value))
    return False  # non-literal mode: give the benefit of the doubt


def _flag_names(expr: ast.AST) -> set[str]:
    names = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _is_tmp_target(target: ast.AST | None) -> bool:
    if target is None:
        return False
    return "tmp" in ast.unparse(target).lower()


def check(ctx: ModuleContext) -> list[Finding]:
    if ctx.rel is None or ctx.rel not in ctx.config.atomic_write_files:
        return []

    os_aliases: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "os":
                    os_aliases.add(alias.asname or "os")

    findings: list[Finding] = []

    def flag(node: ast.AST, target: ast.AST | None, what: str) -> None:
        if _is_tmp_target(target):
            return
        findings.append(
            ctx.finding(
                node,
                RULE,
                f"{what} in a store/lease/bench module is not atomic; "
                "publish via tmp + fsync + os.replace, or a single "
                "O_APPEND os.write",
            )
        )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if node.args and _mode_mutates(node, default="r"):
                flag(node, node.args[0], "builtin open() with a writable mode")
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            if isinstance(func.value, ast.Name) and func.value.id in os_aliases:
                if len(node.args) >= 2:
                    flags = _flag_names(node.args[1])
                    if "O_TRUNC" in flags or (
                        "O_WRONLY" in flags and "O_APPEND" not in flags
                    ):
                        flag(node, node.args[0], "truncating/non-append os.open()")
            elif _mode_mutates(node, default="r"):
                flag(node, func.value, ".open() with a writable mode")
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            flag(node, func.value, f".{func.attr}()")

    return findings
