"""Routing and collective communication on de Bruijn-like digraphs.

The paper's introduction motivates the de Bruijn digraph through the body of
routing, broadcasting and gossiping results that exist for it (refs. [3, 19,
28]).  This subpackage implements the standard algorithms so that the OTIS
layouts produced by :mod:`repro.otis` can actually be *used*: the discrete
event simulator (:mod:`repro.simulation`) routes messages with these tables.

* :mod:`repro.routing.paths` — shortest-path routing by word overlap on the
  de Bruijn and Kautz digraphs (O(D) per route, no search), plus generic BFS
  routing and all-pairs next-hop tables for arbitrary digraphs.
* :mod:`repro.routing.routers` — the pluggable :class:`Router` hierarchy the
  simulators route through: dense table (small n), table-free closed-form
  shift routing (de Bruijn/Kautz/``H(d^p', d^q', d)``), LRU of on-demand
  per-source rows (arbitrary large digraphs) — all bit-identical on routes.
* :mod:`repro.routing.broadcast` — BFS broadcast arborescences and
  single-port / all-port broadcast schedules.
* :mod:`repro.routing.gossip` — all-to-all (gossip) schedules and their round
  counts.
"""

from repro.routing.broadcast import (
    BroadcastSchedule,
    all_port_broadcast_schedule,
    breadth_first_arborescence,
    single_port_broadcast_schedule,
)
from repro.routing.gossip import GossipSchedule, all_port_gossip_schedule
from repro.routing.paths import (
    RoutingTable,
    bfs_route,
    build_routing_table,
    debruijn_distance,
    debruijn_route,
    kautz_route,
    routing_table_for,
    shift_route_next_hop,
    shift_route_next_hops,
)
from repro.routing.routers import (
    ROUTER_KINDS,
    ClosedFormRouter,
    DenseTableRouter,
    LruRowRouter,
    Router,
    make_router,
)

__all__ = [
    "debruijn_route",
    "debruijn_distance",
    "kautz_route",
    "bfs_route",
    "build_routing_table",
    "routing_table_for",
    "shift_route_next_hop",
    "shift_route_next_hops",
    "RoutingTable",
    "Router",
    "DenseTableRouter",
    "ClosedFormRouter",
    "LruRowRouter",
    "make_router",
    "ROUTER_KINDS",
    "breadth_first_arborescence",
    "single_port_broadcast_schedule",
    "all_port_broadcast_schedule",
    "BroadcastSchedule",
    "GossipSchedule",
    "all_port_gossip_schedule",
]
