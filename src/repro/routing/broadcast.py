"""Broadcast algorithms on digraph networks.

Broadcasting (one node informs everyone) is one of the classical collective
operations studied on the de Bruijn digraph (Bermond & Fraigniaud, ref. [3];
Pérennes, ref. [28]).  Two port models are implemented:

* **all-port** (also called the *shouting* model): in one round a node can
  send to all of its out-neighbours simultaneously.  The broadcast time from
  any node is then exactly its eccentricity — ``D`` rounds on ``B(d, D)``.
* **single-port** (the *whispering* model): a node can send to only one
  neighbour per round.  The schedule built here is the standard greedy one on
  the BFS arborescence: every informed node forwards to its still-uninformed
  children one per round, deepest subtree first.  It is not guaranteed
  optimal (optimal single-port broadcast is NP-hard in general) but matches
  the known ``D + O(log d)``-flavour behaviour on de Bruijn-like digraphs and
  gives the simulator a concrete schedule to execute.

Both functions return a :class:`BroadcastSchedule` listing, for every round,
the ``(sender, receiver)`` arcs used — the simulator replays these on top of
the OTIS link model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import BaseDigraph

__all__ = [
    "breadth_first_arborescence",
    "BroadcastSchedule",
    "all_port_broadcast_schedule",
    "single_port_broadcast_schedule",
]


def breadth_first_arborescence(graph: BaseDigraph, root: int) -> np.ndarray:
    """The BFS spanning arborescence rooted at ``root``.

    Returns ``parent`` with ``parent[root] = root`` and ``parent[v]`` the
    predecessor of ``v`` on a shortest path from the root; ``-1`` marks
    unreachable vertices.
    """
    n = graph.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if parent[v] < 0:
                parent[v] = u
                queue.append(v)
    return parent


@dataclass
class BroadcastSchedule:
    """A round-by-round broadcast schedule.

    Attributes
    ----------
    root:
        The originating node.
    rounds:
        ``rounds[t]`` is the list of ``(sender, receiver)`` arcs active in
        round ``t`` (0-based).
    informed_at:
        ``informed_at[v]`` is the round *after* which node ``v`` knows the
        message (0 for the root); ``-1`` if never informed.
    """

    root: int
    rounds: list[list[tuple[int, int]]]
    informed_at: np.ndarray

    @property
    def num_rounds(self) -> int:
        """Total number of communication rounds."""
        return len(self.rounds)

    def covers_all(self) -> bool:
        """True when every node ends up informed."""
        return bool(np.all(self.informed_at >= 0))

    def is_valid(self, graph: BaseDigraph, single_port: bool) -> bool:
        """Validate the schedule against the digraph and the port model.

        Checks that every transmission uses an existing arc, that senders are
        informed before they send, that receivers are not informed twice, and
        (for the single-port model) that no node sends twice in one round.
        """
        informed = {self.root}
        for round_arcs in self.rounds:
            senders_this_round: set[int] = set()
            new_nodes: set[int] = set()
            for sender, receiver in round_arcs:
                if not graph.has_arc(sender, receiver):
                    return False
                if sender not in informed:
                    return False
                if receiver in informed or receiver in new_nodes:
                    return False
                if single_port and sender in senders_this_round:
                    return False
                senders_this_round.add(sender)
                new_nodes.add(receiver)
            informed.update(new_nodes)
        return True


def all_port_broadcast_schedule(graph: BaseDigraph, root: int) -> BroadcastSchedule:
    """All-port broadcast: every informed node sends to all neighbours each round.

    Completes in ``eccentricity(root)`` rounds — ``D`` rounds from any node of
    ``B(d, D)``.
    """
    n = graph.num_vertices
    informed_at = np.full(n, -1, dtype=np.int64)
    informed_at[root] = 0
    frontier = [root]
    rounds: list[list[tuple[int, int]]] = []
    round_index = 0
    while frontier:
        round_index += 1
        arcs: list[tuple[int, int]] = []
        next_frontier: list[int] = []
        for u in frontier:
            for v in graph.out_neighbors(u):
                if informed_at[v] < 0:
                    informed_at[v] = round_index
                    arcs.append((u, v))
                    next_frontier.append(v)
        if arcs:
            rounds.append(arcs)
        frontier = next_frontier
    return BroadcastSchedule(root=root, rounds=rounds, informed_at=informed_at)


def single_port_broadcast_schedule(graph: BaseDigraph, root: int) -> BroadcastSchedule:
    """Single-port broadcast along the BFS arborescence, deepest subtree first.

    Every informed node forwards the message to one still-uninformed child of
    the BFS arborescence per round, serving the child with the deepest
    subtree first (the classical greedy rule that minimises the schedule on
    trees).
    """
    n = graph.num_vertices
    parent = breadth_first_arborescence(graph, root)
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if v != root and parent[v] >= 0:
            children[int(parent[v])].append(v)

    # Subtree heights guide the greedy order (deepest child first).
    height = np.zeros(n, dtype=np.int64)
    order = _topological_children_order(children, root)
    for v in reversed(order):
        if children[v]:
            height[v] = 1 + max(height[c] for c in children[v])

    for v in range(n):
        children[v].sort(key=lambda c: -int(height[c]))

    informed_at = np.full(n, -1, dtype=np.int64)
    informed_at[root] = 0
    pending: dict[int, deque[int]] = {root: deque(children[root])}
    rounds: list[list[tuple[int, int]]] = []
    round_index = 0
    while any(queue for queue in pending.values()):
        round_index += 1
        arcs: list[tuple[int, int]] = []
        newly_informed: list[int] = []
        for sender in list(pending):
            queue = pending[sender]
            if not queue:
                continue
            receiver = queue.popleft()
            arcs.append((sender, receiver))
            informed_at[receiver] = round_index
            newly_informed.append(receiver)
        for node in newly_informed:
            pending[node] = deque(children[node])
        rounds.append(arcs)
    return BroadcastSchedule(root=root, rounds=rounds, informed_at=informed_at)


def _topological_children_order(children: list[list[int]], root: int) -> list[int]:
    """Vertices of the arborescence in BFS order from the root."""
    order = [root]
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        for v in children[u]:
            order.append(v)
            queue.append(v)
    return order
