"""Gossiping (all-to-all broadcast) schedules.

In the gossip problem every node starts with its own message and all nodes
must learn all messages; it is the other collective the paper's introduction
cites for the de Bruijn digraph (Bermond & Fraigniaud, ref. [3]).  The
schedule implemented here is the natural *all-port store-and-forward* one:
in each round every node sends everything it currently knows to all of its
out-neighbours.  After ``t`` rounds node ``v`` knows the messages of every
node within in-distance ``t``, so the gossip completes in exactly
``diameter`` rounds on a strongly connected digraph — ``D`` rounds on
``B(d, D)`` and ``K(d, D)``.

The returned :class:`GossipSchedule` records how the knowledge sets grow
round by round; the simulator and the benchmarks use the per-round traffic
volume (messages crossing each arc) to compare topologies under the OTIS
link model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import BaseDigraph

__all__ = ["GossipSchedule", "all_port_gossip_schedule"]


@dataclass
class GossipSchedule:
    """Round-by-round progress of an all-port gossip.

    Attributes
    ----------
    num_rounds:
        Rounds needed for every node to know every message (-1 when the
        digraph is not strongly connected and gossip cannot complete).
    knowledge_counts:
        Array of shape ``(num_rounds + 1, n)``: entry ``[t, v]`` is the number
        of distinct messages node ``v`` knows after round ``t`` (row 0 is the
        initial state, all ones).
    arc_traffic:
        Total number of (message, arc) transmissions summed over the whole
        schedule — the bandwidth cost the benchmarks report.
    """

    num_rounds: int
    knowledge_counts: np.ndarray
    arc_traffic: int

    @property
    def num_nodes(self) -> int:
        """Number of participating nodes."""
        return int(self.knowledge_counts.shape[1])

    def completed(self) -> bool:
        """True when every node learned every message."""
        return self.num_rounds >= 0


def all_port_gossip_schedule(
    graph: BaseDigraph, max_rounds: int | None = None
) -> GossipSchedule:
    """Run the all-port store-and-forward gossip to completion.

    Parameters
    ----------
    graph:
        The network digraph; gossip completes iff it is strongly connected.
    max_rounds:
        Safety cap (defaults to ``n``, an upper bound on the diameter of any
        strongly connected digraph).

    Notes
    -----
    Knowledge sets are maintained as a boolean matrix ``K`` with ``K[v, s]``
    true when ``v`` knows the message of ``s``; one gossip round is the
    boolean update ``K[v] |= OR_{u in in(v)} K[u]``, evaluated with numpy on
    whole rows (no Python loop over messages).
    """
    n = graph.num_vertices
    if n == 0:
        return GossipSchedule(0, np.zeros((1, 0), dtype=np.int64), 0)
    cap = n if max_rounds is None else max_rounds

    in_neighbors: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in graph.out_neighbors(u):
            in_neighbors[v].append(u)

    knowledge = np.eye(n, dtype=bool)
    counts = [knowledge.sum(axis=1).astype(np.int64)]
    arc_traffic = 0
    rounds = 0
    while not knowledge.all():
        if rounds >= cap:
            return GossipSchedule(-1, np.stack(counts), arc_traffic)
        rounds += 1
        # Every node sends its whole current knowledge on every out-arc.
        arc_traffic += int(
            sum(
                knowledge[u].sum() * len(graph.out_neighbors(u))
                for u in range(n)
            )
        )
        new_knowledge = knowledge.copy()
        for v in range(n):
            for u in in_neighbors[v]:
                new_knowledge[v] |= knowledge[u]
        knowledge = new_knowledge
        counts.append(knowledge.sum(axis=1).astype(np.int64))
    return GossipSchedule(rounds, np.stack(counts), arc_traffic)
