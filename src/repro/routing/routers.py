"""Pluggable routers: table-free O(D) routing for million-node simulation.

The paper's central argument for de Bruijn/Kautz-based OTIS layouts is that
routing is *search-free*: the next hop is computable in O(D) from the word
labels alone, so no per-node state grows with ``n`` (Section 2, refs. [12,
19, 30]).  Until this module, the simulator contradicted that premise — it
materialised the dense ``(n, n)`` next-hop table of
:func:`repro.routing.paths.build_routing_table` (~1 GB at ``n = 8192``,
hopeless at ``n = 10^5``).  Three interchangeable :class:`Router`
implementations now cover the whole size range, all **bit-identical on
routes** (enforced by ``tests/test_routers.py``):

* :class:`DenseTableRouter` — wraps the all-pairs table; O(1) lookups,
  ``O(n^2)`` state.  The small-``n`` fast path.
* :class:`ClosedFormRouter` — shift routing on word labels
  (:func:`repro.routing.paths.shift_route_next_hops`), vectorised over whole
  ``(current, target)`` arrays.  O(D) per hop, O(n) state (two relabelling
  arrays; zero for the de Bruijn itself).  Covers ``B(d, D)``, ``K(d, D)``,
  ``RRK(d, d^D)``, ``II(d, d^D)`` and every ``H(d^p', d^q', d)`` whose split
  passes the Corollary 4.2 cyclicity test — the next hop is computed in de
  Bruijn word space and carried through the explicit isomorphism of
  Propositions 3.2/3.9/4.1.
* :class:`LruRowRouter` — for arbitrary digraphs: per-source next-hop rows
  computed on demand from ``d + 1`` subset-source distance sweeps
  (:func:`repro.graphs.apsp.subset_distance_rows`) and kept in a bounded LRU
  of rows.  ``O(max_rows * n)`` state, exact dense-table semantics.

Why the three agree bit-for-bit: the dense builder picks, for every pair,
the *lowest out-arc slot whose head is one step closer* to the target.  On a
de Bruijn-isomorphic digraph that neighbour is unique (appending a letter
grows the suffix/prefix overlap by at most one, and only the target's next
letter achieves it), so the closed form has no choice to make; and the LRU
rows apply literally the same lowest-slot rule to the same BFS distances.

:func:`make_router` picks a kind; ``"auto"`` keeps the dense table below
:data:`AUTO_DENSE_MAX_N` vertices and switches to the closed form (falling
back to LRU rows) above it, which is what lets ``repro sim`` run 100k
messages on topologies whose dense table would not fit in memory.
"""

from __future__ import annotations

import re
import threading

import numpy as np

from repro.graphs.apsp import (
    padded_predecessor_matrix,
    padded_successor_matrix,
    subset_distance_rows,
)
from repro.graphs.digraph import BaseDigraph
from repro.routing.paths import (
    RoutingTable,
    routing_table_for,
    shift_route_next_hop,
    shift_route_next_hops,
)

__all__ = [
    "Router",
    "DenseTableRouter",
    "ClosedFormRouter",
    "LruRowRouter",
    "ROUTER_KINDS",
    "AUTO_DENSE_MAX_N",
    "make_router",
    "resolve_router",
]

#: ``make_router(..., "auto")`` keeps the dense table up to this many
#: vertices (an ``(n, n)`` int64 table pair is ~64 MiB at the boundary) and
#: goes table-free above it.
AUTO_DENSE_MAX_N = 2048

#: Router kinds accepted by :func:`make_router` and the ``repro sim`` CLI.
ROUTER_KINDS = ("auto", "dense", "closed-form", "lru")


class Router:
    """Next-hop oracle used by the network simulators and the serve layer.

    Subclasses implement :meth:`next_hops` (vectorised, the batched engine's
    hot path) and :meth:`next_hop` (scalar, the reference loop and the
    batched engine's sparse-batch path).  Both must return, for every
    ``(source, target)`` pair, the *same* vertex the dense table of
    :func:`repro.routing.paths.build_routing_table` holds: the lowest-slot
    out-neighbour of ``source`` one BFS step closer to ``target`` (``source``
    itself on the diagonal, ``-1`` when unreachable).

    **Thread-safety contract.**  :meth:`next_hops` is the hot path, so the
    base class takes no lock around it; the contract is instead:

    * *Stateless* routers (:class:`DenseTableRouter`,
      :class:`ClosedFormRouter`) never mutate after construction and are safe
      for any number of concurrent reader threads with no synchronisation.
    * *Stateful* routers must serialise their own cache mutation internally
      (:class:`LruRowRouter` holds a private lock across each call), so
      callers never need an external lock — but a stateful router's calls may
      contend.  The simulators are single-writer by construction (one
      simulator thread owns its router); the serve layer relies on this
      contract to share one router between executor threads.
    """

    #: Kind string (matches the :data:`ROUTER_KINDS` entry that builds it).
    kind: str = ""

    def next_hop(self, source: int, target: int) -> int:
        """Next hop from ``source`` towards ``target`` (``-1`` unreachable)."""
        raise NotImplementedError

    def next_hops(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`next_hop` over aligned index arrays."""
        raise NotImplementedError

    def num_vertices(self) -> int:
        """Number of vertices of the routed topology."""
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Bytes of routing state currently held (the benchmarks record it)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary (CLI output)."""
        return f"{self.kind} router ({self.state_bytes()} bytes of state)"

    # ------------------------------------------------------ derived queries
    def path_lengths(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Vectorised hop counts of the routed paths (``-1`` unreachable).

        The generic implementation walks :meth:`next_hops` until every pair
        reaches its target, so the count is *exactly* the number of hops a
        message routed by this router takes — and because all router kinds
        are bit-identical on next hops, all kinds return bit-identical hop
        counts (the serve parity tests enforce this).  Routers with a
        distance table override this with an O(1) lookup.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        hops = np.zeros(sources.shape, dtype=np.int64)
        current = sources.copy()
        active = np.flatnonzero(current != targets)
        limit = self.num_vertices()
        steps = 0
        while active.size:
            if steps >= limit:  # pragma: no cover - defensive (cyclic router)
                raise RuntimeError(
                    "routing walk exceeded the vertex count: the router is "
                    "not converging to the target"
                )
            nxt = self.next_hops(current[active], targets[active])
            unreachable = nxt < 0
            if np.any(unreachable):
                hops[active[unreachable]] = -1
            current[active] = np.where(unreachable, targets[active], nxt)
            hops[active[~unreachable]] += 1
            still = current[active] != targets[active]
            active = active[still]
            steps += 1
        return hops

    def full_path(self, source: int, target: int) -> list[int] | None:
        """The routed path as a vertex list, or None when unreachable.

        Follows :meth:`next_hop` from ``source`` to ``target``; on every
        supported topology this is a shortest path (the next hop is always
        one BFS step closer).
        """
        path = [int(source)]
        current = int(source)
        limit = self.num_vertices()
        while current != target:
            nxt = self.next_hop(current, target)
            if nxt < 0:
                return None
            current = int(nxt)
            path.append(current)
            if len(path) > limit:  # pragma: no cover - defensive
                raise RuntimeError(
                    "routing walk exceeded the vertex count: the router is "
                    "not converging to the target"
                )
        return path

    def etas(
        self, sources: np.ndarray, targets: np.ndarray, link=None
    ) -> np.ndarray:
        """Uncongested delivery-time estimates for ``(source, target)`` pairs.

        A message over ``h`` hops on idle links arrives after
        ``h * (latency + transmission_time)`` time units (each hop pays the
        propagation latency plus the serialisation time; no queueing).
        ``link=None`` uses the default
        :class:`~repro.simulation.network.LinkModel`.  Unreachable pairs
        return ``-1.0``.
        """
        if link is None:
            from repro.simulation.network import LinkModel

            link = LinkModel()
        hops = self.path_lengths(sources, targets)
        per_hop = float(link.latency + link.transmission_time)
        eta = hops.astype(np.float64) * per_hop
        return np.where(hops < 0, -1.0, eta)


class DenseTableRouter(Router):
    """The all-pairs next-hop table as a :class:`Router` (small-``n`` path)."""

    kind = "dense"

    def __init__(self, table: RoutingTable):
        self.table = table

    def next_hop(self, source: int, target: int) -> int:
        return int(self.table.next_hop[source, target])

    def next_hops(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return self.table.next_hop[sources, targets]

    def num_vertices(self) -> int:
        return self.table.num_vertices

    def path_lengths(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        # O(1) per pair: the BFS distance *is* the walk length (every next
        # hop is one step closer), so this matches the generic walk exactly.
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        return self.table.distance[sources, targets]

    def state_bytes(self) -> int:
        return int(self.table.next_hop.nbytes + self.table.distance.nbytes)

    @classmethod
    def for_graph(cls, graph: BaseDigraph) -> "DenseTableRouter":
        """Build (or fetch from the shared LRU) the graph's dense table."""
        return cls(routing_table_for(graph))


# --------------------------------------------------------------------------
# Closed-form shift routing
# --------------------------------------------------------------------------
_NAME_PATTERNS = {
    "B": re.compile(r"^B\((\d+),(\d+)\)$"),
    "K": re.compile(r"^K\((\d+),(\d+)\)$"),
    "RRK": re.compile(r"^RRK\((\d+),(\d+)\)$"),
    "II": re.compile(r"^II\((\d+),(\d+)\)$"),
    "H": re.compile(r"^H\((\d+),(\d+),(\d+)\)$"),
}


def _power_exponent(value: int, base: int) -> int | None:
    """``e`` with ``base**e == value``, or None."""
    if value < 1 or base < 2:
        return None
    e = 0
    acc = 1
    while acc < value:
        acc *= base
        e += 1
    return e if acc == value else None


class ClosedFormRouter(Router):
    """Table-free O(D) shift routing on word labels.

    Every supported family is (isomorphic to) the de Bruijn digraph
    ``B(base', D)`` for a suitable alphabet: the router maps vertices to word
    codes, shifts in the unique overlap-extending letter
    (:func:`repro.routing.paths.shift_route_next_hops`) and maps back.  The
    per-vertex relabelling arrays are the only state — ``O(n)`` against the
    dense table's ``O(n^2)`` — and none at all for the de Bruijn digraph
    itself, whose vertices *are* their word codes.

    Parameters
    ----------
    base, D:
        Word alphabet size and length of the routing word space.
    to_code:
        Vertex -> word-code array (None: vertices are their own codes).
    from_code:
        Word-code -> vertex array (None: identity).  For the Kautz digraph
        the valid codes are sparse in ``Z_{(d+1)^D}``; pass
        ``sorted_codes=True`` and ``to_code`` doubles as the sorted code
        table decoded by binary search instead.
    """

    kind = "closed-form"

    def __init__(
        self,
        base: int,
        D: int,
        *,
        to_code: np.ndarray | None = None,
        from_code: np.ndarray | None = None,
        sorted_codes: bool = False,
        family: str = "de Bruijn",
    ):
        if base < 1 or D < 1:
            raise ValueError("base and D must be positive")
        self.base = int(base)
        self.D = int(D)
        self.family = family
        self._to_code = None if to_code is None else np.asarray(to_code, np.int64)
        self._from_code = (
            None if from_code is None else np.asarray(from_code, np.int64)
        )
        self._sorted_codes = bool(sorted_codes)
        if sorted_codes and self._to_code is None:
            raise ValueError("sorted_codes needs the code table in to_code")

    # ------------------------------------------------------------- routing
    def next_hop(self, source: int, target: int) -> int:
        if source == target:
            return source
        to_code = self._to_code
        u = int(to_code[source]) if to_code is not None else source
        v = int(to_code[target]) if to_code is not None else target
        code = shift_route_next_hop(u, v, self.base, self.D)
        return self._decode_scalar(code)

    def next_hops(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        to_code = self._to_code
        if to_code is not None:
            codes = shift_route_next_hops(
                to_code[sources], to_code[targets], self.base, self.D
            )
        else:
            codes = shift_route_next_hops(sources, targets, self.base, self.D)
        hops = self._decode(codes)
        # Equal codes already map back to the vertex itself; the diagonal
        # needs no special case beyond what shift_route_next_hops provides.
        return hops

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        if self._sorted_codes:
            return np.searchsorted(self._to_code, codes).astype(np.int64)
        if self._from_code is not None:
            return self._from_code[codes]
        return codes

    def _decode_scalar(self, code: int) -> int:
        if self._sorted_codes:
            return int(np.searchsorted(self._to_code, code))
        if self._from_code is not None:
            return int(self._from_code[code])
        return code

    def num_vertices(self) -> int:
        if self._to_code is not None:
            return int(self._to_code.shape[0])
        if self._from_code is not None:  # pragma: no cover - to_code set too
            return int(self._from_code.shape[0])
        return self.base**self.D

    def state_bytes(self) -> int:
        total = 0
        for array in (self._to_code, self._from_code):
            if array is not None:
                total += int(array.nbytes)
        return total

    def describe(self) -> str:
        return (
            f"closed-form shift router [{self.family}, base {self.base}, "
            f"D={self.D}] ({self.state_bytes()} bytes of state)"
        )

    # -------------------------------------------------------- constructors
    @classmethod
    def for_de_bruijn(cls, d: int, D: int) -> "ClosedFormRouter":
        """Router for ``B(d, D)`` (and ``RRK(d, d^D)``, the same digraph)."""
        return cls(d, D, family=f"B({d},{D})")

    @classmethod
    def for_kautz(
        cls, d: int, D: int, labels: list | None = None
    ) -> "ClosedFormRouter":
        """Router for ``K(d, D)``: codes are the words over ``Z_{d+1}``.

        Kautz vertices are numbered in lexicographic word order, so the code
        table is sorted and decoding is a binary search.
        """
        from repro.graphs.generators import kautz_words
        from repro.words import words_to_ints

        words = labels if labels is not None else kautz_words(d, D)
        codes = words_to_ints(np.asarray(words, dtype=np.int64), d + 1)
        if not np.all(np.diff(codes) > 0):  # pragma: no cover - defensive
            raise ValueError("Kautz labels are not in lexicographic order")
        return cls(
            d + 1, D, to_code=codes, sorted_codes=True, family=f"K({d},{D})"
        )

    @classmethod
    def for_imase_itoh(cls, d: int, D: int) -> "ClosedFormRouter":
        """Router for ``II(d, d^D)`` via the Proposition 3.3 isomorphism."""
        from repro.core.isomorphisms import (
            debruijn_to_imase_itoh_isomorphism,
            invert_mapping,
        )

        b_to_ii = debruijn_to_imase_itoh_isomorphism(d, D)
        return cls(
            d,
            D,
            to_code=invert_mapping(b_to_ii),
            from_code=b_to_ii,
            family=f"II({d},{d**D})",
        )

    @classmethod
    def for_h(cls, p: int, q: int, d: int) -> "ClosedFormRouter":
        """Router for ``H(p, q, d)`` with a de Bruijn-isomorphic power split.

        Requires ``p = d^p'``, ``q = d^q'`` and the Corollary 4.2 cyclicity
        test to pass; the vertex relabelling is the explicit isomorphism
        ``Ψ : B(d, D) -> H`` of Propositions 3.2/3.9/4.1
        (:func:`repro.core.isomorphisms.debruijn_to_alphabet_isomorphism`).

        Raises
        ------
        ValueError
            When the split is not a power split or fails the cyclicity test
            (then ``H`` is not a de Bruijn digraph and has no closed form —
            use :class:`LruRowRouter`).
        """
        from repro.core.checks import otis_alphabet_spec
        from repro.core.isomorphisms import (
            debruijn_to_alphabet_isomorphism,
            invert_mapping,
        )

        if d < 2:
            raise ValueError(f"H({p},{q},{d}): need d >= 2 for word routing")
        p_prime = _power_exponent(p, d)
        q_prime = _power_exponent(q, d)
        if p_prime is None or q_prime is None or p_prime < 1 or q_prime < 1:
            raise ValueError(
                f"H({p},{q},{d}) is not a power split H(d^p', d^q', d); "
                "no closed-form routing is known for it"
            )
        spec = otis_alphabet_spec(d, p_prime, q_prime)
        if not spec.is_debruijn_isomorphic():
            raise ValueError(
                f"H({p},{q},{d}) fails the Corollary 4.2 cyclicity test: it "
                "is not isomorphic to a de Bruijn digraph (Proposition 3.9), "
                "so shift routing does not apply"
            )
        b_to_h = debruijn_to_alphabet_isomorphism(spec)
        D = p_prime + q_prime - 1
        return cls(
            d,
            D,
            to_code=invert_mapping(b_to_h),
            from_code=b_to_h,
            family=f"H({p},{q},{d})≅B({d},{D})",
        )

    # ------------------------------------------------------------- factory
    @classmethod
    def for_graph(cls, graph: BaseDigraph) -> "ClosedFormRouter":
        """Recognise a supported family from the generator-assigned name.

        The generators of :mod:`repro.graphs.generators` and
        :func:`repro.otis.h_digraph.h_digraph` stamp canonical names
        (``B(d,D)``, ``K(d,D)``, ``RRK(d,n)``, ``II(d,n)``, ``H(p,q,d)``);
        anything else — or a named instance whose parameters do not admit
        shift routing — raises ``ValueError``.  A spot check of sampled
        successor rows guards against a renamed impostor graph.
        """
        name = graph.name or ""
        router: ClosedFormRouter | None = None
        match = _NAME_PATTERNS["B"].match(name)
        if match:
            d, D = map(int, match.groups())
            if graph.num_vertices != d**D:
                raise ValueError(f"{name}: vertex count is not d**D")
            router = cls.for_de_bruijn(d, D)
        if router is None:
            match = _NAME_PATTERNS["RRK"].match(name)
            if match:
                d, n = map(int, match.groups())
                D = _power_exponent(n, d)
                if D is None or D < 1 or graph.num_vertices != n:
                    raise ValueError(
                        f"{name}: only RRK(d, d**D) coincides with B(d, D); "
                        "no closed form otherwise"
                    )
                router = cls.for_de_bruijn(d, D)
        if router is None:
            match = _NAME_PATTERNS["II"].match(name)
            if match:
                d, n = map(int, match.groups())
                D = _power_exponent(n, d)
                if D is None or D < 1 or graph.num_vertices != n:
                    raise ValueError(
                        f"{name}: only II(d, d**D) is de Bruijn-isomorphic "
                        "with a closed-form relabelling here"
                    )
                router = cls.for_imase_itoh(d, D)
        if router is None:
            match = _NAME_PATTERNS["K"].match(name)
            if match:
                d, D = map(int, match.groups())
                expected = (d + 1) * d ** (D - 1)
                if graph.num_vertices != expected:
                    raise ValueError(f"{name}: vertex count is not (d+1)d^(D-1)")
                router = cls.for_kautz(d, D, labels=getattr(graph, "labels", None))
        if router is None:
            match = _NAME_PATTERNS["H"].match(name)
            if match:
                p, q, d = map(int, match.groups())
                if graph.num_vertices * d != p * q:
                    raise ValueError(f"{name}: vertex count is not p*q/d")
                router = cls.for_h(p, q, d)
        if router is None:
            raise ValueError(
                f"no closed-form routing for {name or 'unnamed digraph'!r} "
                f"(supported families: {sorted(_NAME_PATTERNS)})"
            )
        _spot_check(router, graph)
        return router

    @classmethod
    def supports(cls, graph: BaseDigraph) -> bool:
        """Whether :meth:`for_graph` would succeed (used by ``"auto"``)."""
        try:
            cls.for_graph(graph)
        except ValueError:
            return False
        return True


def _spot_check(router: ClosedFormRouter, graph: BaseDigraph, samples: int = 32) -> None:
    """Verify on sampled vertices that shift-routing hops are real arcs.

    Cheap (``O(samples * d)``) insurance against a graph whose *name*
    promises a family its arcs do not deliver; the full parity suite lives
    in the tests.
    """
    n = graph.num_vertices
    if n < 2:
        return
    rng = np.random.default_rng(0)
    sources = rng.integers(n, size=min(samples, n))
    targets = rng.integers(n, size=sources.size)
    hops = router.next_hops(sources, targets)
    for source, target, hop in zip(
        sources.tolist(), targets.tolist(), hops.tolist()
    ):
        if source == target:
            continue
        if hop not in graph.out_neighbors(source):
            raise ValueError(
                f"closed-form routing disagrees with the digraph: "
                f"{source} -> {hop} is not an arc of {graph.name!r} "
                "(the name does not match the topology)"
            )


# --------------------------------------------------------------------------
# LRU of per-source next-hop rows
# --------------------------------------------------------------------------
class LruRowRouter(Router):
    """On-demand per-source next-hop rows under a bounded LRU.

    For digraphs with no word structure the dense-table semantics are kept
    but the table is never materialised: when a source first routes, its
    whole next-hop row is computed from ``d + 1`` subset-source distance
    sweeps (:func:`repro.graphs.apsp.subset_distance_rows` over the source
    and its out-neighbours — ``dist(s, ·)`` and ``dist(w_j, ·)`` are all a
    row needs) and cached.  State is ``O(max_rows * n)``, bounded by
    ``max_bytes`` by default; eviction is least-recently-routed, with rows
    referenced by the in-flight batch pinned (a batch touching more sources
    than ``max_rows`` computes the overflow rows without caching them).

    Row entries are bit-identical to the dense table: the same BFS distances
    and the same "lowest out-arc slot one step closer" tie-break.
    """

    kind = "lru"

    def __init__(
        self,
        graph: BaseDigraph,
        *,
        max_rows: int | None = None,
        max_bytes: int = 64 << 20,
    ):
        self.graph = graph
        n = graph.num_vertices
        self._n = n
        self._successors = padded_successor_matrix(graph)
        self._predecessors = padded_predecessor_matrix(graph)
        if max_rows is None:
            max_rows = max(1, min(max(n, 1), max_bytes // max(8 * n, 1)))
        if max_rows < 1:
            raise ValueError("max_rows must be positive")
        self.max_rows = int(max_rows)
        self._rows = np.empty((self.max_rows, n), dtype=np.int64)
        self._slot_of = np.full(n, -1, dtype=np.int64) if n else np.zeros(0, np.int64)
        self._source_of = np.full(self.max_rows, -1, dtype=np.int64)
        self._last_used = np.zeros(self.max_rows, dtype=np.int64)
        self._used = 0
        self._tick = 0
        self.hits = 0
        self.misses = 0
        # Serialises cache mutation (insert/evict/tick) against concurrent
        # row reads: two threads racing next_hops could otherwise evict a
        # slot between another batch's slot lookup and its row read,
        # returning a different source's row.  Reentrant so next_hop can be
        # called from code already holding the lock.
        self._lock = threading.RLock()

    # -------------------------------------------------------------- pickle
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle; workers get a fresh one
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ----------------------------------------------------------- row maths
    def _compute_row(self, source: int) -> np.ndarray:
        """The dense table's row for ``source``, without the table."""
        heads = self._successors[source]
        sweep_sources = np.concatenate(([source], heads))
        dist = subset_distance_rows(
            self.graph, sweep_sources, predecessors=self._predecessors
        )
        from_source = dist[0]
        row = np.full(self._n, -1, dtype=np.int64)
        row[source] = source
        reachable = from_source > 0
        # Lowest arc slot wins ties — walk slots last-to-first, matching the
        # dense builder.  Padding heads repeat the source itself and can
        # never be one step closer.
        for j in range(heads.shape[0] - 1, -1, -1):
            closer = reachable & (dist[1 + j] == from_source - 1)
            row = np.where(closer, heads[j], row)
        return row

    def _evict_slot(self, pinned: np.ndarray | None) -> int | None:
        """Least-recently-used unpinned slot, or None when all are pinned."""
        age = self._last_used.copy()
        if pinned is not None:
            age[pinned] = np.iinfo(np.int64).max
        slot = int(np.argmin(age))
        if pinned is not None and pinned[slot]:
            return None
        return slot

    def _insert(self, source: int, pinned: np.ndarray | None = None) -> int | None:
        """Compute and cache the row of ``source``; returns its slot."""
        if self._used < self.max_rows:
            slot = self._used
            self._used += 1
        else:
            slot = self._evict_slot(pinned)
            if slot is None:
                return None
            old = int(self._source_of[slot])
            if old >= 0:
                self._slot_of[old] = -1
        self._rows[slot] = self._compute_row(source)
        self._source_of[slot] = source
        self._slot_of[source] = slot
        self._tick += 1
        self._last_used[slot] = self._tick
        return slot

    # ------------------------------------------------------------- routing
    def next_hop(self, source: int, target: int) -> int:
        with self._lock:
            slot = int(self._slot_of[source])
            if slot < 0:
                self.misses += 1
                slot = self._insert(source)
            else:
                self.hits += 1
                self._tick += 1
                self._last_used[slot] = self._tick
            return int(self._rows[slot, target])

    def next_hops(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.size == 0:
            return np.zeros(0, dtype=np.int64)
        with self._lock:
            return self._next_hops_locked(sources, targets)

    def _next_hops_locked(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        slots = self._slot_of[sources]
        missing = np.unique(sources[slots < 0])
        self.hits += int(np.unique(sources[slots >= 0]).size)
        self.misses += int(missing.size)
        overflow: dict[int, np.ndarray] = {}
        if missing.size:
            # Pin every slot the in-flight batch references so a miss storm
            # cannot evict a row before it is read.
            pinned = np.zeros(self.max_rows, dtype=bool)
            present = self._slot_of[sources]
            pinned[present[present >= 0]] = True
            for source in missing.tolist():
                slot = self._insert(source, pinned)
                if slot is None:  # batch touches more sources than max_rows
                    overflow[source] = self._compute_row(source)
                else:
                    pinned[slot] = True
            slots = self._slot_of[sources]
        touched = np.unique(slots[slots >= 0])
        if touched.size:
            self._tick += 1
            self._last_used[touched] = self._tick
        out = np.empty(sources.shape, dtype=np.int64)
        cached = slots >= 0
        out[cached] = self._rows[slots[cached], targets[cached]]
        if overflow:
            rest = np.flatnonzero(~cached)
            for i in rest.tolist():
                out[i] = overflow[int(sources[i])][targets[i]]
        return out

    # ---------------------------------------------------------------- misc
    def num_vertices(self) -> int:
        return self._n

    def cached_rows(self) -> int:
        """Number of rows currently cached."""
        with self._lock:
            return self._used

    def state_bytes(self) -> int:
        return int(
            self._used * self._n * 8
            + self._slot_of.nbytes
            + self._source_of.nbytes
            + self._last_used.nbytes
            + self._successors.nbytes
            + self._predecessors.nbytes
        )

    def describe(self) -> str:
        return (
            f"LRU row router [{self.cached_rows()}/{self.max_rows} rows] "
            f"({self.state_bytes()} bytes of state)"
        )


# --------------------------------------------------------------------------
# Selection
# --------------------------------------------------------------------------
def make_router(
    graph: BaseDigraph,
    kind: str = "auto",
    *,
    max_rows: int | None = None,
) -> Router:
    """Build a router of the requested ``kind`` for ``graph``.

    ``"auto"`` keeps the dense table while it is cheap (``n`` up to
    :data:`AUTO_DENSE_MAX_N`), then prefers the closed form and falls back
    to LRU rows — so small topologies keep their O(1) lookups and large ones
    never allocate ``O(n^2)``.
    """
    if kind not in ROUTER_KINDS:
        raise ValueError(f"unknown router kind {kind!r} (expected one of {ROUTER_KINDS})")
    if kind == "dense":
        return DenseTableRouter.for_graph(graph)
    if kind == "closed-form":
        return ClosedFormRouter.for_graph(graph)
    if kind == "lru":
        return LruRowRouter(graph, max_rows=max_rows)
    # auto
    if graph.num_vertices <= AUTO_DENSE_MAX_N:
        return DenseTableRouter.for_graph(graph)
    try:
        return ClosedFormRouter.for_graph(graph)
    except ValueError:
        return LruRowRouter(graph, max_rows=max_rows)


def resolve_router(
    graph: BaseDigraph,
    *,
    routing: RoutingTable | None = None,
    router: "Router | str | None" = None,
) -> Router:
    """Normalise the simulators' ``routing=`` / ``router=`` parameters.

    ``routing`` keeps its historical meaning (a precomputed dense
    :class:`~repro.routing.paths.RoutingTable`); ``router`` accepts a
    :class:`Router` instance or a :data:`ROUTER_KINDS` string.  Passing both
    is ambiguous and raises.
    """
    if routing is not None and router is not None:
        raise ValueError("pass either routing= (a dense table) or router=, not both")
    if routing is not None:
        if not isinstance(routing, RoutingTable):
            raise ValueError(
                "routing= expects a RoutingTable; pass Router instances via router="
            )
        return DenseTableRouter(routing)
    if router is None:
        return make_router(graph, "auto")
    if isinstance(router, Router):
        return router
    return make_router(graph, str(router))
