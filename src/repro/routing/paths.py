"""Shortest-path routing.

On the de Bruijn digraph the shortest path between two words is determined by
their longest suffix/prefix overlap: to go from ``x = x_{D-1} … x_0`` to
``y = y_{D-1} … y_0`` one shifts in the digits of ``y`` one at a time, and the
number of shifts needed is ``D - k`` where ``k`` is the length of the longest
suffix of ``x`` equal to a prefix of ``y`` (reading both words left to
right).  This gives an O(D)-time, search-free router — one of the properties
that make the de Bruijn attractive for the parallel machines the paper cites
(refs. [12, 19, 30]).

The Kautz digraph admits the same shift routing with the extra "no equal
consecutive letters" constraint automatically satisfied by its words.

For arbitrary digraphs (e.g. the raw ``H(p, q, d)`` of a candidate layout)
:func:`build_routing_table` computes all-pairs next-hop tables, by default on
the bit-parallel frontier machinery of :mod:`repro.graphs.apsp` (the
per-target reverse BFS survives as the cross-checked ``method="python"``
reference); the simulator uses the table directly.  When many workloads run
on one topology, :func:`routing_table_for` memoises the table in a small
bounded LRU (:func:`set_routing_table_cache_limit`) so the simulators and
the sweep driver share a single computation without dense tables piling up
across a long multi-topology sweep.

:func:`shift_route_next_hops` is the *vectorised* O(D) form of the word
routing: given whole arrays of ``(current, target)`` pairs (words encoded as
radix-``base`` integers) it computes every next hop with ``D`` passes of
numpy integer arithmetic and no Python loop over pairs.  It is the kernel of
the table-free :class:`repro.routing.routers.ClosedFormRouter`, and — because
the digit that shortens the suffix/prefix overlap is *unique* — its choices
are bit-identical to the dense table's "lowest arc slot one step closer"
rule (the router parity suite enforces this).
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.graphs.apsp import bit_distance_matrix, padded_successor_matrix
from repro.graphs.digraph import BaseDigraph
from repro.words import int_to_word, longest_overlap, word_to_int

__all__ = [
    "debruijn_route_words",
    "debruijn_route",
    "debruijn_distance",
    "kautz_route",
    "shift_route_next_hops",
    "shift_route_next_hop",
    "bfs_route",
    "RoutingTable",
    "build_routing_table",
    "routing_table_for",
    "set_routing_table_cache_limit",
    "routing_table_cache_info",
    "clear_routing_table_cache",
]


# --------------------------------------------------------------------------
# de Bruijn word routing
# --------------------------------------------------------------------------
def debruijn_route_words(
    source: tuple[int, ...], target: tuple[int, ...], d: int
) -> list[tuple[int, ...]]:
    """Shortest path between two de Bruijn words, as a list of words.

    The path has length ``D - k`` where ``k`` is the longest overlap between a
    suffix of ``source`` and a prefix of ``target``.

    >>> debruijn_route_words((1, 0, 1), (0, 1, 1), 2)
    [(1, 0, 1), (0, 1, 1)]
    """
    if len(source) != len(target):
        raise ValueError("source and target must have the same length")
    D = len(source)
    overlap = longest_overlap(source, target)
    path = [tuple(int(x) for x in source)]
    current = list(source)
    # Shift in the remaining D - overlap digits of the target, left to right.
    for position in range(overlap, D):
        current = current[1:] + [int(target[position])]
        path.append(tuple(current))
    return path


def debruijn_route(source: int, target: int, d: int, D: int) -> list[int]:
    """Shortest path between two de Bruijn vertices given as integers.

    Returns the list of intermediate vertices including both endpoints.  The
    result is a valid directed path of ``B(d, D)`` of minimal length.
    """
    words = debruijn_route_words(int_to_word(source, d, D), int_to_word(target, d, D), d)
    return [word_to_int(word, d) for word in words]


def debruijn_distance(source: int, target: int, d: int, D: int) -> int:
    """Distance from ``source`` to ``target`` in ``B(d, D)`` in O(D) time."""
    a = int_to_word(source, d, D)
    b = int_to_word(target, d, D)
    return D - longest_overlap(a, b)


# --------------------------------------------------------------------------
# Kautz word routing
# --------------------------------------------------------------------------
def kautz_route(
    source: tuple[int, ...], target: tuple[int, ...], d: int
) -> list[tuple[int, ...]]:
    """A shortest-or-near-shortest path between two Kautz words.

    The route shifts in the digits of ``target`` after the longest valid
    overlap, exactly as in the de Bruijn case; every intermediate word is a
    valid Kautz word because consecutive letters of both endpoint words
    already differ.  (For a few source/target pairs a path shorter by one hop
    exists through a different overlap; the simulator only needs a valid,
    near-minimal route, and the tests assert validity and length ``<= D``.)
    """
    if len(source) != len(target):
        raise ValueError("source and target must have the same length")
    D = len(source)
    for word in (source, target):
        for a, b in zip(word, word[1:]):
            if a == b:
                raise ValueError(f"{word} is not a Kautz word (equal consecutive letters)")
    overlap = longest_overlap(source, target)
    path = [tuple(int(x) for x in source)]
    current = list(source)
    for position in range(overlap, D):
        current = current[1:] + [int(target[position])]
        path.append(tuple(current))
    return path


# --------------------------------------------------------------------------
# Vectorised shift routing (words as radix integers)
# --------------------------------------------------------------------------
def shift_route_next_hops(
    current: np.ndarray, target: np.ndarray, base: int, D: int
) -> np.ndarray:
    """Next-hop word codes for whole arrays of ``(current, target)`` pairs.

    Words of length ``D`` over ``Z_base`` are encoded as integers
    ``sum x_i base**i`` (:func:`repro.words.word_to_int`).  For every pair
    the longest suffix(``current``)/prefix(``target``) overlap ``k`` is found
    with ``D - 1`` whole-array comparisons (a suffix of length ``j`` is
    ``current mod base**j``; a prefix of length ``j`` is
    ``target // base**(D-j)``), and the next hop shifts in the target's
    letter at position ``k``:  ``(current mod base**(D-1)) * base + digit``.

    The digit shifted in is the *unique* one that shortens the overlap
    (appending one letter can grow the longest overlap by at most 1, and
    only by appending exactly the target's next letter), so on the de Bruijn
    digraph — and on every digraph reached through an isomorphism onto it,
    including the Kautz digraph over ``Z_{d+1}`` — this next hop is the
    unique out-neighbour one step closer to the target, i.e. precisely the
    entry the dense table of :func:`build_routing_table` holds.

    ``current == target`` pairs return ``current`` (matching the dense
    table's diagonal); the simulators never ask for them.
    """
    current = np.asarray(current, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    if D < 1:
        raise ValueError("word length D must be positive")
    powers = base ** np.arange(D + 1, dtype=np.int64)
    overlap = np.zeros(current.shape, dtype=np.int64)
    # Ascending j with overwrite leaves the *largest* matching j in place.
    for j in range(1, D):
        match = (current % powers[j]) == (target // powers[D - j])
        overlap = np.where(match, j, overlap)
    digit = (target // powers[D - 1 - overlap]) % base
    next_code = (current % powers[D - 1]) * base + digit
    return np.where(current == target, current, next_code)


def shift_route_next_hop(current: int, target: int, base: int, D: int) -> int:
    """Scalar :func:`shift_route_next_hops` (no array round-trips).

    >>> shift_route_next_hop(0b101, 0b011, 2, 3)   # 101 -> 011 via overlap 01
    3
    """
    if current == target:
        return current
    overlap = 0
    for j in range(1, D):
        if current % base**j == target // base ** (D - j):
            overlap = j
    digit = (target // base ** (D - 1 - overlap)) % base
    return (current % base ** (D - 1)) * base + digit


# --------------------------------------------------------------------------
# Generic routing
# --------------------------------------------------------------------------
def bfs_route(graph: BaseDigraph, source: int, target: int) -> list[int] | None:
    """A shortest directed path in an arbitrary digraph, or None if unreachable."""
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("source/target out of range")
    if source == target:
        return [source]
    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if parent[v] < 0:
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(int(parent[path[-1]]))
                    return list(reversed(path))
                queue.append(v)
    return None


@dataclass
class RoutingTable:
    """All-pairs next-hop routing table of a digraph.

    ``next_hop[s, t]`` is the neighbour of ``s`` on a shortest path towards
    ``t`` (and ``s`` itself when ``s == t``); ``-1`` marks unreachable pairs.
    ``distance[s, t]`` is the corresponding hop count (``-1`` unreachable).
    """

    next_hop: np.ndarray
    distance: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Number of vertices the table covers."""
        return int(self.next_hop.shape[0])

    def route(self, source: int, target: int) -> list[int] | None:
        """Reconstruct the full path from the table (None when unreachable)."""
        if self.distance[source, target] < 0:
            return None
        path = [source]
        current = source
        while current != target:
            current = int(self.next_hop[current, target])
            path.append(current)
        return path

    def is_consistent(self, graph: BaseDigraph) -> bool:
        """Validate the table against the digraph (used by property tests)."""
        n = graph.num_vertices
        for s in range(n):
            neighbors = set(graph.out_neighbors(s))
            for t in range(n):
                hop = int(self.next_hop[s, t])
                if s == t:
                    if hop != s or self.distance[s, t] != 0:
                        return False
                    continue
                if self.distance[s, t] < 0:
                    if hop != -1:
                        return False
                    continue
                if hop not in neighbors:
                    return False
                if self.distance[hop, t] != self.distance[s, t] - 1:
                    return False
        return True


def build_routing_table(graph: BaseDigraph, method: str = "auto") -> RoutingTable:
    """Compute the all-pairs next-hop routing table.

    ``method="auto"``/``"bitset"`` extracts the distance matrix from the
    bit-parallel frontier sweep of :mod:`repro.graphs.apsp` and then picks,
    for every pair, the first out-arc whose head is one step closer to the
    target — a handful of whole-array operations per out-arc slot.
    ``method="python"`` is the original per-target reverse BFS, kept as the
    cross-checked reference (both produce identical ``distance`` arrays; the
    ``next_hop`` choices may differ between methods but are always heads of
    shortest-path arcs).
    """
    if method not in ("auto", "bitset", "python"):
        raise ValueError(f"unknown method {method!r}")
    if method == "python":
        return _build_routing_table_python(graph)

    n = graph.num_vertices
    distance = bit_distance_matrix(graph)
    successors = padded_successor_matrix(graph)
    next_hop = np.full((n, n), -1, dtype=np.int64)
    if n:
        np.fill_diagonal(next_hop, np.arange(n, dtype=np.int64))
    reachable = distance > 0
    # Walk the arc slots last-to-first so the lowest slot wins ties, matching
    # construction order.  Padding entries (the vertex itself) can never
    # satisfy "one step closer" and are ignored automatically.
    for j in range(successors.shape[1] - 1, -1, -1):
        heads = successors[:, j]
        closer = reachable & (distance[heads, :] == distance - 1)
        next_hop = np.where(closer, heads[:, None], next_hop)
    return RoutingTable(next_hop=next_hop, distance=distance)


#: Bounded LRU of dense routing tables, keyed ``(graph token, method slot)``.
#: Dense tables are the single largest allocations a multi-topology sweep
#: makes (``O(n^2)`` each); pinning one to every graph instance for the
#: graph's lifetime — the previous scheme — made long sweeps accumulate
#: them without bound.  The default limit keeps the working set of the
#: throughput drivers (a handful of live topologies) fully cached.
_TABLE_CACHE: OrderedDict[tuple[str, str], RoutingTable] = OrderedDict()
_TABLE_CACHE_LIMIT = 4
_TABLE_CACHE_HITS = 0
_TABLE_CACHE_MISSES = 0
_table_tokens = itertools.count()
#: Guards every mutation of the module-level LRU above.  The cache is shared
#: by all threads of a process (the serve workers hit it from an executor),
#: and ``OrderedDict`` eviction racing a concurrent insert can corrupt the
#: dict or evict an entry mid-read.  Table *contents* are immutable once
#: built, so only the dict bookkeeping needs the lock — builds run outside
#: it (two threads missing on the same graph both build; the insert is
#: idempotent).
_TABLE_CACHE_LOCK = threading.RLock()


def _fresh_token_id() -> str:
    """A per-graph cache token unique to this process.

    ``BaseDigraph.__getstate__`` strips tokens before pickling, but a
    subclass overriding pickling could still carry one across a process
    boundary — where a bare counter restarts at 0 and would alias another
    graph's table.  Qualifying the token with the pid makes a foreign
    token miss (a fresh one is then issued) instead of silently matching.
    """
    return f"{os.getpid()}-{next(_table_tokens)}"


def set_routing_table_cache_limit(limit: int) -> None:
    """Resize the shared routing-table LRU (``0`` disables caching)."""
    global _TABLE_CACHE_LIMIT
    if limit < 0:
        raise ValueError("cache limit must be non-negative")
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE_LIMIT = int(limit)
        while len(_TABLE_CACHE) > _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.popitem(last=False)


def routing_table_cache_info() -> dict[str, int]:
    """Counters and occupancy of the routing-table LRU (for tests/benches)."""
    with _TABLE_CACHE_LOCK:
        return {
            "entries": len(_TABLE_CACHE),
            "limit": _TABLE_CACHE_LIMIT,
            "hits": _TABLE_CACHE_HITS,
            "misses": _TABLE_CACHE_MISSES,
        }


def clear_routing_table_cache() -> None:
    """Drop every cached table (and reset the hit/miss counters)."""
    global _TABLE_CACHE_HITS, _TABLE_CACHE_MISSES
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE.clear()
        _TABLE_CACHE_HITS = 0
        _TABLE_CACHE_MISSES = 0


def routing_table_for(graph: BaseDigraph, method: str = "auto") -> RoutingTable:
    """Memoised :func:`build_routing_table` through a bounded, evictable LRU.

    The all-pairs table is a pure function of the topology, and the workload
    driver (:func:`repro.simulation.workloads.run_throughput_sweep`) builds
    many simulators over one graph — recomputing the ``O(n^2)`` table per
    workload would dwarf the simulation itself.  Tables live in a shared
    LRU bounded by :func:`set_routing_table_cache_limit` (so a sweep over
    many topologies recycles the memory of the ones it has moved past,
    instead of pinning a dense table to every graph it ever touched), keyed
    by a per-graph token stored on the instance.  Mutating a
    :class:`~repro.graphs.digraph.Digraph` drops the token (its mutators
    invalidate ``_routing_table_cache``), so the next request computes a
    fresh table; a cheap ``(n, m)`` signature additionally guards against
    mutation of exotic :class:`~repro.graphs.digraph.BaseDigraph` subclasses
    that bypass those mutators — a subclass that changes its arc *multiset*
    without changing ``n`` or ``m`` must call :func:`build_routing_table`
    directly.

    ``method="auto"`` and ``method="bitset"`` share one cache slot (they
    produce the same table); ``method="python"`` is cached separately.
    """
    global _TABLE_CACHE_HITS, _TABLE_CACHE_MISSES
    if method not in ("auto", "bitset", "python"):
        raise ValueError(f"unknown method {method!r}")
    slot = "bitset" if method in ("auto", "bitset") else "python"
    signature = (graph.num_vertices, graph.num_arcs)
    token = getattr(graph, "_routing_table_cache", None)
    if token is None or token[0] != signature:
        token = (signature, _fresh_token_id())
        try:
            graph._routing_table_cache = token
        except AttributeError:  # pragma: no cover - exotic graph classes w/ slots
            with _TABLE_CACHE_LOCK:
                _TABLE_CACHE_MISSES += 1
            return build_routing_table(graph, method=method)
    key = (token[1], slot)
    with _TABLE_CACHE_LOCK:
        cached = _TABLE_CACHE.get(key)
        if cached is not None:
            _TABLE_CACHE.move_to_end(key)
            _TABLE_CACHE_HITS += 1
            return cached
        _TABLE_CACHE_MISSES += 1
    # Build outside the lock: tables are immutable once built, so two
    # threads missing on the same graph at worst build twice and the second
    # insert wins — the lock only has to keep the dict bookkeeping sound.
    table = build_routing_table(graph, method=method)
    with _TABLE_CACHE_LOCK:
        existing = _TABLE_CACHE.get(key)
        if existing is not None:
            _TABLE_CACHE.move_to_end(key)
            return existing
        if _TABLE_CACHE_LIMIT > 0:
            _TABLE_CACHE[key] = table
            while len(_TABLE_CACHE) > _TABLE_CACHE_LIMIT:
                _TABLE_CACHE.popitem(last=False)
    return table


def _build_routing_table_python(graph: BaseDigraph) -> RoutingTable:
    """Reference implementation: one reverse BFS per target.

    Complexity ``O(n (n + m))``; fine for the network sizes the simulator
    handles (up to a few thousand nodes).
    """
    n = graph.num_vertices
    # Reverse adjacency so one BFS per *target* fills a whole column.
    reverse_adj: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in graph.out_neighbors(u):
            reverse_adj[v].append(u)

    next_hop = np.full((n, n), -1, dtype=np.int64)
    distance = np.full((n, n), -1, dtype=np.int64)
    for target in range(n):
        distance[target, target] = 0
        next_hop[target, target] = target
        queue: deque[int] = deque([target])
        while queue:
            v = queue.popleft()
            for u in reverse_adj[v]:
                if distance[u, target] < 0:
                    distance[u, target] = distance[v, target] + 1
                    next_hop[u, target] = v
                    queue.append(u)
    return RoutingTable(next_hop=next_hop, distance=distance)
