"""Integer-labelled digraph data structures.

Two concrete classes are provided, sharing the :class:`BaseDigraph`
interface:

* :class:`Digraph` — a mutable adjacency-list digraph, convenient while a
  graph is being *constructed* (e.g. by the OTIS wiring code or by the
  degree–diameter search).
* :class:`RegularDigraph` — an immutable digraph of constant out-degree ``d``
  whose arcs are stored as an ``(n, d)`` numpy successor matrix.  All the
  digraph families in this library (de Bruijn, Kautz, Imase–Itoh, ``H(p,q,d)``,
  ``A(f, sigma, j)``) are out-regular, and the successor-matrix form lets the
  hot paths (diameter sweeps for Table 1, isomorphism certificates, the
  network simulator) operate on whole numpy arrays instead of Python loops,
  per the HPC guideline of vectorising the bottleneck.

Vertices are always the integers ``0 .. n-1``.  Loops and parallel arcs are
allowed — the de Bruijn digraph has ``d`` loops, and conjunctions with small
circuits can create parallel arcs.  Arc multiplicity is therefore tracked
everywhere (arc multisets, not arc sets).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse

__all__ = ["BaseDigraph", "Digraph", "RegularDigraph"]

Arc = tuple[int, int]


class BaseDigraph:
    """Common read-only interface shared by :class:`Digraph` and
    :class:`RegularDigraph`.

    Subclasses must implement :attr:`num_vertices` and
    :meth:`out_neighbors`; everything else is derived.
    """

    #: Optional human-readable name (e.g. ``"B(2,3)"``), set by generators.
    name: str = ""

    # ----------------------------------------------------------- interface
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``; vertices are ``0 .. n-1``."""
        raise NotImplementedError

    def out_neighbors(self, u: int) -> list[int]:
        """Successors of ``u``, with multiplicity, in construction order."""
        raise NotImplementedError

    # ------------------------------------------------------------- derived
    def __len__(self) -> int:
        return self.num_vertices

    def vertices(self) -> range:
        """The vertex set as a range object."""
        return range(self.num_vertices)

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self.num_vertices:
            raise ValueError(
                f"vertex {u} out of range for digraph on {self.num_vertices} vertices"
            )

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all arcs ``(u, v)`` with multiplicity."""
        for u in self.vertices():
            for v in self.out_neighbors(u):
                yield (u, v)

    def arc_multiset(self) -> Counter[Arc]:
        """Multiset of arcs, for equality and isomorphism verification."""
        return Counter(self.arcs())

    @property
    def num_arcs(self) -> int:
        """Total number of arcs ``m`` (counting multiplicity)."""
        return sum(self.out_degree(u) for u in self.vertices())

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u`` (counting multiplicity)."""
        return len(self.out_neighbors(u))

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees of every vertex (counting multiplicity)."""
        degrees = np.zeros(self.num_vertices, dtype=np.int64)
        for _, v in self.arcs():
            degrees[v] += 1
        return degrees

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees of every vertex (counting multiplicity)."""
        return np.array(
            [self.out_degree(u) for u in self.vertices()], dtype=np.int64
        )

    def in_neighbors(self, v: int) -> list[int]:
        """Predecessors of ``v`` with multiplicity (O(m); prefer batch use)."""
        self._check_vertex(v)
        return [u for u, w in self.arcs() if w == v]

    def has_arc(self, u: int, v: int) -> bool:
        """True when there is at least one arc from ``u`` to ``v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self.out_neighbors(u)

    def is_out_regular(self) -> bool:
        """True when every vertex has the same out-degree."""
        degrees = self.out_degrees()
        return bool(degrees.size == 0 or np.all(degrees == degrees[0]))

    def is_regular(self) -> bool:
        """True when every in-degree and out-degree equals the same constant."""
        out_deg = self.out_degrees()
        in_deg = self.in_degrees()
        if out_deg.size == 0:
            return True
        d = out_deg[0]
        return bool(np.all(out_deg == d) and np.all(in_deg == d))

    def num_loops(self) -> int:
        """Number of loops (arcs ``(u, u)``), counting multiplicity."""
        return sum(1 for u, v in self.arcs() if u == v)

    def successor_matrix(self) -> np.ndarray:
        """The ``(n, d)`` numpy successor matrix (requires out-regularity)."""
        if not self.is_out_regular():
            raise ValueError("successor_matrix requires an out-regular digraph")
        n = self.num_vertices
        if n == 0:
            return np.zeros((0, 0), dtype=np.int64)
        d = self.out_degree(0)
        matrix = np.empty((n, d), dtype=np.int64)
        for u in self.vertices():
            matrix[u, :] = self.out_neighbors(u)
        return matrix

    def adjacency_matrix(self) -> sparse.csr_matrix:
        """Sparse adjacency matrix with arc multiplicities as entries."""
        n = self.num_vertices
        rows, cols = [], []
        for u, v in self.arcs():
            rows.append(u)
            cols.append(v)
        data = np.ones(len(rows), dtype=np.int64)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, n), dtype=np.int64
        )

    def to_digraph(self) -> "Digraph":
        """Copy into a mutable :class:`Digraph`."""
        graph = Digraph(self.num_vertices, name=self.name)
        for u, v in self.arcs():
            graph.add_arc(u, v)
        return graph

    def to_regular(self) -> "RegularDigraph":
        """Copy into an immutable :class:`RegularDigraph` (must be out-regular)."""
        return RegularDigraph(self.successor_matrix(), name=self.name)

    # ------------------------------------------------------------ pickling
    def __getstate__(self):
        # The routing-table cache token (repro.routing.paths) is only
        # meaningful inside the process that issued it: shipped to another
        # process (e.g. a sharded-simulation worker) it could collide with a
        # token issued there and alias a different topology's table.  Strip
        # it, so unpickled graphs start with a fresh token.
        state = self.__dict__.copy()
        state.pop("_routing_table_cache", None)
        return state

    # ------------------------------------------------------------- equality
    def same_arcs(self, other: "BaseDigraph") -> bool:
        """True when both digraphs have identical vertex count and arc multisets.

        This is *labelled* equality, not isomorphism; use
        :func:`repro.graphs.isomorphism.are_isomorphic` for the latter.
        """
        return (
            self.num_vertices == other.num_vertices
            and self.arc_multiset() == other.arc_multiset()
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} n={self.num_vertices} "
            f"m={self.num_arcs}>"
        )


class Digraph(BaseDigraph):
    """A mutable adjacency-list digraph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    arcs:
        Optional iterable of ``(u, v)`` pairs to add immediately.
    name:
        Optional descriptive name.
    """

    def __init__(
        self,
        num_vertices: int,
        arcs: Iterable[Arc] | None = None,
        name: str = "",
    ):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._n = int(num_vertices)
        self._succ: list[list[int]] = [[] for _ in range(self._n)]
        self.name = name
        if arcs is not None:
            for u, v in arcs:
                self.add_arc(u, v)

    @property
    def num_vertices(self) -> int:
        return self._n

    def out_neighbors(self, u: int) -> list[int]:
        self._check_vertex(u)
        return list(self._succ[u])

    def _invalidate_caches(self) -> None:
        # Derived structures memoised on the instance (e.g. the routing table
        # of repro.routing.paths.routing_table_for) must not survive a
        # topology mutation.
        self.__dict__.pop("_routing_table_cache", None)

    def add_arc(self, u: int, v: int) -> None:
        """Add an arc ``(u, v)``; parallel arcs and loops are allowed."""
        self._check_vertex(u)
        self._check_vertex(v)
        self._succ[u].append(v)
        self._invalidate_caches()

    def add_arcs(self, arcs: Iterable[Arc]) -> None:
        """Add many arcs at once."""
        for u, v in arcs:
            self.add_arc(u, v)

    def remove_arc(self, u: int, v: int) -> None:
        """Remove one copy of the arc ``(u, v)``; raises if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            self._succ[u].remove(v)
        except ValueError as exc:
            raise ValueError(f"arc ({u}, {v}) not present") from exc
        self._invalidate_caches()

    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its label."""
        self._succ.append([])
        self._n += 1
        self._invalidate_caches()
        return self._n - 1

    def copy(self) -> "Digraph":
        """An independent copy of this digraph."""
        graph = Digraph(self._n, name=self.name)
        graph._succ = [list(successors) for successors in self._succ]
        return graph


class RegularDigraph(BaseDigraph):
    """An immutable out-regular digraph stored as an ``(n, d)`` successor matrix.

    ``successors[u, k]`` is the head of the ``k``-th arc leaving ``u``.  The
    matrix is kept read-only; construction-time validation guarantees every
    entry is a valid vertex.

    Parameters
    ----------
    successors:
        Array-like of shape ``(n, d)``.
    name:
        Optional descriptive name (e.g. ``"B(2,4)"``).
    labels:
        Optional sequence of ``n`` vertex labels (e.g. the length-``D`` words
        labelling de Bruijn vertices); purely informational.
    """

    def __init__(
        self,
        successors: np.ndarray | Sequence[Sequence[int]],
        name: str = "",
        labels: Sequence[object] | None = None,
    ):
        matrix = np.array(successors, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError("successors must be a 2-D (n, d) array")
        n = matrix.shape[0]
        if matrix.size and (matrix.min() < 0 or matrix.max() >= n):
            raise ValueError("successor entries must be vertices in 0..n-1")
        matrix.setflags(write=False)
        self._succ = matrix
        self.name = name
        if labels is not None and len(labels) != n:
            raise ValueError("labels must have one entry per vertex")
        self.labels = list(labels) if labels is not None else None

    @property
    def num_vertices(self) -> int:
        return int(self._succ.shape[0])

    @property
    def degree(self) -> int:
        """The constant out-degree ``d``."""
        return int(self._succ.shape[1])

    @property
    def successors(self) -> np.ndarray:
        """The read-only ``(n, d)`` successor matrix."""
        return self._succ

    def out_neighbors(self, u: int) -> list[int]:
        self._check_vertex(u)
        return [int(v) for v in self._succ[u]]

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        return self.degree

    @property
    def num_arcs(self) -> int:
        return self.num_vertices * self.degree

    def successor_matrix(self) -> np.ndarray:
        return self._succ

    def in_degrees(self) -> np.ndarray:
        return np.bincount(
            self._succ.ravel(), minlength=self.num_vertices
        ).astype(np.int64)

    def adjacency_matrix(self) -> sparse.csr_matrix:
        n, d = self._succ.shape
        rows = np.repeat(np.arange(n, dtype=np.int64), d)
        cols = self._succ.ravel()
        data = np.ones(n * d, dtype=np.int64)
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n), dtype=np.int64)

    def relabel(self, mapping: Sequence[int] | np.ndarray) -> "RegularDigraph":
        """Return the digraph with vertex ``u`` renamed ``mapping[u]``.

        ``mapping`` must be a permutation of ``0 .. n-1``.  The result has an
        arc ``(mapping[u], mapping[v])`` for every arc ``(u, v)``.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        n = self.num_vertices
        if mapping.shape != (n,) or sorted(mapping.tolist()) != list(range(n)):
            raise ValueError("mapping must be a permutation of the vertex set")
        new_succ = np.empty_like(self._succ)
        new_succ[mapping, :] = mapping[self._succ]
        labels = None
        if self.labels is not None:
            labels = [None] * n
            for u in range(n):
                labels[mapping[u]] = self.labels[u]
        return RegularDigraph(new_succ, name=self.name, labels=labels)

    def reverse(self) -> "Digraph":
        """The digraph with every arc reversed (``G^-`` in the paper)."""
        graph = Digraph(self.num_vertices, name=f"reverse({self.name})" if self.name else "")
        n, d = self._succ.shape
        for u in range(n):
            for k in range(d):
                graph.add_arc(int(self._succ[u, k]), u)
        return graph

    def label_of(self, u: int) -> object:
        """The stored label of vertex ``u`` (or ``u`` itself if unlabelled)."""
        self._check_vertex(u)
        if self.labels is None:
            return u
        return self.labels[u]
