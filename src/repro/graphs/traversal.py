"""Traversal algorithms: BFS distances, connected components, reachability.

The degree–diameter search of Table 1 performs thousands of diameter
computations on digraphs with up to ~1500 vertices, so BFS is implemented
twice:

* a pure-Python queue BFS (:func:`bfs_distances`), the reference
  implementation used by the tests, and
* a vectorised frontier BFS over the successor matrix
  (:func:`bfs_distances_regular`), which processes an entire frontier per
  numpy call and is the hot path used by
  :func:`repro.graphs.properties.distance_matrix`.

Both return ``-1`` for unreachable vertices.  Strongly connected components
use Kosaraju's two-pass algorithm (iterative, so deep graphs do not hit the
recursion limit); weak connectivity uses a union–find structure.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.digraph import BaseDigraph, RegularDigraph

__all__ = [
    "bfs_distances",
    "bfs_distances_regular",
    "reverse_bfs_distances_regular",
    "reachable_set",
    "weakly_connected_components",
    "strongly_connected_components",
    "is_strongly_connected",
    "is_weakly_connected",
    "topological_order",
]


def bfs_distances(graph: BaseDigraph, source: int) -> np.ndarray:
    """Unweighted shortest-path distances from ``source`` to every vertex.

    Unreachable vertices get distance ``-1``.  This is the straightforward
    queue implementation used as the reference for the vectorised path.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def bfs_distances_regular(graph: RegularDigraph, source: int) -> np.ndarray:
    """Frontier-at-a-time BFS over the successor matrix of a regular digraph.

    Each BFS level expands the whole current frontier with one fancy-indexing
    operation, which is substantially faster than the per-vertex queue for
    the dense sweeps performed by the Table 1 search.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    successors = graph.successors
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        candidates = successors[frontier].ravel()
        candidates = candidates[dist[candidates] < 0]
        if candidates.size == 0:
            break
        # A vertex may be reached from several frontier vertices; keep one.
        frontier = np.unique(candidates)
        dist[frontier] = level
    return dist


def reverse_bfs_distances_regular(graph: RegularDigraph, target: int) -> np.ndarray:
    """Distance from every vertex *to* ``target``; ``-1`` when it cannot reach it.

    This is the reverse-direction counterpart of :func:`bfs_distances_regular`
    and the second half of the connectivity screen used by the Table 1 search:
    a digraph is strongly connected iff every vertex is reachable *from* 0 and
    every vertex can reach 0.  The reverse adjacency is built once in CSR form
    (a stable argsort of the flattened successor matrix) and each level gathers
    the whole frontier's predecessors with a ragged fancy-index.
    """
    n = graph.num_vertices
    if not 0 <= target < n:
        raise ValueError(f"target {target} out of range")
    successors = graph.successors
    d = graph.degree
    dist = np.full(n, -1, dtype=np.int64)
    dist[target] = 0
    if d == 0:
        return dist
    heads = successors.ravel()
    order = np.argsort(heads, kind="stable")
    tails = order // d
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(heads, minlength=n), out=indptr[1:])

    frontier = np.array([target], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Ragged gather: positions 0..counts[i]-1 within each block, offset
        # by that block's start in the CSR tail array.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        indices = np.repeat(starts, counts) + (np.arange(total) - offsets)
        candidates = tails[indices]
        candidates = candidates[dist[candidates] < 0]
        if candidates.size == 0:
            break
        frontier = np.unique(candidates)
        dist[frontier] = level
    return dist


def reachable_set(graph: BaseDigraph, source: int) -> set[int]:
    """Set of vertices reachable from ``source`` (including ``source``)."""
    dist = bfs_distances(graph, source)
    return {int(v) for v in np.nonzero(dist >= 0)[0]}


def weakly_connected_components(graph: BaseDigraph) -> list[list[int]]:
    """Weakly connected components (ignoring arc orientation), sorted.

    Uses a union–find structure with path compression; components are
    returned as sorted vertex lists, ordered by their smallest vertex.
    """
    n = graph.num_vertices
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for u, v in graph.arcs():
        union(u, v)

    buckets: dict[int, list[int]] = {}
    for v in range(n):
        buckets.setdefault(find(v), []).append(v)
    return [sorted(component) for _, component in sorted(buckets.items())]


def strongly_connected_components(graph: BaseDigraph) -> list[list[int]]:
    """Strongly connected components via Kosaraju's algorithm (iterative).

    Components are returned as sorted vertex lists, ordered by their smallest
    vertex.
    """
    n = graph.num_vertices
    # First pass: iterative DFS finishing order.
    visited = [False] * n
    finish_order: list[int] = []
    for start in range(n):
        if visited[start]:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        visited[start] = True
        while stack:
            vertex, index = stack[-1]
            neighbors = graph.out_neighbors(vertex)
            if index < len(neighbors):
                stack[-1] = (vertex, index + 1)
                nxt = neighbors[index]
                if not visited[nxt]:
                    visited[nxt] = True
                    stack.append((nxt, 0))
            else:
                finish_order.append(vertex)
                stack.pop()

    # Build reverse adjacency once.
    reverse_adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in graph.arcs():
        reverse_adj[v].append(u)

    # Second pass: DFS on the reverse graph in reverse finishing order.
    assigned = [False] * n
    components: list[list[int]] = []
    for start in reversed(finish_order):
        if assigned[start]:
            continue
        component = []
        stack2 = [start]
        assigned[start] = True
        while stack2:
            vertex = stack2.pop()
            component.append(vertex)
            for prev in reverse_adj[vertex]:
                if not assigned[prev]:
                    assigned[prev] = True
                    stack2.append(prev)
        components.append(sorted(component))
    components.sort(key=lambda comp: comp[0])
    return components


def is_strongly_connected(graph: BaseDigraph) -> bool:
    """True when every vertex can reach every other vertex."""
    n = graph.num_vertices
    if n <= 1:
        return True
    if np.any(bfs_distances(graph, 0) < 0):
        return False
    # Check reachability of vertex 0 in the reverse graph.
    reverse_adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in graph.arcs():
        reverse_adj[v].append(u)
    seen = np.zeros(n, dtype=bool)
    seen[0] = True
    queue: deque[int] = deque([0])
    while queue:
        u = queue.popleft()
        for v in reverse_adj[u]:
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    return bool(seen.all())


def is_weakly_connected(graph: BaseDigraph) -> bool:
    """True when the underlying undirected graph is connected."""
    return len(weakly_connected_components(graph)) <= 1


def topological_order(graph: BaseDigraph) -> list[int] | None:
    """A topological order of the vertices, or ``None`` if the digraph has a cycle.

    De Bruijn-like digraphs are strongly connected, so this mostly serves the
    simulator's dependency graphs and the test-suite's adversarial cases.
    """
    n = graph.num_vertices
    in_degree = graph.in_degrees().copy()
    queue: deque[int] = deque(int(v) for v in np.nonzero(in_degree == 0)[0])
    order: list[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.out_neighbors(u):
            in_degree[v] -= 1
            if in_degree[v] == 0:
                queue.append(v)
    if len(order) != n:
        return None
    return order
