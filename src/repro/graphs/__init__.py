"""Digraph substrate: data structures, families, operations and properties.

This subpackage is the self-contained graph layer underneath the paper's
isomorphism machinery (:mod:`repro.core`) and the OTIS optical layouts
(:mod:`repro.otis`).  It provides

* :class:`~repro.graphs.digraph.Digraph` and
  :class:`~repro.graphs.digraph.RegularDigraph` — integer-labelled digraphs
  with loops and parallel arcs allowed,
* the classic digraph families of the paper
  (:mod:`repro.graphs.generators`): de Bruijn, Kautz, Reddy–Raghavan–Kuhl,
  Imase–Itoh, circuits, complete digraphs, and the multistage networks the
  introduction cites (shuffle-exchange, butterfly, ShuffleNet, GEMNET),
* graph operations (:mod:`repro.graphs.operations`): conjunction
  (Definition 2.3), line digraph, reverse, disjoint union, relabelling,
* traversal and metric properties (:mod:`repro.graphs.traversal`,
  :mod:`repro.graphs.properties`): BFS, strongly/weakly connected components,
  diameter and eccentricities (batched bit-parallel sweep in
  :mod:`repro.graphs.apsp`, with :mod:`scipy.sparse.csgraph` and pure-Python
  reference paths), girth, Moore bounds,
* a generic digraph isomorphism tester (:mod:`repro.graphs.isomorphism`) used
  as the *baseline* against the paper's O(D) structural checks,
* networkx interoperability (:mod:`repro.graphs.nx_interop`).
"""

from repro.graphs.apsp import (
    batched_eccentricities,
    bit_distance_matrix,
    pairwise_distance_sum,
)
from repro.graphs.digraph import Digraph, RegularDigraph
from repro.graphs.generators import (
    circuit,
    complete_digraph_with_loops,
    de_bruijn,
    imase_itoh,
    kautz,
    reddy_raghavan_kuhl,
)
from repro.graphs.isomorphism import are_isomorphic, find_isomorphism, is_isomorphism
from repro.graphs.operations import conjunction, line_digraph, relabel, reverse
from repro.graphs.properties import (
    average_distance,
    diameter,
    distance_matrix,
    eccentricities,
    girth,
    is_strongly_connected,
    is_weakly_connected,
    radius,
)

__all__ = [
    "Digraph",
    "RegularDigraph",
    "de_bruijn",
    "kautz",
    "imase_itoh",
    "reddy_raghavan_kuhl",
    "circuit",
    "complete_digraph_with_loops",
    "conjunction",
    "line_digraph",
    "reverse",
    "relabel",
    "diameter",
    "distance_matrix",
    "eccentricities",
    "radius",
    "average_distance",
    "girth",
    "batched_eccentricities",
    "bit_distance_matrix",
    "pairwise_distance_sum",
    "is_strongly_connected",
    "is_weakly_connected",
    "are_isomorphic",
    "find_isomorphism",
    "is_isomorphism",
]
