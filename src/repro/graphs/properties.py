"""Metric and structural digraph properties.

The quantity that matters most for the paper's evaluation is the **diameter**:
Table 1 reports, for degree 2 and diameters 8, 9 and 10, the largest OTIS
digraphs ``H(p, q, 2)`` found by exhaustive search.  Regenerating that table
requires thousands of diameter computations on digraphs with up to ~1500
vertices, so the metric functions have three code paths:

* ``method="bitset"`` (the default for :func:`eccentricities`,
  :func:`diameter`, :func:`radius` and :func:`average_distance`) — the
  batched bit-parallel sweep of :mod:`repro.graphs.apsp`, which processes 64
  BFS sources per machine word and never materialises an ``n × n`` distance
  matrix;
* ``method="scipy"`` — the sparse adjacency matrix is handed to
  :func:`scipy.sparse.csgraph.shortest_path` with the unweighted flag, which
  runs BFS from every source in compiled code (the default for
  :func:`distance_matrix`, whose output *is* the full matrix);
* ``method="python"`` — repeated :func:`repro.graphs.traversal.bfs_distances`
  (or the vectorised frontier BFS for :class:`RegularDigraph`), used as the
  reference implementation and as a fallback.

Unit tests assert all paths produce identical results, as the HPC guide
recommends when an optimised path shadows a straightforward one.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.apsp import batched_eccentricities, pairwise_distance_sum
from repro.graphs.digraph import BaseDigraph, RegularDigraph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_distances_regular,
    is_strongly_connected,
    is_weakly_connected,
)

try:  # pragma: no cover - import guard exercised indirectly
    from scipy.sparse import csgraph as _csgraph

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False

__all__ = [
    "distance_matrix",
    "eccentricities",
    "diameter",
    "radius",
    "average_distance",
    "girth",
    "degree_summary",
    "is_strongly_connected",
    "is_weakly_connected",
]


def distance_matrix(graph: BaseDigraph, method: str = "auto") -> np.ndarray:
    """All-pairs unweighted shortest-path distances.

    Entry ``[u, v]`` is the number of arcs on a shortest directed path from
    ``u`` to ``v``, or ``-1`` when ``v`` is unreachable from ``u``.

    Parameters
    ----------
    graph:
        Any digraph.
    method:
        ``"scipy"`` (compiled BFS via :mod:`scipy.sparse.csgraph`),
        ``"python"`` (per-source BFS), or ``"auto"`` (scipy when available).
    """
    n = graph.num_vertices
    if method not in ("auto", "scipy", "python"):
        raise ValueError(f"unknown method {method!r}")
    if method == "auto":
        method = "scipy" if _HAVE_SCIPY and n > 1 else "python"
    if method == "scipy" and not _HAVE_SCIPY:
        raise RuntimeError("scipy is not available; use method='python'")

    if n == 0:
        return np.zeros((0, 0), dtype=np.int64)

    if method == "scipy":
        adjacency = graph.adjacency_matrix()
        # Parallel arcs do not change distances; clip multiplicities to 1.
        adjacency.data[:] = 1
        dense = _csgraph.shortest_path(
            adjacency, method="D", directed=True, unweighted=True
        )
        dist = np.where(np.isinf(dense), -1, dense).astype(np.int64)
        return dist

    dist = np.empty((n, n), dtype=np.int64)
    if isinstance(graph, RegularDigraph):
        for source in range(n):
            dist[source] = bfs_distances_regular(graph, source)
    else:
        for source in range(n):
            dist[source] = bfs_distances(graph, source)
    return dist


def eccentricities(graph: BaseDigraph, method: str = "auto") -> np.ndarray:
    """Out-eccentricity of every vertex; ``-1`` marks vertices that cannot
    reach the whole digraph.

    ``method="auto"``/``"bitset"`` uses the batched bit-parallel sweep of
    :mod:`repro.graphs.apsp` (no ``n × n`` matrix); ``"scipy"``/``"python"``
    go through :func:`distance_matrix` and serve as cross-checked references.
    """
    if method in ("auto", "bitset"):
        ecc, _ = batched_eccentricities(graph)
        return ecc
    dist = distance_matrix(graph, method=method)
    unreachable = (dist < 0).any(axis=1)
    ecc = np.where(unreachable, -1, dist.max(axis=1, initial=0))
    return ecc.astype(np.int64)


def diameter(graph: BaseDigraph, method: str = "auto") -> int:
    """Directed diameter; ``-1`` when the digraph is not strongly connected.

    The de Bruijn digraph ``B(d, D)`` has diameter exactly ``D``; the Kautz
    digraph ``K(d, D)`` also has diameter ``D`` with more vertices, which is
    why it tops Table 1.
    """
    if graph.num_vertices == 0:
        return -1
    ecc = eccentricities(graph, method=method)
    if np.any(ecc < 0):
        return -1
    return int(ecc.max())


def radius(graph: BaseDigraph, method: str = "auto") -> int:
    """Directed radius (minimum finite out-eccentricity); ``-1`` if none."""
    ecc = eccentricities(graph, method=method)
    finite = ecc[ecc >= 0]
    if finite.size == 0:
        return -1
    return int(finite.min())


def average_distance(graph: BaseDigraph, method: str = "auto") -> float:
    """Mean directed distance over ordered pairs of distinct vertices.

    Raises :class:`ValueError` if some pair is unreachable, because the mean
    would be meaningless.
    """
    n = graph.num_vertices
    if n < 2:
        return 0.0
    if method in ("auto", "bitset"):
        total, complete = pairwise_distance_sum(graph)
        if not complete:
            raise ValueError(
                "average_distance requires a strongly connected digraph"
            )
        return total / (n * (n - 1))
    dist = distance_matrix(graph, method=method)
    off_diagonal = ~np.eye(n, dtype=bool)
    values = dist[off_diagonal]
    if np.any(values < 0):
        raise ValueError("average_distance requires a strongly connected digraph")
    return float(values.mean())


def girth(graph: BaseDigraph, max_length: int | None = None) -> int:
    """Length of the shortest directed cycle, or ``-1`` if the digraph is acyclic.

    Loops count as cycles of length 1 (the de Bruijn digraph has ``d`` of
    them).  The search performs one BFS per vertex, optionally truncated at
    ``max_length``.
    """
    n = graph.num_vertices
    # Loops first: once no vertex has a loop, no cycle shorter than 2 exists,
    # which is what makes the 2-cycle early exit below sound.
    for u in range(n):
        if u in graph.out_neighbors(u):
            return 1
    best: int | None = None
    for u in range(n):
        # Shortest cycle through u is 1 + min distance from a successor back
        # to u; the BFS is truncated at the tightest useful cutoff (improving
        # on the best cycle found so far, never beyond max_length).
        for v in set(graph.out_neighbors(u)):
            cutoff: int | None = None
            if best is not None:
                cutoff = best - 2  # a shorter cycle needs back <= best - 2
            if max_length is not None:
                cutoff = (
                    max_length - 1 if cutoff is None else min(cutoff, max_length - 1)
                )
            back = _distance_between(graph, v, u, cutoff=cutoff)
            if back < 0:
                continue
            length = back + 1
            if best is None or length < best:
                best = length
            if best == 2:
                return 2  # nothing shorter remains after the loop check
    return -1 if best is None else int(best)


def _distance_between(
    graph: BaseDigraph, source: int, target: int, cutoff: int | None = None
) -> int:
    """Distance from ``source`` to ``target`` (early-exit BFS).

    With a ``cutoff`` the BFS never expands beyond that depth and returns
    ``-1`` when the distance exceeds it — the truncation :func:`girth`
    advertises for its ``max_length`` argument.
    """
    from collections import deque

    if source == target:
        return 0
    if cutoff is not None and cutoff < 1:
        return -1
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    queue = deque([(source, 0)])
    while queue:
        u, d = queue.popleft()
        for v in graph.out_neighbors(u):
            if v == target:
                return d + 1
            if not seen[v] and (cutoff is None or d + 1 < cutoff):
                seen[v] = True
                queue.append((v, d + 1))
    return -1


def degree_summary(graph: BaseDigraph) -> dict[str, object]:
    """Summary of degree statistics used by the reporting helpers."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    return {
        "num_vertices": graph.num_vertices,
        "num_arcs": graph.num_arcs,
        "out_degree_min": int(out_deg.min()) if out_deg.size else 0,
        "out_degree_max": int(out_deg.max()) if out_deg.size else 0,
        "in_degree_min": int(in_deg.min()) if in_deg.size else 0,
        "in_degree_max": int(in_deg.max()) if in_deg.size else 0,
        "is_out_regular": graph.is_out_regular(),
        "is_regular": graph.is_regular(),
        "num_loops": graph.num_loops(),
    }
