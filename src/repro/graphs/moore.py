"""Moore bounds and the directed degree–diameter problem.

Section 4.3 of the paper studies the degree–diameter problem restricted to
OTIS digraphs ``H(p, q, d)``: for a given degree ``d`` and diameter ``D``,
how many nodes can such a digraph have?  The reference points are

* the **directed Moore bound** ``1 + d + d^2 + ... + d^D`` which no digraph
  with ``d, D > 1`` attains (Bridges & Toueg, ref. [8]),
* the de Bruijn digraph with ``d^D`` nodes, and
* the Kautz digraph with ``d^D + d^(D-1)`` nodes — the largest digraph found
  by the paper's exhaustive OTIS search (Table 1).

These helpers centralise the closed-form counts that the benchmarks compare
against.
"""

from __future__ import annotations

__all__ = [
    "moore_bound",
    "de_bruijn_order",
    "kautz_order",
    "largest_known_otis_order",
    "moore_efficiency",
]


def moore_bound(d: int, D: int) -> int:
    """The directed Moore bound ``1 + d + d^2 + ... + d^D``.

    No digraph of maximum out-degree ``d`` and diameter ``D`` can have more
    vertices; for ``d, D > 1`` the bound is never attained.
    """
    if d < 1 or D < 0:
        raise ValueError("require d >= 1 and D >= 0")
    if d == 1:
        return D + 1
    return (d ** (D + 1) - 1) // (d - 1)


def de_bruijn_order(d: int, D: int) -> int:
    """Number of vertices of ``B(d, D)``: ``d**D``."""
    if d < 1 or D < 1:
        raise ValueError("require d >= 1 and D >= 1")
    return d**D


def kautz_order(d: int, D: int) -> int:
    """Number of vertices of ``K(d, D)``: ``d**D + d**(D-1)``."""
    if d < 1 or D < 1:
        raise ValueError("require d >= 1 and D >= 1")
    return d**D + d ** (D - 1)


def largest_known_otis_order(d: int, D: int) -> int:
    """Largest ``H(p, q, d)`` order reported by the paper's search: the Kautz order.

    Table 1 finds ``K(2, D)`` (384, 768, 1536 nodes for ``D`` = 8, 9, 10) to
    be the largest degree-2 OTIS digraph for each diameter.
    """
    return kautz_order(d, D)


def moore_efficiency(n: int, d: int, D: int) -> float:
    """Ratio of ``n`` to the Moore bound — how close a digraph is to optimal."""
    return n / moore_bound(d, D)
