"""Digraph operations: conjunction, line digraph, reverse, unions, relabelling.

The *conjunction* (tensor / categorical product, Definition 2.3) is the
operation behind two facts used in the paper:

* ``B(d, k) ⊗ B(d', k) = B(d d', k)`` (Remark 2.4), and
* every connected component of a non-cyclic alphabet digraph ``A(f, sigma, j)``
  is the conjunction of a de Bruijn digraph with a circuit (Remark 3.10,
  illustrated by Example 3.3.2 / Figure 5).

The *line digraph* is included because iterated line digraphs of complete
digraphs are exactly the de Bruijn digraphs (``L(B(d, D)) = B(d, D+1)``),
which the tests use as an independent consistency check of the generators.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.digraph import BaseDigraph, Digraph, RegularDigraph

__all__ = [
    "conjunction",
    "line_digraph",
    "reverse",
    "disjoint_union",
    "relabel",
    "induced_subgraph",
    "cartesian_product",
]


def conjunction(g1: BaseDigraph, g2: BaseDigraph) -> Digraph:
    """The conjunction ``G1 ⊗ G2`` (Definition 2.3).

    The vertex set is ``V1 x V2`` and ``((u1, u2), (v1, v2))`` is an arc iff
    ``(u1, v1)`` is an arc of ``G1`` **and** ``(u2, v2)`` is an arc of ``G2``.
    Vertex ``(u1, u2)`` is numbered ``u1 * |V2| + u2``.

    Multiplicities multiply: if ``(u1, v1)`` appears ``a`` times and
    ``(u2, v2)`` appears ``b`` times, the product arc appears ``a * b`` times.
    """
    n1, n2 = g1.num_vertices, g2.num_vertices
    product = Digraph(n1 * n2, name=_binary_name("⊗", g1, g2))
    for u1 in g1.vertices():
        successors1 = g1.out_neighbors(u1)
        for u2 in g2.vertices():
            successors2 = g2.out_neighbors(u2)
            source = u1 * n2 + u2
            for v1 in successors1:
                for v2 in successors2:
                    product.add_arc(source, v1 * n2 + v2)
    return product


def line_digraph(graph: BaseDigraph) -> Digraph:
    """The line digraph ``L(G)``.

    Vertices of ``L(G)`` are the arcs of ``G`` (numbered in the order produced
    by :meth:`BaseDigraph.arcs`); there is an arc from ``(u, v)`` to
    ``(v, w)`` for every pair of consecutive arcs.  The classical fact
    ``L(B(d, D)) ≅ B(d, D+1)`` is exercised by the tests.
    """
    arcs = list(graph.arcs())
    line = Digraph(len(arcs), name=f"L({graph.name})" if graph.name else "L")
    # Group arc indices by their tail for O(m * d) construction.
    arcs_by_tail: dict[int, list[int]] = {}
    for index, (u, _v) in enumerate(arcs):
        arcs_by_tail.setdefault(u, []).append(index)
    for index, (_u, v) in enumerate(arcs):
        for next_index in arcs_by_tail.get(v, ()):
            line.add_arc(index, next_index)
    return line


def reverse(graph: BaseDigraph) -> Digraph:
    """The reverse digraph ``G^-`` (all arcs flipped).

    The paper uses it in Section 4.2: if ``G`` admits an ``OTIS(p, q)``
    layout then ``G^-`` admits an ``OTIS(q, p)`` layout.
    """
    result = Digraph(
        graph.num_vertices, name=f"reverse({graph.name})" if graph.name else ""
    )
    for u, v in graph.arcs():
        result.add_arc(v, u)
    return result


def disjoint_union(graphs: Sequence[BaseDigraph]) -> Digraph:
    """Disjoint union; vertices of the ``i``-th graph are shifted by the
    total size of the preceding graphs."""
    total = sum(g.num_vertices for g in graphs)
    result = Digraph(total, name="+".join(g.name for g in graphs if g.name))
    offset = 0
    for g in graphs:
        for u, v in g.arcs():
            result.add_arc(u + offset, v + offset)
        offset += g.num_vertices
    return result


def relabel(graph: BaseDigraph, mapping: Sequence[int] | np.ndarray) -> Digraph:
    """Rename vertex ``u`` to ``mapping[u]`` (mapping must be a permutation)."""
    n = graph.num_vertices
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (n,) or sorted(mapping.tolist()) != list(range(n)):
        raise ValueError("mapping must be a permutation of the vertex set")
    result = Digraph(n, name=graph.name)
    for u, v in graph.arcs():
        result.add_arc(int(mapping[u]), int(mapping[v]))
    return result


def induced_subgraph(graph: BaseDigraph, vertices: Sequence[int]) -> Digraph:
    """The subgraph induced by ``vertices`` (relabelled ``0..k-1`` in order)."""
    vertex_list = [int(v) for v in vertices]
    if len(set(vertex_list)) != len(vertex_list):
        raise ValueError("vertices must be distinct")
    index = {v: i for i, v in enumerate(vertex_list)}
    result = Digraph(len(vertex_list), name=f"{graph.name}[{len(vertex_list)}]")
    for u in vertex_list:
        for v in graph.out_neighbors(u):
            if v in index:
                result.add_arc(index[u], index[v])
    return result


def cartesian_product(g1: BaseDigraph, g2: BaseDigraph) -> Digraph:
    """The Cartesian product ``G1 □ G2`` (move in one coordinate at a time)."""
    n1, n2 = g1.num_vertices, g2.num_vertices
    product = Digraph(n1 * n2, name=_binary_name("□", g1, g2))
    for u1 in g1.vertices():
        for u2 in g2.vertices():
            source = u1 * n2 + u2
            for v1 in g1.out_neighbors(u1):
                product.add_arc(source, v1 * n2 + u2)
            for v2 in g2.out_neighbors(u2):
                product.add_arc(source, u1 * n2 + v2)
    return product


def _binary_name(op: str, g1: BaseDigraph, g2: BaseDigraph) -> str:
    if g1.name and g2.name:
        return f"{g1.name} {op} {g2.name}"
    return ""
