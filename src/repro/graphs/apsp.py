"""Batched bit-parallel reachability and eccentricity engine.

The degree–diameter search of Table 1 (Section 4.3) asks one question of each
candidate ``H(p, q, d)``: *is the maximum out-eccentricity exactly D?*  The
answer never needs the full ``n × n`` distance matrix — only, per source, the
first BFS level at which the source's reachable set covers the whole vertex
set.  This module answers that question for **all sources simultaneously**:

* the state is a bit-packed reachability matrix ``R`` of shape
  ``(n, ceil(n/64))`` ``uint64`` — bit ``v`` of row ``u`` means "``u`` reaches
  ``v`` within the current number of levels";
* one level-synchronous step is ``R'[u] = R[u] | ⋃_j R[succ(u, j)]``, i.e.
  one :func:`numpy.bitwise_or` gather per out-arc slot, advancing 64 sources
  per machine word per operation;
* eccentricities stream out as rows *complete* (become all-ones): the
  completing level is exactly the source's out-eccentricity;
* with an ``upper_bound`` the sweep **aborts early** the moment some row is
  still incomplete after ``upper_bound`` levels — the search path therefore
  never materialises an ``(n, n)`` int64 matrix.

The same frontier machinery also yields the pairwise distance *sum* (for
:func:`repro.graphs.properties.average_distance`) via the identity
``Σ d(u, v) = Σ_k #{(u, v) : d(u, v) > k}``, and an explicit distance matrix
(:func:`bit_distance_matrix`) used by the vectorised routing-table builder —
the latter two are off the search path and may allocate ``(n, n)`` arrays.

Arbitrary digraphs (non-regular, parallel arcs, disconnected) are supported
through :func:`padded_successor_matrix`: adjacency lists are padded with the
vertex itself, which is a no-op under the union step because ``R[u]`` always
contains ``R[u]``.

For very large ``n`` even the bit-packed ``(n, ceil(n/64))`` state is more
than a *sampled* screen needs.  :func:`subset_distance_rows` therefore runs
the **transposed** sweep for ``k`` selected sources: the state is one bit per
``(vertex, source)`` pair — ``(n, ceil(k/64))`` words — and one step gathers
over each vertex's *predecessors* (``v`` is reached by ``s`` within ``L+1``
levels iff some in-neighbour of ``v`` is reached within ``L``).  The same
engine backs ``batched_eccentricities(..., sources=...)`` (sampled
eccentricity screens) and the per-source rows of the simulator's
:class:`repro.routing.routers.LruRowRouter`.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import kernels as _kernels
from repro.graphs.digraph import BaseDigraph, RegularDigraph

__all__ = [
    "padded_successor_matrix",
    "padded_predecessor_matrix",
    "batched_eccentricities",
    "subset_distance_rows",
    "pairwise_distance_sum",
    "bit_distance_matrix",
]

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def padded_successor_matrix(graph: BaseDigraph) -> np.ndarray:
    """An ``(n, d_max)`` successor matrix for *any* digraph.

    :class:`RegularDigraph` instances return their stored matrix unchanged.
    Other digraphs get each adjacency list padded up to the maximum out-degree
    with the vertex's own index; a self entry is inert for reachability
    unions (and can never sit on a shortest path, so the routing-table builder
    ignores it too).  Parallel arcs simply repeat a successor, which is
    likewise harmless under bitwise union.
    """
    if isinstance(graph, RegularDigraph):
        return graph.successors
    n = graph.num_vertices
    lists = [graph.out_neighbors(u) for u in range(n)]
    d_max = max((len(successors) for successors in lists), default=0)
    if n == 0 or d_max == 0:
        return np.zeros((n, 0), dtype=np.int64)
    matrix = np.repeat(np.arange(n, dtype=np.int64)[:, None], d_max, axis=1)
    for u, successors in enumerate(lists):
        matrix[u, : len(successors)] = successors
    return matrix


def padded_predecessor_matrix(graph: BaseDigraph) -> np.ndarray:
    """An ``(n, in_d_max)`` predecessor matrix, padded like its successor twin.

    Row ``v`` lists the tails of all arcs into ``v`` (with multiplicity),
    padded up to the maximum in-degree with ``v`` itself — inert under the
    bitwise-union step of the transposed sweep, exactly as self-padding is for
    :func:`padded_successor_matrix`.
    """
    n = graph.num_vertices
    lists: list[list[int]] = [[] for _ in range(n)]
    for u, v in graph.arcs():
        lists[v].append(u)
    d_max = max((len(tails) for tails in lists), default=0)
    if n == 0 or d_max == 0:
        return np.zeros((n, 0), dtype=np.int64)
    matrix = np.repeat(np.arange(n, dtype=np.int64)[:, None], d_max, axis=1)
    for v, tails in enumerate(lists):
        matrix[v, : len(tails)] = tails
    return matrix


class _BitSweep:
    """Shared state of one level-synchronous bit-parallel sweep.

    ``reach`` holds, after ``k`` calls to :meth:`step`, the within-``k``-steps
    reachability bitmap of every vertex.  Bits beyond ``n`` in the last word
    stay zero throughout.
    """

    def __init__(self, successors: np.ndarray):
        successors = np.ascontiguousarray(successors, dtype=np.int64)
        self.successors = successors
        self.n = n = int(successors.shape[0])
        self.words = words = (n + _WORD_BITS - 1) // _WORD_BITS
        reach = np.zeros((n, words), dtype=np.uint64)
        rows = np.arange(n)
        reach[rows, rows // _WORD_BITS] = np.uint64(1) << (
            rows % _WORD_BITS
        ).astype(np.uint64)
        self.reach = reach
        full = np.full(words, _ALL_ONES, dtype=np.uint64)
        remainder = n % _WORD_BITS
        if remainder:
            full[-1] = (np.uint64(1) << np.uint64(remainder)) - np.uint64(1)
        self._full_row = full

    def complete_rows(self) -> np.ndarray:
        """Boolean mask of sources whose reachable set is the whole digraph."""
        return (self.reach == self._full_row).all(axis=1)

    def step(self) -> bool:
        """Advance one BFS level; returns False once the sweep has converged."""
        successors = self.successors
        reach = self.reach
        if successors.shape[1] == 0:
            return False
        merged = reach[successors[:, 0]].copy()
        for j in range(1, successors.shape[1]):
            np.bitwise_or(merged, reach[successors[:, j]], out=merged)
        np.bitwise_or(merged, reach, out=merged)
        if np.array_equal(merged, reach):
            return False
        self.reach = merged
        return True

    def unreached_pairs(self) -> int:
        """Number of ordered pairs ``(u, v)`` with ``v`` not yet reached."""
        return self.n * self.n - int(_popcount(self.reach))


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(bits: np.ndarray) -> int:
        return int(np.bitwise_count(bits).sum())

else:  # pragma: no cover - exercised only on numpy 1.x
    _POPCOUNT_TABLE = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint32
    )

    def _popcount(bits: np.ndarray) -> int:
        return int(_POPCOUNT_TABLE[bits.view(np.uint8)].sum())


def _unpack_rows(bits: np.ndarray, n: int) -> np.ndarray:
    """Expand an ``(n, words)`` uint64 bitmap into an ``(n, n)`` bool mask."""
    if sys.byteorder == "big":  # pragma: no cover - little-endian everywhere
        bits = bits.byteswap()
    as_bytes = bits.view(np.uint8)
    unpacked = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return unpacked[:, :n].astype(bool, copy=False)


class _SubsetSweep:
    """Transposed level-synchronous sweep for ``k`` selected sources.

    Bit ``b`` of word row ``v`` means "``sources[b]`` reaches ``v`` within the
    current number of levels"; the state is ``(n, ceil(k/64))`` words and one
    step gathers over each vertex's *predecessors* (``v`` is reached within
    ``L+1`` iff some in-neighbour is reached within ``L``).  Duplicate
    sources are harmless — every bit column evolves independently.
    """

    def __init__(self, predecessors: np.ndarray, sources: np.ndarray):
        predecessors = np.ascontiguousarray(predecessors, dtype=np.int64)
        self.predecessors = predecessors
        self.n = n = int(predecessors.shape[0])
        self.sources = sources = np.ascontiguousarray(sources, dtype=np.int64)
        self.k = k = int(sources.shape[0])
        self.words = words = (k + _WORD_BITS - 1) // _WORD_BITS if k else 0
        state = np.zeros((n, max(words, 1)), dtype=np.uint64)
        bits = np.arange(k)
        np.bitwise_or.at(
            state,
            (sources, bits // _WORD_BITS),
            np.uint64(1) << (bits % _WORD_BITS).astype(np.uint64),
        )
        self.state = state

    def step(self) -> bool:
        """Advance one level; returns False once nothing new was reached."""
        predecessors = self.predecessors
        state = self.state
        if predecessors.shape[1] == 0:
            return False
        merged = state[predecessors[:, 0]].copy()
        for j in range(1, predecessors.shape[1]):
            np.bitwise_or(merged, state[predecessors[:, j]], out=merged)
        np.bitwise_or(merged, state, out=merged)
        if np.array_equal(merged, state):
            return False
        self.state = merged
        return True

    def complete_columns(self) -> np.ndarray:
        """Boolean mask over sources whose reach covers every vertex."""
        if self.k == 0:
            return np.zeros(0, dtype=bool)
        covered = np.bitwise_and.reduce(self.state, axis=0)
        return _unpack_rows(covered[None, :], self.k)[0]


def subset_distance_rows(
    graph: BaseDigraph | np.ndarray,
    sources,
    *,
    predecessors: np.ndarray | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Distances from each of ``sources`` to every vertex, ``-1`` unreachable.

    Returns a ``(k, n)`` int64 array with ``rows[b, v] = d(sources[b], v)``.
    The cost scales with ``k``, not ``n``: the transposed sweep keeps one bit
    per ``(vertex, source)`` pair, so screening 64 sources on a 10^5-vertex
    digraph costs one machine word per vertex per level.  Pass a precomputed
    ``predecessors`` matrix (:func:`padded_predecessor_matrix`) when calling
    repeatedly on one topology (the simulator's LRU row router does).

    ``backend`` selects the kernel backend (see :mod:`repro.kernels`);
    ``None`` resolves ``REPRO_KERNELS``.  All backends are bit-identical.
    """
    if predecessors is None:
        if isinstance(graph, np.ndarray):
            raise ValueError(
                "subset_distance_rows needs predecessors= when given a raw "
                "successor matrix (it cannot tell successor and predecessor "
                "matrices apart)"
            )
        predecessors = padded_predecessor_matrix(graph)
    n = int(predecessors.shape[0])
    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1:
        raise ValueError("sources must be a 1-D array of vertex indices")
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise ValueError("sources out of range")
    k = int(sources.shape[0])
    rows = np.full((k, n), -1, dtype=np.int64)
    if k == 0 or n == 0:
        return rows
    sweep = _SubsetSweep(predecessors, sources)
    rows[np.arange(k), sources] = 0
    kern = _kernels.get_kernels(backend)
    if kern is not None:
        kern.subset_rows_sweep(
            sweep.predecessors, sweep.state, np.empty_like(sweep.state), rows
        )
        return rows
    level = 0
    while True:
        previous = sweep.state
        level += 1
        if not sweep.step():
            return rows
        newly = sweep.state ^ previous
        changed = np.flatnonzero(newly.any(axis=1))
        if changed.size:
            mask = _unpack_rows(newly[changed], k)
            vertex_index, source_index = np.nonzero(mask)
            rows[source_index, changed[vertex_index]] = level


def _subset_eccentricities(
    graph: BaseDigraph | np.ndarray,
    sources: np.ndarray,
    upper_bound: int | None,
    backend: str | None = None,
) -> tuple[np.ndarray, bool]:
    """``batched_eccentricities`` restricted to a subset of sources.

    Same contract as the full sweep: ``ecc[b]`` is the out-eccentricity of
    ``sources[b]`` (``-1`` when it cannot reach the whole digraph), and
    ``aborted`` fires exactly when the ``upper_bound`` cut stopped the sweep
    before it finished or converged.
    """
    if isinstance(graph, np.ndarray):
        raise ValueError(
            "sources= needs a digraph (the transposed sweep gathers over "
            "predecessors, which a successor matrix alone cannot provide "
            "cheaply); pass the BaseDigraph instead"
        )
    predecessors = padded_predecessor_matrix(graph)
    n = graph.num_vertices
    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1:
        raise ValueError("sources must be a 1-D array of vertex indices")
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise ValueError("sources out of range")
    k = int(sources.shape[0])
    ecc = np.full(k, -1, dtype=np.int64)
    if k == 0 or n == 0:
        return ecc, False
    sweep = _SubsetSweep(predecessors, sources)
    kern = _kernels.get_kernels(backend)
    if kern is not None:
        words = sweep.state.shape[1]
        full = np.full(words, _ALL_ONES, dtype=np.uint64)
        remainder = k % _WORD_BITS
        if remainder:
            full[-1] = (np.uint64(1) << np.uint64(remainder)) - np.uint64(1)
        aborted = kern.subset_ecc_sweep(
            sweep.predecessors,
            sweep.state,
            np.empty_like(sweep.state),
            full,
            np.zeros(words, dtype=np.uint64),
            ecc,
            -1 if upper_bound is None else int(upper_bound),
        )
        return ecc, bool(aborted)
    done = sweep.complete_columns()
    ecc[done] = 0
    level = 0
    while not done.all():
        if upper_bound is not None and level >= upper_bound:
            return ecc, True
        level += 1
        if not sweep.step():
            break  # converged: the remaining sources can never complete
        newly_done = ~done & sweep.complete_columns()
        ecc[newly_done] = level
        done |= newly_done
    return ecc, False


def batched_eccentricities(
    graph: BaseDigraph | np.ndarray,
    upper_bound: int | None = None,
    *,
    sources=None,
    backend: str | None = None,
) -> tuple[np.ndarray, bool]:
    """Out-eccentricity of every vertex, all sources swept at once.

    Parameters
    ----------
    graph:
        A digraph, or directly an ``(n, d)`` successor matrix (full sweep
        only — the ``sources=`` path needs the digraph itself).
    upper_bound:
        When given, the sweep stops as soon as some vertex is still missing
        part of the digraph after ``upper_bound`` levels, i.e. as soon as it
        is certain that ``max eccentricity > upper_bound`` *or* the digraph is
        not strongly connected.  A digraph whose sweep converges in fewer
        levels is answered definitively instead (no abort) — in particular a
        disconnected digraph that converges early returns ``aborted=False``
        with ``-1`` entries.
    sources:
        Optional 1-D array of vertex indices.  When given, only those
        sources are swept (``ecc`` is aligned with ``sources``, not with the
        vertex set) via the transposed ``(n, ceil(k/64))``-word engine, so a
        sampled eccentricity screen on a very large digraph costs ``O(k/64)``
        machine words per vertex per level instead of ``O(n/64)``.

    Returns
    -------
    (ecc, aborted):
        ``ecc[u]`` is the out-eccentricity of ``u`` (``-1`` when ``u`` cannot
        reach the whole digraph).  ``aborted`` is True iff the ``upper_bound``
        cut fired before the sweep finished or converged; incomplete entries
        then still hold ``-1``.  ``aborted=False`` therefore does *not* imply
        strong connectivity — check ``(ecc >= 0).all()`` (or pre-screen, as
        :func:`repro.otis.search.h_diameter` does) before trusting
        ``ecc.max()``.

    ``backend`` selects the kernel backend (see :mod:`repro.kernels`);
    ``None`` resolves ``REPRO_KERNELS``.  All backends are bit-identical.
    """
    if sources is not None:
        return _subset_eccentricities(graph, sources, upper_bound, backend)
    successors = (
        graph if isinstance(graph, np.ndarray) else padded_successor_matrix(graph)
    )
    n = int(successors.shape[0])
    ecc = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return ecc, False
    sweep = _BitSweep(successors)
    kern = _kernels.get_kernels(backend)
    if kern is not None:
        aborted = kern.ecc_sweep(
            sweep.successors,
            sweep.reach,
            np.empty_like(sweep.reach),
            sweep._full_row,
            ecc,
            np.zeros(n, dtype=np.uint8),
            -1 if upper_bound is None else int(upper_bound),
        )
        return ecc, bool(aborted)
    done = sweep.complete_rows()
    ecc[done] = 0
    level = 0
    while not done.all():
        if upper_bound is not None and level >= upper_bound:
            return ecc, True
        level += 1
        if not sweep.step():
            break  # converged: the remaining sources can never complete
        newly_done = ~done & sweep.complete_rows()
        ecc[newly_done] = level
        done |= newly_done
    return ecc, False


def pairwise_distance_sum(graph: BaseDigraph | np.ndarray) -> tuple[int, bool]:
    """Sum of ``d(u, v)`` over all ordered pairs, without a distance matrix.

    Uses ``Σ_{u,v} d(u, v) = Σ_{k >= 0} #{(u, v) : d(u, v) > k}``, counting
    unset bits of the reachability bitmap level by level.

    Returns ``(total, complete)``; ``complete`` is False when some ordered
    pair is unreachable, and ``total`` is then exactly the sum over the
    *finite* distances (every never-reachable pair sat in all ``levels``
    per-level counts, so subtracting ``levels`` copies of the converged
    unreached count removes them without touching the finite terms).
    """
    successors = (
        graph if isinstance(graph, np.ndarray) else padded_successor_matrix(graph)
    )
    n = int(successors.shape[0])
    if n == 0:
        return 0, True
    sweep = _BitSweep(successors)
    total = 0
    levels = 0
    while True:
        unreached = sweep.unreached_pairs()
        if unreached == 0:
            return total, True
        total += unreached
        levels += 1
        if not sweep.step():
            return total - levels * unreached, False


def bit_distance_matrix(graph: BaseDigraph | np.ndarray) -> np.ndarray:
    """All-pairs distance matrix extracted from the bit-parallel sweep.

    Off the search path (it materialises the ``(n, n)`` result by design);
    used by the vectorised routing-table builder and as a third independent
    implementation for the parity tests.  Unreachable pairs get ``-1``.
    """
    successors = (
        graph if isinstance(graph, np.ndarray) else padded_successor_matrix(graph)
    )
    n = int(successors.shape[0])
    dist = np.full((n, n), -1, dtype=np.int64)
    if n == 0:
        return dist
    np.fill_diagonal(dist, 0)
    sweep = _BitSweep(successors)
    level = 0
    while True:
        previous = sweep.reach
        level += 1
        if not sweep.step():
            return dist
        newly_reached = sweep.reach ^ previous
        dist[_unpack_rows(newly_reached, n)] = level
