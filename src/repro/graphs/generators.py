"""Generators for the digraph families used in the paper.

The families directly defined in the paper:

* :func:`de_bruijn` — ``B(d, D)`` (Definition 2.2, Figure 1),
* :func:`reddy_raghavan_kuhl` — ``RRK(d, n)`` (Definition 2.5, Figure 2),
* :func:`kautz` — ``K(d, D)`` (Definition 2.7),
* :func:`imase_itoh` — ``II(d, n)`` (Definition 2.8, Figure 3),
* :func:`circuit` — the directed cycle ``C_k`` that appears in the component
  decomposition of non-cyclic alphabet digraphs (Remark 3.10),
* :func:`complete_digraph_with_loops` — ``K_n`` with loops, the topology the
  OTIS architecture was originally shown to implement (Section 1, ref. [34]).

The introduction also motivates de Bruijn networks through the multistage /
bus networks built on them; a representative subset is generated here so the
examples and the simulator have realistic comparison topologies:
:func:`shuffle_exchange`, :func:`butterfly`, :func:`shufflenet`,
:func:`gemnet`, :func:`hypercube_digraph`, :func:`ring`, and
:func:`bidirectional_torus`.

Every generator returns a :class:`~repro.graphs.digraph.RegularDigraph` when
the family is out-regular (all of the paper's families are), with vertex
``labels`` carrying the word representation when one exists.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import Digraph, RegularDigraph
from repro.words import check_alphabet, word_table, words_to_ints

__all__ = [
    "de_bruijn",
    "de_bruijn_words",
    "reddy_raghavan_kuhl",
    "imase_itoh",
    "kautz",
    "kautz_words",
    "circuit",
    "complete_digraph_with_loops",
    "ring",
    "shuffle_exchange",
    "butterfly",
    "shufflenet",
    "gemnet",
    "hypercube_digraph",
    "bidirectional_torus",
]


# --------------------------------------------------------------------------
# Families defined in the paper
# --------------------------------------------------------------------------
def de_bruijn(d: int, D: int) -> RegularDigraph:
    """The de Bruijn digraph ``B(d, D)`` (Definition 2.2).

    Vertices are the ``d**D`` words of length ``D`` over ``Z_d`` identified
    with integers (Remark 2.6); vertex ``u`` has an arc to ``d*u + λ mod d**D``
    for every ``λ in Z_d``.  Degree ``d``, diameter ``D``, ``d`` loops.

    >>> B = de_bruijn(2, 3)
    >>> B.num_vertices, B.degree
    (8, 2)
    >>> B.out_neighbors(5)      # word 101 -> 01λ
    [2, 3]
    """
    check_alphabet(d, D)
    n = d**D
    vertices = np.arange(n, dtype=np.int64)
    shifted = (vertices * d) % n
    successors = shifted[:, None] + np.arange(d, dtype=np.int64)[None, :]
    labels = [tuple(row) for row in word_table(d, D)]
    return RegularDigraph(successors % n, name=f"B({d},{D})", labels=labels)


def de_bruijn_words(d: int, D: int) -> list[tuple[int, ...]]:
    """The word labelling of ``B(d, D)`` vertices, in integer order."""
    return [tuple(int(x) for x in row) for row in word_table(d, D)]


def reddy_raghavan_kuhl(d: int, n: int) -> RegularDigraph:
    """The Reddy–Raghavan–Kuhl digraph ``RRK(d, n)`` (Definition 2.5).

    Vertex set ``Z_n``; ``u -> d*u + λ (mod n)`` for ``λ in {0, ..., d-1}``.
    ``RRK(d, d**D)`` is isomorphic to ``B(d, D)`` (Remark 2.6) — in fact with
    the standard integer labelling they are the *same* labelled digraph.
    """
    check_alphabet(d)
    if n < 1:
        raise ValueError("n must be positive")
    vertices = np.arange(n, dtype=np.int64)
    successors = (vertices[:, None] * d + np.arange(d, dtype=np.int64)[None, :]) % n
    return RegularDigraph(successors, name=f"RRK({d},{n})")


def imase_itoh(d: int, n: int) -> RegularDigraph:
    """The Imase–Itoh digraph ``II(d, n)`` (Definition 2.8).

    Vertex set ``Z_n``; ``u -> -d*u - λ (mod n)`` for ``λ in {1, ..., d}``.
    ``II(d, d**D)`` is isomorphic to ``B(d, D)`` (Proposition 3.3) and
    ``II(d, d**(D-1) (d+1))`` is isomorphic to the Kautz digraph ``K(d, D)``.
    """
    check_alphabet(d)
    if n < 1:
        raise ValueError("n must be positive")
    vertices = np.arange(n, dtype=np.int64)
    lam = np.arange(1, d + 1, dtype=np.int64)
    successors = (-(vertices[:, None] * d) - lam[None, :]) % n
    return RegularDigraph(successors, name=f"II({d},{n})")


def kautz(d: int, D: int) -> RegularDigraph:
    """The Kautz digraph ``K(d, D)`` (Definition 2.7).

    Vertices are words of length ``D`` over ``Z_{d+1}`` with no two equal
    consecutive letters; there are ``d**(D-1) * (d+1)`` of them.  Arcs append
    a letter different from the current last letter.  Degree ``d``, diameter
    ``D``, and it is the largest known digraph for many (degree, diameter)
    pairs — it tops every block of Table 1.

    Vertices are numbered in lexicographic order of their words; the word of
    vertex ``u`` is available through ``labels``.
    """
    check_alphabet(d, D)
    if d < 1:
        raise ValueError("Kautz digraph requires d >= 1")
    words = kautz_words(d, D)
    index = {word: i for i, word in enumerate(words)}
    successors = np.empty((len(words), d), dtype=np.int64)
    for i, word in enumerate(words):
        last = word[-1]
        targets = []
        for letter in range(d + 1):
            if letter == last:
                continue
            targets.append(index[word[1:] + (letter,)])
        successors[i, :] = targets
    return RegularDigraph(successors, name=f"K({d},{D})", labels=words)


def kautz_words(d: int, D: int) -> list[tuple[int, ...]]:
    """All Kautz words (no equal consecutive letters) in lexicographic order."""
    check_alphabet(d, D)
    words: list[tuple[int, ...]] = []

    def extend(prefix: tuple[int, ...]) -> None:
        if len(prefix) == D:
            words.append(prefix)
            return
        for letter in range(d + 1):
            if prefix and prefix[-1] == letter:
                continue
            extend(prefix + (letter,))

    extend(())
    return words


def circuit(k: int) -> RegularDigraph:
    """The directed circuit ``C_k``: ``i -> i + 1 (mod k)``.

    ``C_1`` is a single vertex with a loop.  Circuits appear as the second
    factor of the conjunction decomposition of non-cyclic alphabet digraphs
    (Remark 3.10 and Example 3.3.2).
    """
    if k < 1:
        raise ValueError("circuit length must be positive")
    successors = ((np.arange(k, dtype=np.int64) + 1) % k)[:, None]
    return RegularDigraph(successors, name=f"C_{k}")


def complete_digraph_with_loops(n: int) -> RegularDigraph:
    """The complete symmetric digraph with loops ``K_n`` (degree ``n``).

    This is the topology of reference [34]'s OTIS-based all-optical complete
    network: every processor has ``n`` transceivers, one per arc.
    """
    if n < 1:
        raise ValueError("n must be positive")
    successors = np.tile(np.arange(n, dtype=np.int64), (n, 1))
    return RegularDigraph(successors, name=f"K_{n}+loops")


# --------------------------------------------------------------------------
# Comparison topologies cited in the introduction
# --------------------------------------------------------------------------
def ring(n: int, bidirectional: bool = True) -> RegularDigraph:
    """A ring of ``n`` processors (directed circuit or bidirectional ring)."""
    if n < 1:
        raise ValueError("n must be positive")
    forward = (np.arange(n, dtype=np.int64) + 1) % n
    if not bidirectional:
        return RegularDigraph(forward[:, None], name=f"ring({n},uni)")
    backward = (np.arange(n, dtype=np.int64) - 1) % n
    return RegularDigraph(
        np.stack([forward, backward], axis=1), name=f"ring({n})"
    )


def shuffle_exchange(D: int) -> Digraph:
    """The shuffle-exchange graph on ``2**D`` vertices as a digraph.

    Each vertex ``u`` has a *shuffle* arc to ``2u mod (2**D) + msb(u)``
    (cyclic left rotation of its binary word) and an *exchange* arc to
    ``u XOR 1``.  It is one of the "similar networks" of the broadcasting
    literature the paper cites (ref. [28]).
    """
    if D < 1:
        raise ValueError("D must be positive")
    n = 2**D
    graph = Digraph(n, name=f"SE({D})")
    for u in range(n):
        rotated = ((u << 1) | (u >> (D - 1))) & (n - 1)
        graph.add_arc(u, rotated)
        graph.add_arc(u, u ^ 1)
    return graph


def butterfly(d: int, D: int) -> Digraph:
    """The (unwrapped) butterfly multistage network as a digraph.

    Vertices are pairs ``(level, word)`` with ``level in 0..D`` and ``word`` a
    length-``D`` word over ``Z_d``; vertex ``(l, w)`` with ``l < D`` has arcs
    to ``(l+1, w')`` for every ``w'`` that agrees with ``w`` outside digit
    ``l``.  The butterfly is one of the multistage networks the paper lists as
    built from the de Bruijn (ref. [30]).  Vertex numbering is
    ``level * d**D + word``.
    """
    check_alphabet(d, D)
    n_words = d**D
    n = (D + 1) * n_words
    graph = Digraph(n, name=f"BF({d},{D})")
    table = word_table(d, D)
    for level in range(D):
        base = level * n_words
        next_base = (level + 1) * n_words
        position = level  # digit index counted from the right
        for u in range(n_words):
            word = table[u].copy()
            for letter in range(d):
                word[D - 1 - position] = letter
                v = int(words_to_ints(word[None, :], d)[0])
                graph.add_arc(base + u, next_base + v)
    return graph


def shufflenet(d: int, k: int) -> Digraph:
    """The ShuffleNet multihop lightwave network with ``k`` columns of ``d**k`` nodes.

    Column ``c`` node ``u`` connects to column ``(c+1) mod k`` nodes
    ``d*u + λ mod d**k`` — i.e. de Bruijn connections between consecutive
    columns, wrapped around (ref. [27]).
    """
    check_alphabet(d, k)
    n_col = d**k
    n = k * n_col
    graph = Digraph(n, name=f"ShuffleNet({d},{k})")
    for column in range(k):
        base = column * n_col
        next_base = ((column + 1) % k) * n_col
        for u in range(n_col):
            for lam in range(d):
                graph.add_arc(base + u, next_base + (d * u + lam) % n_col)
    return graph


def gemnet(d: int, k: int, m: int) -> Digraph:
    """GEMNET: a generalisation of ShuffleNet to ``k`` columns of ``m`` nodes.

    Column ``c`` node ``u`` connects to column ``(c+1) mod k`` nodes
    ``(d*u + λ) mod m``; when ``m`` is not a power of ``d`` this is the
    "fully scalable network of any size" the paper's introduction mentions
    (refs. [22, 27]).
    """
    check_alphabet(d)
    if k < 1 or m < 1:
        raise ValueError("k and m must be positive")
    n = k * m
    graph = Digraph(n, name=f"GEMNET({d},{k},{m})")
    for column in range(k):
        base = column * m
        next_base = ((column + 1) % k) * m
        for u in range(m):
            for lam in range(d):
                graph.add_arc(base + u, next_base + (d * u + lam) % m)
    return graph


def hypercube_digraph(D: int) -> RegularDigraph:
    """The ``D``-dimensional hypercube with each edge replaced by two arcs."""
    if D < 1:
        raise ValueError("D must be positive")
    n = 2**D
    vertices = np.arange(n, dtype=np.int64)
    successors = np.empty((n, D), dtype=np.int64)
    for bit in range(D):
        successors[:, bit] = vertices ^ (1 << bit)
    return RegularDigraph(successors, name=f"Q_{D}")


def bidirectional_torus(rows: int, cols: int) -> RegularDigraph:
    """A 2-D wrap-around mesh (torus) with bidirectional links, degree 4."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    n = rows * cols
    successors = np.empty((n, 4), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            successors[u, 0] = r * cols + (c + 1) % cols
            successors[u, 1] = r * cols + (c - 1) % cols
            successors[u, 2] = ((r + 1) % rows) * cols + c
            successors[u, 3] = ((r - 1) % rows) * cols + c
    return RegularDigraph(successors, name=f"torus({rows}x{cols})")
