"""Export digraphs and OTIS wirings as Graphviz DOT / plain-text diagrams.

The paper communicates its constructions through eight figures; this module
regenerates them as artifacts a user can render (``dot -Tpdf``) or read in a
terminal:

* :func:`to_dot` — any digraph as a DOT string, optionally labelling vertices
  by their words (Figures 1, 5, 8),
* :func:`adjacency_listing` — the compact textual adjacency used throughout
  the tests and examples (Figures 2, 3),
* :func:`otis_wiring_dot` / :func:`otis_wiring_text` — the bipartite
  transmitter → receiver wiring of an ``OTIS(p, q)`` system (Figures 6, 7).

Rendering itself is left to Graphviz (not a dependency); everything here is
pure string generation and is exercised by unit tests.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.graphs.digraph import BaseDigraph

__all__ = [
    "to_dot",
    "adjacency_listing",
    "otis_wiring_dot",
    "otis_wiring_text",
]


def _default_label(graph: BaseDigraph) -> Callable[[int], str]:
    labels = getattr(graph, "labels", None)
    if labels is None:
        return lambda u: str(u)

    def label(u: int) -> str:
        value = labels[u]
        if isinstance(value, tuple):
            return "".join(str(int(x)) for x in value)
        return str(value)

    return label


def to_dot(
    graph: BaseDigraph,
    name: str | None = None,
    vertex_label: Callable[[int], str] | None = None,
    highlight: Sequence[int] | None = None,
) -> str:
    """Render a digraph as a Graphviz DOT string.

    Parameters
    ----------
    graph:
        The digraph to render; parallel arcs produce parallel edges.
    name:
        Graph name (defaults to the digraph's ``name`` or ``"G"``).
    vertex_label:
        Optional function mapping a vertex index to its display label; by
        default word labels are used when the generator attached them
        (``B(2,3)`` vertices render as ``000 ... 111``, as in Figure 1).
    highlight:
        Optional vertices to draw filled (e.g. one connected component of a
        non-cyclic alphabet digraph, as in Figure 5).
    """
    label = vertex_label or _default_label(graph)
    graph_name = name or graph.name or "G"
    highlighted = set(highlight or ())
    lines = [f'digraph "{graph_name}" {{', "  rankdir=LR;", "  node [shape=circle];"]
    for u in graph.vertices():
        attributes = [f'label="{label(u)}"']
        if u in highlighted:
            attributes.append('style=filled fillcolor="lightblue"')
        lines.append(f"  v{u} [{' '.join(attributes)}];")
    for u, v in graph.arcs():
        lines.append(f"  v{u} -> v{v};")
    lines.append("}")
    return "\n".join(lines)


def adjacency_listing(
    graph: BaseDigraph, vertex_label: Callable[[int], str] | None = None
) -> str:
    """A compact plain-text adjacency listing, one vertex per line.

    ``000 -> 000, 001`` style, matching how the examples print the small
    figures of the paper.
    """
    label = vertex_label or _default_label(graph)
    lines = []
    for u in graph.vertices():
        successors = ", ".join(label(v) for v in graph.out_neighbors(u))
        lines.append(f"{label(u)} -> {successors}")
    return "\n".join(lines)


def otis_wiring_dot(p: int, q: int) -> str:
    """The ``OTIS(p, q)`` transmitter→receiver wiring as a bipartite DOT graph.

    Transmitters are drawn in one rank (grouped ``p`` groups of ``q``) and
    receivers in another (``q`` groups of ``p``); each of the ``p*q`` beams is
    one edge — the content of Figure 6.
    """
    from repro.otis.architecture import OTISArchitecture

    otis = OTISArchitecture(p, q)
    lines = [f'digraph "OTIS({p},{q})" {{', "  rankdir=LR;", "  node [shape=box];"]
    for i in range(p):
        for j in range(q):
            lines.append(f'  t_{i}_{j} [label="T({i},{j})"];')
    for a in range(q):
        for b in range(p):
            lines.append(f'  r_{a}_{b} [label="R({a},{b})"];')
    lines.append("  { rank=same; " + "; ".join(
        f"t_{i}_{j}" for i in range(p) for j in range(q)) + "; }")
    lines.append("  { rank=same; " + "; ".join(
        f"r_{a}_{b}" for a in range(q) for b in range(p)) + "; }")
    for i in range(p):
        for j in range(q):
            a, b = otis.receiver_of(i, j)
            lines.append(f"  t_{i}_{j} -> r_{a}_{b};")
    lines.append("}")
    return "\n".join(lines)


def otis_wiring_text(p: int, q: int) -> str:
    """A plain-text table of the ``OTIS(p, q)`` wiring (one line per beam)."""
    from repro.otis.architecture import OTISArchitecture

    otis = OTISArchitecture(p, q)
    lines = [f"OTIS({p},{q}): {p * q} beams, {p + q} lenses"]
    for i in range(p):
        for j in range(q):
            a, b = otis.receiver_of(i, j)
            path = otis.optical_path(i, j)
            lines.append(
                f"  T({i},{j}) --lens {path.transmitter_lens}/"
                f"{path.receiver_lens}--> R({a},{b})"
            )
    return "\n".join(lines)
