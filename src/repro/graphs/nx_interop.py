"""Interoperability with :mod:`networkx`.

The library never depends on networkx for its own algorithms — the digraph
substrate is self-contained — but conversions are handy for plotting, for the
users of the public API who already live in the networkx ecosystem, and for
the test-suite, which cross-checks the generic isomorphism tester and the
de Bruijn / Kautz generators against ``networkx.de_bruijn_graph`` and
``networkx.kautz_graph``.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.digraph import BaseDigraph, Digraph

__all__ = ["to_networkx", "from_networkx", "networkx_is_isomorphic"]


def to_networkx(graph: BaseDigraph) -> nx.MultiDiGraph:
    """Convert to a :class:`networkx.MultiDiGraph` (parallel arcs preserved).

    Vertex labels stay the integers ``0 .. n-1``; the digraph ``name`` is
    copied into the networkx graph attributes.
    """
    result = nx.MultiDiGraph(name=graph.name)
    result.add_nodes_from(range(graph.num_vertices))
    result.add_edges_from(graph.arcs())
    return result


def from_networkx(graph: nx.DiGraph | nx.MultiDiGraph) -> Digraph:
    """Convert a networkx (multi)digraph with hashable nodes to a :class:`Digraph`.

    Nodes are relabelled ``0 .. n-1`` in sorted order when sortable, otherwise
    in insertion order.  Undirected graphs are rejected.
    """
    if not graph.is_directed():
        raise ValueError("from_networkx expects a directed graph")
    nodes = list(graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {node: i for i, node in enumerate(nodes)}
    result = Digraph(len(nodes), name=str(graph.name) if graph.name else "")
    for u, v in graph.edges():
        result.add_arc(index[u], index[v])
    return result


def networkx_is_isomorphic(g1: BaseDigraph, g2: BaseDigraph) -> bool:
    """Isomorphism decision delegated to networkx (cross-validation helper).

    Used by the test-suite to corroborate
    :func:`repro.graphs.isomorphism.are_isomorphic` on small instances; not
    part of any hot path.
    """
    return nx.is_isomorphic(to_networkx(g1), to_networkx(g2))
