"""Generic digraph isomorphism testing.

The paper's efficiency claim (Corollary 4.5) is that deciding whether an OTIS
digraph ``H(p, q, d)`` is isomorphic to the de Bruijn digraph ``B(d, D)``
takes only ``O(D)`` time — one cyclicity test on a permutation of ``Z_D`` —
whereas a *generic* digraph isomorphism search works on the full ``d**D``
vertex set.  This module implements that generic baseline:

1. cheap invariant screening (vertex/arc counts, degree multisets, loop
   counts),
2. iterative colour refinement (the 1-dimensional Weisfeiler–Leman algorithm
   adapted to digraphs with parallel arcs), and
3. backtracking search over the refined colour classes, VF2-style.

It is exact: :func:`find_isomorphism` returns an explicit vertex bijection or
``None``, and :func:`is_isomorphism` verifies a candidate bijection by
comparing arc multisets (the function used throughout the tests to validate
the paper's *constructive* isomorphisms).

For cross-validation the test-suite also compares against
``networkx.algorithms.isomorphism.DiGraphMatcher`` on small instances.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.graphs.digraph import BaseDigraph

__all__ = [
    "is_isomorphism",
    "are_isomorphic",
    "find_isomorphism",
    "refinement_colors",
    "invariant_fingerprint",
]


def is_isomorphism(
    source: BaseDigraph, target: BaseDigraph, mapping: Sequence[int] | np.ndarray
) -> bool:
    """Check that ``mapping`` is a digraph isomorphism from ``source`` to ``target``.

    ``mapping[u]`` is the image in ``target`` of vertex ``u`` of ``source``.
    The check compares the full arc multisets, so parallel arcs and loops are
    handled exactly.
    """
    n = source.num_vertices
    if target.num_vertices != n:
        return False
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (n,):
        return False
    if sorted(mapping.tolist()) != list(range(n)):
        return False
    mapped = Counter(
        (int(mapping[u]), int(mapping[v])) for u, v in source.arcs()
    )
    return mapped == target.arc_multiset()


def invariant_fingerprint(graph: BaseDigraph, rounds: int = 3) -> tuple:
    """A cheap isomorphism-invariant fingerprint of a digraph.

    Combines vertex/arc counts, loop count, the joint (out-degree, in-degree)
    multiset and the colour histogram after a few refinement rounds.  Two
    isomorphic digraphs always have equal fingerprints; unequal fingerprints
    certify non-isomorphism.
    """
    colors = refinement_colors(graph, rounds=rounds)
    histogram = tuple(sorted(Counter(colors).values()))
    out_in = tuple(
        sorted(zip(graph.out_degrees().tolist(), graph.in_degrees().tolist()))
    )
    return (
        graph.num_vertices,
        graph.num_arcs,
        graph.num_loops(),
        out_in,
        histogram,
    )


def refinement_colors(graph: BaseDigraph, rounds: int | None = None) -> list[int]:
    """Colour refinement (directed 1-WL) with arc multiplicities.

    Starting from the (out-degree, in-degree, loop-count) colouring, each
    round recolours a vertex by the multiset of colours of its out- and
    in-neighbours.  Refinement stops when the partition is stable or after
    ``rounds`` iterations.  Returns a list of integer colours.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    out_adj = [graph.out_neighbors(u) for u in range(n)]
    in_adj: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in out_adj[u]:
            in_adj[v].append(u)

    loops = [sum(1 for v in out_adj[u] if v == u) for u in range(n)]
    signatures = [
        (len(out_adj[u]), len(in_adj[u]), loops[u]) for u in range(n)
    ]
    colors = _canonicalise(signatures)

    max_rounds = n if rounds is None else rounds
    for _ in range(max_rounds):
        new_signatures = []
        for u in range(n):
            out_colors = tuple(sorted(colors[v] for v in out_adj[u]))
            in_colors = tuple(sorted(colors[v] for v in in_adj[u]))
            new_signatures.append((colors[u], out_colors, in_colors))
        new_colors = _canonicalise(new_signatures)
        if len(set(new_colors)) == len(set(colors)) and new_colors == colors:
            break
        if len(set(new_colors)) == len(set(colors)):
            colors = new_colors
            break
        colors = new_colors
    return colors


def _canonicalise(signatures: list) -> list[int]:
    """Map arbitrary hashable signatures to dense integer colours."""
    order = {sig: i for i, sig in enumerate(sorted(set(signatures), key=repr))}
    return [order[sig] for sig in signatures]


def are_isomorphic(
    g1: BaseDigraph, g2: BaseDigraph, max_nodes: int | None = None
) -> bool:
    """Decide whether two digraphs are isomorphic (exact, exponential worst case).

    ``max_nodes`` optionally bounds the backtracking effort; when exceeded a
    :class:`RuntimeError` is raised rather than returning a wrong answer.
    """
    return find_isomorphism(g1, g2, max_nodes=max_nodes) is not None


def find_isomorphism(
    g1: BaseDigraph, g2: BaseDigraph, max_nodes: int | None = None
) -> list[int] | None:
    """Find an explicit isomorphism from ``g1`` to ``g2`` or return ``None``.

    The search interleaves colour refinement with backtracking: vertices are
    matched in order of increasing colour-class size, and every tentative
    match is checked against the already-matched neighbourhood (with arc
    multiplicities).
    """
    n = g1.num_vertices
    if g2.num_vertices != n:
        return None
    if g1.num_arcs != g2.num_arcs:
        return None
    if invariant_fingerprint(g1) != invariant_fingerprint(g2):
        return None
    if n == 0:
        return []

    colors1 = refinement_colors(g1)
    colors2 = refinement_colors(g2)
    if sorted(Counter(colors1).values()) != sorted(Counter(colors2).values()):
        return None

    out_adj1 = [Counter(g1.out_neighbors(u)) for u in range(n)]
    out_adj2 = [Counter(g2.out_neighbors(u)) for u in range(n)]

    # Candidate targets per colour.
    by_color2: dict[int, list[int]] = {}
    for v in range(n):
        by_color2.setdefault(colors2[v], []).append(v)

    # Order source vertices: smallest candidate sets first (fail fast).
    color_sizes = Counter(colors1)
    order = sorted(range(n), key=lambda u: (color_sizes[colors1[u]], u))

    mapping = [-1] * n
    used = [False] * n
    matched: list[int] = []  # source vertices matched so far, in match order
    nodes_visited = 0

    def compatible(u: int, v: int) -> bool:
        """Check consistency of matching u -> v with the partial mapping.

        Both directions are verified with multiplicities: for every already
        matched source vertex ``w`` with image ``m``, the arc multiplicities
        ``u -> w`` / ``w -> u`` in ``g1`` must equal ``v -> m`` / ``m -> v``
        in ``g2``; loops are compared separately.
        """
        if colors1[u] != colors2[v]:
            return False
        if out_adj1[u].get(u, 0) != out_adj2[v].get(v, 0):
            return False
        for w in matched:
            image = mapping[w]
            if out_adj1[u].get(w, 0) != out_adj2[v].get(image, 0):
                return False
            if out_adj1[w].get(u, 0) != out_adj2[image].get(v, 0):
                return False
        return True

    def backtrack(position: int) -> bool:
        nonlocal nodes_visited
        if position == n:
            return True
        nodes_visited += 1
        if max_nodes is not None and nodes_visited > max_nodes:
            raise RuntimeError(
                "isomorphism search exceeded max_nodes; increase the budget"
            )
        u = order[position]
        for v in by_color2.get(colors1[u], ()):
            if used[v]:
                continue
            if not compatible(u, v):
                continue
            mapping[u] = v
            used[v] = True
            matched.append(u)
            if backtrack(position + 1):
                return True
            matched.pop()
            mapping[u] = -1
            used[v] = False
        return False

    if not backtrack(0):
        return None
    assert is_isomorphism(g1, g2, mapping), "internal error: invalid isomorphism"
    return mapping
