"""Lease-based fleet driver: auto-assigned sweep/sim chunks on a shared dir.

``repro sweep --shard i/k`` and ``repro sim --shard i/k`` split work
*statically*: every host must be told its index, a crashed host's shard
simply never finishes, and a fast host idles while a slow one grinds.  This
package replaces the hand-rolled shard loops with **dynamic self-assignment**
in the work-stealing spirit of the Bobpp framework (PAPERS.md): any number of
worker processes — same host, or many hosts on a shared filesystem — point at
one ``--out-dir`` and claim chunks through atomic lease files with a TTL.

* :mod:`repro.fleet.leases` — the claim protocol.  A lease is a file created
  exclusively via write-tmp/fsync/``os.link`` (the NFS-safe mutual-exclusion
  technique — see the module docstring for why not ``O_EXCL`` alone),
  refreshed by heartbeat ``mtime`` touches, and reclaimable by any worker
  once a full TTL passes without a heartbeat — judged by wall clock with a
  configurable skew margin *or* by local monotonic observation, so fleets
  spanning hosts with disagreeing clocks stay safe.
* :mod:`repro.fleet.driver` — :class:`~repro.fleet.driver.FleetJob` adapts a
  chunk backend (the degree–diameter sweep of :mod:`repro.otis.sweep`, the
  replica simulation of :mod:`repro.simulation.sharding`) to one claim →
  run → publish → release loop, :func:`~repro.fleet.driver.run_fleet`, with
  worker-side lease prefetch and deterministic straggler splitting
  (``split_after``): an overweight chunk is cut into deterministically named
  sub-chunks any worker can claim, and the assembled parent file is
  byte-identical to the unsplit run.
* :mod:`repro.fleet.status` — live progress/heartbeat snapshots over a store
  (who holds what, for how long, how much is done), the ``--watch`` view.

The CLI front-end is ``python -m repro fleet sweep ...`` / ``fleet sim ...``
(plus ``fleet smoke``, a seconds-long end-to-end exercise of the whole
claim → run → reclaim → merge cycle).  Merges are byte-identical to the
serial paths — the leases only decide *who* runs a chunk, never what it
computes.
"""

from repro.fleet.driver import (
    DEFAULT_HEARTBEAT_FRACTION,
    DEFAULT_TTL,
    FleetJob,
    FleetTerminated,
    SimFleetJob,
    SweepFleetJob,
    run_fleet,
)
from repro.fleet.leases import Heartbeat, Lease, LeaseInfo, LeaseManager
from repro.fleet.status import (
    fleet_status,
    format_status,
    status_to_json,
    store_status,
)

__all__ = [
    "DEFAULT_HEARTBEAT_FRACTION",
    "DEFAULT_TTL",
    "FleetJob",
    "FleetTerminated",
    "SweepFleetJob",
    "SimFleetJob",
    "run_fleet",
    "Heartbeat",
    "Lease",
    "LeaseInfo",
    "LeaseManager",
    "fleet_status",
    "format_status",
    "status_to_json",
    "store_status",
]
