"""The fleet loop: claim a chunk, run it, publish it, release, repeat.

:class:`FleetJob` is the small protocol that makes the two chunk backends —
the degree–diameter sweep (:mod:`repro.otis.sweep`) and the replica
simulation (:mod:`repro.simulation.sharding`) — interchangeable under one
driver.  A job owns a manifest (the named chunks), a
:class:`~repro.otis.sweep.ChunkStore` (the published results) and knows how
to compute one chunk's records; :func:`run_fleet` supplies everything else:
store-identity verification, lease claiming with TTL/heartbeat, reclaim of
crashed workers' chunks, and termination once every chunk is published.

The driver adds **no semantics** to the results: a chunk's records are the
same bytes whether the serial path, a ``--shard i/k`` run or a fleet worker
computed them (chunk computations are pure, publication is one atomic
rename), so fleet merges are byte-identical to serial merges — the property
every test in ``tests/test_fleet.py`` pins down.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from pathlib import Path

from repro.fleet.leases import Heartbeat, LeaseManager
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    SplitVerdictCache,
    SweepChunk,
    ensure_store_identity,
    merge_sweep,
)
from repro.otis.sweep import run_chunk as _run_sweep_chunk

__all__ = [
    "DEFAULT_TTL",
    "DEFAULT_HEARTBEAT_FRACTION",
    "LEASE_DIR_NAME",
    "FleetJob",
    "SweepFleetJob",
    "SimFleetJob",
    "run_fleet",
    "default_worker_id",
]

#: Default lease TTL in seconds.  Generous against scheduler/NFS hiccups yet
#: short enough that a crashed worker's chunk is reclaimed within a minute.
DEFAULT_TTL = 60.0

#: Heartbeat interval as a fraction of the TTL: four beats per TTL window,
#: so one lost beat (GC pause, NFS retry) never looks like a death.
DEFAULT_HEARTBEAT_FRACTION = 0.25

#: Subdirectory of the chunk store holding the lease files.
LEASE_DIR_NAME = "leases"


def default_worker_id() -> str:
    """A worker id unique across hosts and restarts (host-pid-nonce)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class FleetJob:
    """One fleet-drivable workload: a manifest of chunks over a store.

    Subclasses bind a concrete backend.  ``manifest`` must expose
    ``chunks`` (a tuple of :class:`~repro.otis.sweep.SweepChunk`) and
    ``identity()`` (the ``manifest.json`` payload); ``run_chunk`` must be a
    pure function of the chunk — the driver may execute it on any worker,
    more than once across reclaims, and relies on every execution producing
    identical records.
    """

    manifest = None
    store: ChunkStore = None  # type: ignore[assignment]

    def chunks(self) -> tuple[SweepChunk, ...]:
        return self.manifest.chunks

    def identity(self) -> dict:
        return self.manifest.identity()

    def run_chunk(self, chunk: SweepChunk) -> list[dict]:
        raise NotImplementedError

    def merge(self):
        """Fold the completed store into the backend's final result."""
        raise NotImplementedError

    def progress_summary(self) -> str:
        """One human line of domain progress (shown by ``--watch``)."""
        return ""

    def describe(self) -> str:
        return f"{type(self).__name__}: {len(self.chunks())} chunks"


class SweepFleetJob(FleetJob):
    """Degree–diameter sweep chunks (:mod:`repro.otis.sweep`) as a fleet job.

    ``cache`` is the optional :class:`~repro.otis.sweep.SplitVerdictCache`
    directory shared by the fleet: each worker appends fresh verdicts with
    single ``O_APPEND`` writes, so any number of workers share one cache
    file safely.
    """

    def __init__(
        self,
        manifest: ChunkManifest,
        store: ChunkStore | str | Path,
        *,
        cache: SplitVerdictCache | str | Path | None = None,
    ):
        self.manifest = manifest
        self.store = store if isinstance(store, ChunkStore) else ChunkStore(store)
        if isinstance(cache, SplitVerdictCache):
            self._cache = cache
        elif cache is not None:
            self._cache = SplitVerdictCache(
                cache, manifest.d, manifest.diameter, version=manifest.code_version
            )
        else:
            self._cache = None

    def run_chunk(self, chunk: SweepChunk) -> list[dict]:
        payload = (
            self.manifest.d,
            self.manifest.diameter,
            chunk.items,
            None,
            self.manifest.code_version,
        )
        return _run_sweep_chunk(payload, cache=self._cache)

    def merge(self):
        return merge_sweep(self.manifest, self.store)

    def progress_summary(self) -> str:
        # The merge_sweep(partial=True) fold, but strictly read-only (no
        # identity write): status readers must never mutate the store.
        from repro.otis.sweep import fold_records

        complete = self.store.completed_ids()
        records: list[dict] = []
        for chunk in self.chunks():
            if chunk.chunk_id in complete:
                records.extend(self.store.read(chunk))
        partial = fold_records(self.manifest, records)
        splits = sum(len(entries) for _, entries in partial.rows)
        return (
            f"d={self.manifest.d} D={self.manifest.diameter}: "
            f"{len(partial.rows)} table rows ({splits} splits) so far"
        )

    def describe(self) -> str:
        return (
            f"sweep d={self.manifest.d} D={self.manifest.diameter} "
            f"n={self.manifest.n_values[0]}..{self.manifest.n_values[-1]}: "
            f"{len(self.chunks())} chunks "
            f"(code version {self.manifest.code_version})"
        )


class SimFleetJob(FleetJob):
    """Replica-simulation chunks (:mod:`repro.simulation.sharding`) as a job.

    The supplied traffics are verified against the manifest's digests once,
    up front — the fleet must never simulate messages other than the ones
    the chunk ids were derived from.
    """

    def __init__(self, manifest, store: ChunkStore | str | Path, graph, traffics):
        from repro.simulation.sharding import verify_traffics

        self.manifest = manifest
        self.store = store if isinstance(store, ChunkStore) else ChunkStore(store)
        self.graph = graph
        self._arrays = verify_traffics(manifest, traffics)

    def run_chunk(self, chunk: SweepChunk) -> list[dict]:
        from repro.simulation.sharding import _run_replica_chunk

        payload = (
            self.graph,
            self.manifest.link,
            self.manifest.router,
            self.manifest.scenario,
            [(index, self._arrays[index]) for index, _ in chunk.items],
        )
        return _run_replica_chunk(payload)

    def merge(self):
        from repro.simulation.sharding import merge_replica_stats

        return merge_replica_stats(self.manifest, self.store)

    def progress_summary(self) -> str:
        complete = self.store.completed_ids()
        replicas = sum(
            len(chunk.items)
            for chunk in self.chunks()
            if chunk.chunk_id in complete
        )
        return f"{replicas}/{self.manifest.num_replicas} replicas simulated"

    def describe(self) -> str:
        return (
            f"sim {self.graph.name}: {self.manifest.num_replicas} replicas in "
            f"{len(self.chunks())} chunks (router {self.manifest.router}, "
            f"code version {self.manifest.code_version})"
        )


def run_fleet(
    job: FleetJob,
    *,
    worker_id: str | None = None,
    ttl: float = DEFAULT_TTL,
    heartbeat: float | None = None,
    wait: bool = True,
    poll: float | None = None,
    max_chunks: int | None = None,
) -> dict:
    """Drive a fleet worker over a job until every chunk is published.

    Parameters
    ----------
    job:
        The workload.  Any number of ``run_fleet`` processes may drive the
        same job concurrently — chunk assignment is dynamic, through the
        lease files under ``<store>/leases/``.
    worker_id:
        Identity written into lease files (diagnostics only; defaults to
        ``host-pid-nonce``).
    ttl:
        Lease expiry in seconds.  **A protocol constant of the out-dir**:
        every cooperating worker must use the same value.
    heartbeat:
        Lease refresh interval while computing a chunk (default
        ``ttl * 0.25``).  Must be well below ``ttl``.
    wait:
        When True (default), a worker that finds every remaining chunk
        leased by live peers polls until the store completes — so it also
        picks up chunks whose owners crash later.  False returns as soon as
        nothing is claimable (used by tests and one-shot helpers).
    poll:
        Re-scan interval while waiting (default ``ttl / 4``, clamped to
        [0.05, 2.0] seconds).
    max_chunks:
        Stop after running this many chunks (smoke tests, draining).

    Returns
    -------
    dict with the worker id, ``ran`` / ``lost`` chunk-id lists (``lost`` =
    computed but not published because the lease expired mid-run and another
    worker reclaimed it), and ``complete`` (whether the whole store finished).
    """
    if heartbeat is None:
        heartbeat = ttl * DEFAULT_HEARTBEAT_FRACTION
    if not 0 < heartbeat < ttl:
        raise ValueError("need 0 < heartbeat < ttl")
    if poll is None:
        poll = min(2.0, max(0.05, ttl / 4.0))
    worker = worker_id or default_worker_id()
    ensure_store_identity(job.store, job.identity())
    leases = LeaseManager(job.store.directory / LEASE_DIR_NAME, ttl=ttl)
    ran: list[str] = []
    lost: list[str] = []
    while True:
        claimed_any = False
        # One directory listing per pass instead of a stat per chunk — on a
        # many-thousand-chunk store over NFS the difference is thousands of
        # round-trips every poll interval.  The snapshot may be stale by the
        # time a chunk is claimed, hence the authoritative per-chunk
        # is_complete re-check under the freshly held lease below.
        published = job.store.completed_ids()
        for chunk in job.chunks():
            if max_chunks is not None and len(ran) >= max_chunks:
                break
            if chunk.chunk_id in published:
                continue
            lease = leases.try_acquire(chunk.chunk_id, worker=worker)
            if lease is None:
                continue
            try:
                if job.store.is_complete(chunk):
                    continue  # published between our scan and claim
                with Heartbeat(lease, interval=heartbeat):
                    records = job.run_chunk(chunk)
                if lease.owned():
                    job.store.write(chunk, records)
                    ran.append(chunk.chunk_id)
                else:
                    # The lease expired mid-run (this worker stalled past the
                    # TTL) and was reclaimed: the reclaimer owns publication
                    # now.  Discard our records — publishing over a fresher
                    # claim would race the reclaimer's execution of the same
                    # chunk.
                    lost.append(chunk.chunk_id)
                claimed_any = True
            finally:
                lease.release()
        published = job.store.completed_ids()
        if all(chunk.chunk_id in published for chunk in job.chunks()):
            break
        if max_chunks is not None and len(ran) >= max_chunks:
            break
        if not claimed_any:
            if not wait:
                break
            time.sleep(poll)
    published = job.store.completed_ids()
    return {
        "worker": worker,
        "ran": ran,
        "lost": lost,
        "complete": all(chunk.chunk_id in published for chunk in job.chunks()),
        "chunks": len(job.chunks()),
        "store": str(job.store.directory),
    }
