"""The fleet loop: claim a chunk, run it, publish it, release, repeat.

:class:`FleetJob` is the small protocol that makes the two chunk backends —
the degree–diameter sweep (:mod:`repro.otis.sweep`) and the replica
simulation (:mod:`repro.simulation.sharding`) — interchangeable under one
driver.  A job owns a manifest (the named chunks), a
:class:`~repro.otis.sweep.ChunkStore` (the published results) and knows how
to compute one chunk's records; :func:`run_fleet` supplies everything else:
store-identity verification, lease claiming with TTL/heartbeat, reclaim of
crashed workers' chunks, and termination once every chunk is published.

The driver adds **no semantics** to the results: a chunk's records are the
same bytes whether the serial path, a ``--shard i/k`` run or a fleet worker
computed them (chunk computations are pure, publication is one atomic
rename), so fleet merges are byte-identical to serial merges — the property
every test in ``tests/test_fleet.py`` pins down.
"""

from __future__ import annotations

import os
import signal
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.fleet.leases import Heartbeat, Lease, LeaseManager
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    SplitVerdictCache,
    SweepChunk,
    assemble_split,
    ensure_store_identity,
    merge_sweep,
    split_chunk,
)
from repro.otis.sweep import run_chunk as _run_sweep_chunk

__all__ = [
    "DEFAULT_TTL",
    "DEFAULT_HEARTBEAT_FRACTION",
    "LEASE_DIR_NAME",
    "FleetJob",
    "FleetTerminated",
    "SweepFleetJob",
    "SimFleetJob",
    "run_fleet",
    "default_worker_id",
]

#: Default lease TTL in seconds.  Generous against scheduler/NFS hiccups yet
#: short enough that a crashed worker's chunk is reclaimed within a minute.
DEFAULT_TTL = 60.0

#: Heartbeat interval as a fraction of the TTL: four beats per TTL window,
#: so one lost beat (GC pause, NFS retry) never looks like a death.
DEFAULT_HEARTBEAT_FRACTION = 0.25

#: Subdirectory of the chunk store holding the lease files.
LEASE_DIR_NAME = "leases"


#: Ceiling of the idle-poll exponential backoff (seconds) — a fleet of idle
#: workers re-scans shared storage at most every ~5 s instead of hammering it.
MAX_POLL = 5.0


def default_worker_id() -> str:
    """A worker id unique across hosts and restarts (host-pid-nonce)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class FleetTerminated(Exception):
    """Raised in the worker's main thread by the SIGTERM handler.

    :func:`run_fleet` (with ``handle_sigterm=True``) converts the signal into
    this exception so the normal ``finally`` chain runs — the current lease
    is released promptly instead of lingering until TTL reclaim — and the
    outcome dict reports ``terminated=True``.
    """


class FleetJob:
    """One fleet-drivable workload: a manifest of chunks over a store.

    Subclasses bind a concrete backend.  ``manifest`` must expose
    ``chunks`` (a tuple of :class:`~repro.otis.sweep.SweepChunk`) and
    ``identity()`` (the ``manifest.json`` payload); ``run_chunk`` must be a
    pure function of the chunk — the driver may execute it on any worker,
    more than once across reclaims, and relies on every execution producing
    identical records.
    """

    manifest = None
    store: ChunkStore = None  # type: ignore[assignment]

    def chunks(self) -> tuple[SweepChunk, ...]:
        return self.manifest.chunks

    def identity(self) -> dict:
        return self.manifest.identity()

    def run_chunk(self, chunk: SweepChunk) -> list[dict]:
        raise NotImplementedError

    def merge(self):
        """Fold the completed store into the backend's final result."""
        raise NotImplementedError

    def progress_summary(self) -> str:
        """One human line of domain progress (shown by ``--watch``)."""
        return ""

    def describe(self) -> str:
        return f"{type(self).__name__}: {len(self.chunks())} chunks"


class SweepFleetJob(FleetJob):
    """Degree–diameter sweep chunks (:mod:`repro.otis.sweep`) as a fleet job.

    ``cache`` is the optional :class:`~repro.otis.sweep.SplitVerdictCache`
    directory shared by the fleet: each worker appends fresh verdicts with
    single ``O_APPEND`` writes, so any number of workers share one cache
    file safely.
    """

    def __init__(
        self,
        manifest: ChunkManifest,
        store: ChunkStore | str | Path,
        *,
        cache: SplitVerdictCache | str | Path | None = None,
    ):
        self.manifest = manifest
        self.store = store if isinstance(store, ChunkStore) else ChunkStore(store)
        if isinstance(cache, SplitVerdictCache):
            self._cache = cache
        elif cache is not None:
            self._cache = SplitVerdictCache(
                cache, manifest.d, manifest.diameter, version=manifest.code_version
            )
        else:
            self._cache = None

    def run_chunk(self, chunk: SweepChunk) -> list[dict]:
        payload = (
            self.manifest.d,
            self.manifest.diameter,
            chunk.items,
            None,
            self.manifest.code_version,
        )
        return _run_sweep_chunk(payload, cache=self._cache)

    def merge(self):
        return merge_sweep(self.manifest, self.store)

    def progress_summary(self) -> str:
        # The merge_sweep(partial=True) fold, but strictly read-only (no
        # identity write): status readers must never mutate the store.
        from repro.otis.sweep import fold_records

        complete = self.store.completed_ids()
        records: list[dict] = []
        for chunk in self.chunks():
            if chunk.chunk_id in complete:
                records.extend(self.store.read(chunk))
        partial = fold_records(self.manifest, records)
        splits = sum(len(entries) for _, entries in partial.rows)
        return (
            f"d={self.manifest.d} D={self.manifest.diameter}: "
            f"{len(partial.rows)} table rows ({splits} splits) so far"
        )

    def describe(self) -> str:
        return (
            f"sweep d={self.manifest.d} D={self.manifest.diameter} "
            f"n={self.manifest.n_values[0]}..{self.manifest.n_values[-1]}: "
            f"{len(self.chunks())} chunks "
            f"(code version {self.manifest.code_version})"
        )


class SimFleetJob(FleetJob):
    """Replica-simulation chunks (:mod:`repro.simulation.sharding`) as a job.

    The supplied traffics are verified against the manifest's digests once,
    up front — the fleet must never simulate messages other than the ones
    the chunk ids were derived from.
    """

    def __init__(self, manifest, store: ChunkStore | str | Path, graph, traffics):
        from repro.simulation.sharding import verify_traffics

        self.manifest = manifest
        self.store = store if isinstance(store, ChunkStore) else ChunkStore(store)
        self.graph = graph
        self._arrays = verify_traffics(manifest, traffics)

    def run_chunk(self, chunk: SweepChunk) -> list[dict]:
        from repro.simulation.sharding import run_replica_chunk

        payload = (
            self.graph,
            self.manifest.link,
            self.manifest.router,
            self.manifest.scenario,
            [(index, self._arrays[index]) for index, _ in chunk.items],
        )
        return run_replica_chunk(payload)

    def merge(self):
        from repro.simulation.sharding import merge_replica_stats

        return merge_replica_stats(self.manifest, self.store)

    def progress_summary(self) -> str:
        complete = self.store.completed_ids()
        replicas = sum(
            len(chunk.items)
            for chunk in self.chunks()
            if chunk.chunk_id in complete
        )
        return f"{replicas}/{self.manifest.num_replicas} replicas simulated"

    def describe(self) -> str:
        return (
            f"sim {self.graph.name}: {self.manifest.num_replicas} replicas in "
            f"{len(self.chunks())} chunks (router {self.manifest.router}, "
            f"code version {self.manifest.code_version})"
        )


@dataclass(frozen=True)
class _Unit:
    """One claimable piece of fleet work.

    ``kind`` is ``"chunk"`` (a whole manifest chunk), ``"sub"`` (one
    deterministically named sub-chunk of a split parent) or ``"asm"``
    (assembling a fully published split back into its parent file).  The
    lease id doubles as the unit's identity: ``<chunk_id>`` for chunks,
    ``<parent>.s<i>`` for sub-chunks, ``<parent>.asm`` for assembly — all
    distinct because chunk ids are 16 hex digits with no dots.
    """

    kind: str
    chunk: SweepChunk  # the chunk to compute ("chunk"/"sub") or parent ("asm")
    parent: SweepChunk | None = None
    parts: int | None = None

    @property
    def lease_id(self) -> str:
        if self.kind == "asm":
            return f"{self.chunk.chunk_id}.asm"
        return self.chunk.chunk_id

    def settled(self, store: ChunkStore, published: set[str]) -> bool:
        """Is this unit's output (or its parent's) already on disk?"""
        if self.kind == "chunk":
            return self.chunk.chunk_id in published
        if self.kind == "sub":
            assert self.parent is not None
            return (
                self.chunk.chunk_id in published
                or self.parent.chunk_id in published
            )
        return self.chunk.chunk_id in published  # asm: parent file exists


def _build_units(job: FleetJob, published: set[str]) -> list[_Unit]:
    """The claimable unit list for one scan pass.

    One directory listing for the split markers (like the ``published``
    snapshot, one listing instead of a stat per chunk) — every worker that
    sees a marker derives the identical sub-chunk set, so the unit list is
    a pure function of (manifest, store state) and needs no coordination.
    """
    split_ids = {
        path.name[len("split-") : -len(".json")]
        for path in sorted(job.store.directory.glob("split-*.json"))
    }
    units: list[_Unit] = []
    for chunk in job.chunks():
        if chunk.chunk_id in published:
            continue
        parts = (
            job.store.split_parts(chunk) if chunk.chunk_id in split_ids else None
        )
        if parts is None:
            units.append(_Unit("chunk", chunk))
            continue
        subs = split_chunk(chunk, parts)
        for sub in subs:
            if sub.chunk_id not in published:
                units.append(_Unit("sub", sub, parent=chunk, parts=parts))
        units.append(_Unit("asm", chunk, parts=parts))
    return units


def run_fleet(
    job: FleetJob,
    *,
    worker_id: str | None = None,
    ttl: float = DEFAULT_TTL,
    heartbeat: float | None = None,
    wait: bool = True,
    poll: float | None = None,
    max_chunks: int | None = None,
    prefetch: bool = True,
    split_after: float | None = None,
    split_parts: int = 2,
    clock_skew: float = 0.0,
    handle_sigterm: bool = False,
) -> dict:
    """Drive a fleet worker over a job until every chunk is published.

    Parameters
    ----------
    job:
        The workload.  Any number of ``run_fleet`` processes may drive the
        same job concurrently — chunk assignment is dynamic, through the
        lease files under ``<store>/leases/``.
    worker_id:
        Identity written into lease files (diagnostics only; defaults to
        ``host-pid-nonce``).
    ttl:
        Lease expiry in seconds.  **A protocol constant of the out-dir**:
        every cooperating worker must use the same value.
    heartbeat:
        Lease refresh interval while computing a chunk (default
        ``ttl * 0.25``).  Must be well below ``ttl``.
    wait:
        When True (default), a worker that finds every remaining chunk
        leased by live peers polls until the store completes — so it also
        picks up chunks whose owners crash later.  False returns as soon as
        nothing is claimable (used by tests and one-shot helpers).
    poll:
        Initial re-scan interval while waiting (default ``ttl / 4``, clamped
        to [0.05, 2.0] seconds).  Idle passes back off exponentially up to
        ``max(poll, 5.0)`` so an idle fleet does not hammer shared storage;
        any progress resets the backoff.
    max_chunks:
        Stop after running this many units (smoke tests, draining).
    prefetch:
        Claim the next claimable unit *while computing the current one*
        (kept alive by the same heartbeat thread), hiding the claim/scan
        latency of shared storage between chunks.
    split_after:
        Straggler policy: when this worker is idle and a *live* lease has
        been held longer than ``split_after`` seconds on an unsplit chunk
        with at least two items, publish a split marker cutting it into
        ``split_parts`` deterministically named sub-chunks any worker
        (including the straggler) can claim.  The assembled parent is
        byte-identical to the unsplit run, so racing the original owner is
        benign.  None (default) disables splitting.
    split_parts:
        How many sub-chunks a straggler split produces (≥ 2, clamped to the
        chunk's item count).
    clock_skew:
        Worst plausible wall-clock offset between fleet hosts, widening the
        lease-expiry margin (see :class:`~repro.fleet.leases.LeaseManager`).
    handle_sigterm:
        Install a SIGTERM handler (main thread only) that raises
        :class:`FleetTerminated` so the current lease is released promptly
        and the outcome reports ``terminated=True`` instead of the process
        dying mid-chunk and holding the lease until TTL reclaim.

    Returns
    -------
    dict with the worker id, ``ran`` / ``lost`` unit-id lists (``lost`` =
    computed but not published because the lease expired mid-run and another
    worker reclaimed it), ``splits`` (markers this worker published),
    ``terminated`` (stopped by SIGTERM) and ``complete`` (whether the whole
    store finished).
    """
    if heartbeat is None:
        heartbeat = ttl * DEFAULT_HEARTBEAT_FRACTION
    if not 0 < heartbeat < ttl:
        raise ValueError("need 0 < heartbeat < ttl")
    if poll is None:
        poll = min(2.0, max(0.05, ttl / 4.0))
    worker = worker_id or default_worker_id()
    ensure_store_identity(job.store, job.identity())
    leases = LeaseManager(
        job.store.directory / LEASE_DIR_NAME, ttl=ttl, clock_skew=clock_skew
    )
    ran: list[str] = []
    lost: list[str] = []
    splits: list[str] = []
    terminated = False
    sleep_s = poll
    prefetched: tuple[_Unit, Lease] | None = None

    def _run_unit(unit: _Unit, lease: Lease, extras: list[Lease]) -> bool:
        """Compute/assemble one claimed unit; True when it made progress."""
        if unit.kind == "asm":
            assert unit.parts is not None
            if assemble_split(job.store, unit.chunk, unit.parts):
                ran.append(unit.lease_id)
                return True
            return False
        with Heartbeat(lease, interval=heartbeat, extras=extras):
            records = job.run_chunk(unit.chunk)
        if lease.owned():
            job.store.write(unit.chunk, records)
            ran.append(unit.lease_id)
            if unit.kind == "sub":
                # Opportunistic assembly: if ours was the last sub-chunk,
                # fold the parent immediately rather than waiting for the
                # ``.asm`` unit holder.  Byte-identical either way, so the
                # race with a concurrent assembler (or the original
                # straggler) is benign.
                assert unit.parent is not None and unit.parts is not None
                assemble_split(job.store, unit.parent, unit.parts)
            return True
        # The lease expired mid-run (this worker stalled past the TTL) and
        # was reclaimed: the reclaimer owns publication now.  Discard our
        # records — publishing over a fresher claim would race the
        # reclaimer's execution of the same chunk.
        lost.append(unit.lease_id)
        return True

    def _maybe_split_stragglers() -> bool:
        """Idle-time straggler policy; True when a new split was published."""
        requested = False
        # The lease manager's clock, not time.time(): straggler age compares
        # against lease acquisition stamps written by that same clock, and a
        # chaos-injected frozen/skewed clock must govern both sides alike.
        now = leases.now()
        for chunk in job.chunks():
            if len(chunk.items) < 2 or job.store.is_complete(chunk):
                continue
            if job.store.split_parts(chunk) is not None:
                continue
            record = leases.holder_record(chunk.chunk_id)
            if record is None or leases.is_expired(leases.path_for(chunk.chunk_id)):
                continue  # unheld or reclaimable — ordinary claiming handles it
            acquired = record.get("acquired_unix")
            if not isinstance(acquired, (int, float)):
                continue
            if now - acquired > split_after:
                try:
                    job.store.request_split(chunk, split_parts)
                except OSError:
                    continue
                splits.append(chunk.chunk_id)
                requested = True
        return requested

    previous_handler = None
    if handle_sigterm:

        def _on_sigterm(signum, frame):
            raise FleetTerminated(f"worker {worker}: SIGTERM")

        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        while True:
            claimed_any = False
            # One directory listing per pass instead of a stat per chunk —
            # on a many-thousand-chunk store over NFS the difference is
            # thousands of round-trips every poll interval.  The snapshot
            # may be stale by the time a unit is claimed, hence the
            # authoritative per-unit settled() re-check under the freshly
            # held lease below.
            published = job.store.completed_ids()
            units = _build_units(job, published)
            if prefetched is not None and prefetched[0].settled(
                job.store, published
            ):
                # Someone published the prefetched unit under us — drop the
                # lease now rather than holding a claim on finished work.
                prefetched[1].release()
                prefetched = None
            index = 0
            while index < len(units):
                unit = units[index]
                index += 1
                if max_chunks is not None and len(ran) >= max_chunks:
                    break
                if unit.settled(job.store, published):
                    continue
                if prefetched is not None and prefetched[0] == unit:
                    lease = prefetched[1]
                    prefetched = None
                    if not lease.owned():
                        lease = leases.try_acquire(unit.lease_id, worker=worker)
                else:
                    lease = leases.try_acquire(unit.lease_id, worker=worker)
                if lease is None:
                    continue
                try:
                    if unit.settled(job.store, job.store.completed_ids()):
                        continue  # published between our scan and claim
                    extras: list[Lease] = []
                    if prefetch and unit.kind != "asm":
                        # Claim the next runnable unit now, while this one
                        # computes; the heartbeat keeps both alive.
                        for nxt in units[index:]:
                            if nxt.settled(job.store, published):
                                continue
                            nxt_lease = leases.try_acquire(
                                nxt.lease_id, worker=worker
                            )
                            if nxt_lease is not None:
                                prefetched = (nxt, nxt_lease)
                                extras.append(nxt_lease)
                                break
                    if _run_unit(unit, lease, extras):
                        claimed_any = True
                finally:
                    lease.release()
            published = job.store.completed_ids()
            if all(chunk.chunk_id in published for chunk in job.chunks()):
                break
            if max_chunks is not None and len(ran) >= max_chunks:
                break
            if claimed_any:
                sleep_s = poll
            else:
                if split_after is not None and _maybe_split_stragglers():
                    sleep_s = poll
                    continue  # new sub-chunks are claimable right now
                if not wait:
                    break
                time.sleep(sleep_s)
                sleep_s = min(max(poll, MAX_POLL), sleep_s * 2)
    except FleetTerminated:
        terminated = True
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        if prefetched is not None:
            prefetched[1].release()
            prefetched = None
    published = job.store.completed_ids()
    return {
        "worker": worker,
        "ran": ran,
        "lost": lost,
        "splits": splits,
        "terminated": terminated,
        "complete": all(chunk.chunk_id in published for chunk in job.chunks()),
        "chunks": len(job.chunks()),
        "store": str(job.store.directory),
    }
