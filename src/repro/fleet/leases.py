"""Atomic lease files with a TTL: the fleet's chunk-claim protocol.

A lease is ownership of one chunk id, materialised as a file in the store's
``leases/`` directory.  The protocol rests on three POSIX guarantees that
hold on local filesystems and on NFS (v3 and later):

* ``os.open(path, O_CREAT | O_EXCL)`` fails for every process but one —
  **claiming is atomic**, two workers can never both acquire a chunk;
* ``os.utime`` updates the file's mtime — **heartbeats are cheap**, one
  syscall per refresh, and any observer can judge liveness from ``stat``;
* ``os.replace``/``os.unlink`` are atomic — releases and reclaims never
  expose half-states.

A lease whose mtime is older than the TTL belongs to a worker presumed dead
(killed, wedged, unplugged).  Reclaiming it safely needs care: two workers
that both notice the expiry must not both tear it down and then both think
they cleared the way.  The reclaim therefore goes through a second
``O_EXCL`` file, the *reclaim guard*: only the guard's creator may unlink
the stale lease (re-checking staleness under the guard first), and after the
guard is dropped every worker races the ordinary ``O_EXCL`` claim again —
exactly one wins.  A guard whose own mtime exceeds the TTL marks a reclaimer
that crashed mid-reclaim and is removed the same way.

What the TTL can and cannot promise: a worker that is merely *stalled*
longer than the TTL (not dead) loses its lease to a reclaimer and may still
be computing.  Its heartbeat detects the theft (the lease file's token no
longer matches) and the driver then discards the stale worker's result
instead of publishing it — and even in the worst interleaving, chunk
results are deterministic and published by atomic rename, so a double
*computation* can never produce divergent on-disk bytes.  Choose the TTL
an order of magnitude above the heartbeat interval (the driver defaults to
``ttl / 4``) and above worst-case scheduler/NFS hiccups.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

__all__ = ["LeaseInfo", "Lease", "LeaseManager", "Heartbeat"]


@dataclass(frozen=True)
class LeaseInfo:
    """Snapshot of one lease file (the ``--watch`` view)."""

    chunk_id: str
    worker: str
    pid: int
    host: str
    age_s: float
    expired: bool


class Lease:
    """An acquired lease: refresh it, verify it, release it.

    ``token`` is a per-acquisition UUID written into the file; it is what
    distinguishes *our* lease from a successor created after a reclaim, so
    a stalled worker can detect that it lost ownership instead of publishing
    over a reclaimer's work.
    """

    def __init__(self, path: Path, chunk_id: str, token: str, worker: str):
        self.path = path
        self.chunk_id = chunk_id
        self.token = token
        self.worker = worker
        self.lost = False

    def owned(self) -> bool:
        """Re-read the lease file: is it still ours?

        False once the file vanished or carries another worker's token
        (both mean the TTL expired and someone reclaimed the chunk).
        """
        if self.lost:
            return False
        try:
            record = json.loads(self.path.read_text())
        except (OSError, ValueError):
            self.lost = True
            return False
        if record.get("token") != self.token:
            self.lost = True
            return False
        return True

    def refresh(self) -> bool:
        """Heartbeat: bump the lease mtime; False when ownership was lost."""
        if not self.owned():
            return False
        try:
            os.utime(self.path, None)
        except OSError:
            self.lost = True
            return False
        return True

    def release(self) -> None:
        """Drop the lease (only when still ours — never a successor's)."""
        if not self.owned():
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass


class LeaseManager:
    """Claim, inspect and reclaim the leases of one store directory.

    All cooperating fleet workers must use the same ``ttl`` — the TTL is a
    *protocol constant* of the out-dir, not a per-worker preference: a
    worker judging expiry with a shorter TTL than the owners' heartbeat
    budget would steal live leases.
    """

    def __init__(self, directory: str | Path, *, ttl: float):
        if ttl <= 0:
            raise ValueError("ttl must be positive (seconds)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ttl = float(ttl)

    # ------------------------------------------------------------- helpers
    def path_for(self, chunk_id: str) -> Path:
        return self.directory / f"{chunk_id}.lease"

    def _age(self, path: Path) -> float | None:
        """Seconds since the file's last heartbeat, or None when gone."""
        try:
            return max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            return None

    def _expired(self, path: Path) -> bool:
        age = self._age(path)
        return age is not None and age > self.ttl

    # ------------------------------------------------------------ claiming
    def try_acquire(self, chunk_id: str, *, worker: str) -> Lease | None:
        """One attempt to claim ``chunk_id``; None when someone holds it.

        Never blocks: a live foreign lease returns None immediately, an
        expired one is broken (via the reclaim guard) and the claim retried
        once — losing that race also returns None, and the driver simply
        moves on to the next chunk.
        """
        path = self.path_for(chunk_id)
        for attempt in range(2):
            lease = self._create(path, chunk_id, worker)
            if lease is not None:
                return lease
            if attempt == 0 and self._expired(path) and not self._break(path):
                return None
            if attempt == 0 and path.exists() and not self._expired(path):
                return None
        return None

    def _create(self, path: Path, chunk_id: str, worker: str) -> Lease | None:
        token = uuid.uuid4().hex
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        record = {
            "chunk": chunk_id,
            "worker": worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "token": token,
            "acquired_unix": time.time(),
        }
        try:
            os.write(fd, (json.dumps(record) + "\n").encode())
        finally:
            os.close(fd)
        return Lease(path, chunk_id, token, worker)

    def _break(self, path: Path) -> bool:
        """Tear down an expired lease; True when the caller cleared it.

        Exactly one contender wins the ``O_EXCL`` creation of the reclaim
        guard; that winner re-checks the expiry *under the guard* (the owner
        may have heartbeat in between) and only then unlinks the lease.  A
        guard left behind by a crashed reclaimer expires on the same TTL.
        """
        guard = path.with_suffix(".reclaim")
        try:
            fd = os.open(guard, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            if self._expired(guard):  # reclaimer died mid-reclaim
                try:
                    os.unlink(guard)
                except OSError:
                    pass
            return False
        os.close(fd)
        try:
            if not self._expired(path):
                return False
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return True
        finally:
            try:
                os.unlink(guard)
            except OSError:
                pass

    # ---------------------------------------------------------- inspection
    def active(self) -> list[LeaseInfo]:
        """Snapshot every lease file (live and expired), oldest first."""
        infos = []
        for path in sorted(self.directory.glob("*.lease")):
            age = self._age(path)
            if age is None:
                continue  # released between glob and stat
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = {}
            infos.append(
                LeaseInfo(
                    chunk_id=record.get("chunk", path.stem),
                    worker=str(record.get("worker", "?")),
                    pid=int(record.get("pid", -1)),
                    host=str(record.get("host", "?")),
                    age_s=age,
                    expired=age > self.ttl,
                )
            )
        infos.sort(key=lambda info: -info.age_s)
        return infos


class Heartbeat:
    """Background thread refreshing one lease every ``interval`` seconds.

    The driver starts one around each chunk computation: the worker's main
    thread is busy simulating/searching, the heartbeat keeps the lease's
    mtime young so other workers do not reclaim it.  Stops itself the moment
    a refresh reports lost ownership (the lease's ``lost`` flag then tells
    the driver not to publish).
    """

    def __init__(self, lease: Lease, interval: float):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive (seconds)")
        self.lease = lease
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.lease.refresh():
                return

    def __enter__(self) -> "Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()
