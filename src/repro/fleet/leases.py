"""Atomic lease files with a TTL: the fleet's chunk-claim protocol.

A lease is ownership of one chunk id, materialised as a file in the store's
``leases/`` directory.  The protocol rests on POSIX guarantees that hold on
local filesystems and on NFS:

* exclusive creation goes through **write-tmp / fsync / ``os.link``** — not
  ``O_CREAT | O_EXCL``, which ancient NFS servers do not implement
  atomically and which cannot distinguish "the create was applied but the
  reply was lost" (an NFS retransmit artifact) from "someone else holds it".
  After ``os.link`` raises, ``os.stat(tmp).st_nlink == 2`` proves the link
  *did* land and the caller owns the lease after all — the classic NFS
  lockfile technique.  Exactly one worker ever owns a given lease file;
* ``os.utime`` updates the file's mtime — **heartbeats are cheap**, one
  syscall per refresh, and any observer can judge liveness from ``stat``;
* ``os.replace``/``os.unlink`` are atomic — releases and reclaims never
  expose half-states.

Expiry is judged two ways, and either suffices:

* **wall-clock**: mtime older than ``ttl + clock_skew``.  With the default
  ``clock_skew=0`` this is the PR-5 behaviour; on a fleet spanning hosts
  whose clocks disagree, set ``clock_skew`` to the worst plausible offset so
  a fast-clocked observer cannot steal a live lease;
* **observation**: the manager remembers the first time (on its own
  *monotonic* clock) it saw each lease's current mtime.  A lease whose
  mtime has not moved for a full TTL of local observation is expired no
  matter what the file server's clock says — heartbeats change the mtime,
  so a live lease always resets the watch.  This path needs no clock
  agreement at all.

A lease whose TTL lapsed belongs to a worker presumed dead (killed, wedged,
unplugged).  Reclaiming it safely needs care: two workers that both notice
the expiry must not both tear it down and then both think they cleared the
way.  The reclaim therefore goes through a second exclusively created file,
the *reclaim guard*: only the guard's creator may unlink the stale lease
(re-checking staleness under the guard first), and after the guard is
dropped every worker races the ordinary exclusive claim again — exactly one
wins.  A guard whose own mtime exceeds the TTL marks a reclaimer that
crashed mid-reclaim and is removed the same way.

What the TTL can and cannot promise: a worker that is merely *stalled*
longer than the TTL (not dead) loses its lease to a reclaimer and may still
be computing.  Its heartbeat detects the theft (the lease file's token no
longer matches) and the driver then discards the stale worker's result
instead of publishing it — and even in the worst interleaving, chunk
results are deterministic and published by atomic rename, so a double
*computation* can never produce divergent on-disk bytes.  Choose the TTL
an order of magnitude above the heartbeat interval (the driver defaults to
``ttl / 4``) and above worst-case scheduler/NFS hiccups.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

__all__ = ["LeaseInfo", "Lease", "LeaseManager", "Heartbeat"]


@dataclass(frozen=True)
class LeaseInfo:
    """Snapshot of one lease file (the ``--watch`` view)."""

    chunk_id: str
    worker: str
    pid: int
    host: str
    age_s: float
    expired: bool


class Lease:
    """An acquired lease: refresh it, verify it, release it.

    ``token`` is a per-acquisition UUID written into the file; it is what
    distinguishes *our* lease from a successor created after a reclaim, so
    a stalled worker can detect that it lost ownership instead of publishing
    over a reclaimer's work.
    """

    def __init__(self, path: Path, chunk_id: str, token: str, worker: str):
        self.path = path
        self.chunk_id = chunk_id
        self.token = token
        self.worker = worker
        self.lost = False

    def owned(self) -> bool:
        """Re-read the lease file: is it still ours?

        False once the file vanished or carries another worker's token
        (both mean the TTL expired and someone reclaimed the chunk).
        """
        if self.lost:
            return False
        try:
            record = json.loads(self.path.read_text())
        except (OSError, ValueError):
            self.lost = True
            return False
        if record.get("token") != self.token:
            self.lost = True
            return False
        return True

    def refresh(self) -> bool:
        """Heartbeat: bump the lease mtime; False when ownership was lost."""
        if not self.owned():
            return False
        try:
            os.utime(self.path, None)
        except OSError:
            self.lost = True
            return False
        return True

    def release(self) -> None:
        """Drop the lease (only when still ours — never a successor's)."""
        if not self.owned():
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass


class LeaseManager:
    """Claim, inspect and reclaim the leases of one store directory.

    All cooperating fleet workers must use the same ``ttl`` — the TTL is a
    *protocol constant* of the out-dir, not a per-worker preference: a
    worker judging expiry with a shorter TTL than the owners' heartbeat
    budget would steal live leases.

    ``clock``/``monotonic`` are injectable for tests (the chaos suite runs
    hundreds of full lease lifecycles on a fake clock without sleeping);
    ``clock_skew`` widens the wall-clock expiry margin for fleets whose
    hosts' clocks disagree (see the module docstring).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        ttl: float,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.monotonic,
        clock_skew: float = 0.0,
    ):
        if ttl <= 0:
            raise ValueError("ttl must be positive (seconds)")
        if clock_skew < 0:
            raise ValueError("clock_skew must be >= 0 (seconds)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ttl = float(ttl)
        self.clock_skew = float(clock_skew)
        self._clock = clock
        self._monotonic = monotonic
        #: path -> (mtime_ns, monotonic instant we first saw that mtime)
        self._watch: dict[Path, tuple[int, float]] = {}

    # ------------------------------------------------------------- helpers
    def path_for(self, chunk_id: str) -> Path:
        return self.directory / f"{chunk_id}.lease"

    def now(self) -> float:
        """The manager's wall-clock reading, through the injected seam.

        Callers that need "what time is it?" for lease-adjacent decisions
        (the driver's straggler-age policy) read it here rather than calling
        ``time.time()`` themselves, so a chaos-injected frozen or skewed
        clock governs *their* arithmetic exactly as it governs expiry.
        """
        return self._clock()

    def _age(self, path: Path) -> float | None:
        """Seconds since the file's last heartbeat, or None when gone."""
        try:
            return max(0.0, self._clock() - path.stat().st_mtime)
        except OSError:
            return None

    def is_expired(self, path: Path) -> bool:
        """Has this lease gone a full TTL without a heartbeat?

        Wall-clock first (fast, exact when clocks agree), then the
        skew-proof observation path: an mtime we have watched sit unchanged
        for a TTL of *local monotonic* time is dead regardless of what any
        other host's clock claims.
        """
        try:
            mtime_ns = path.stat().st_mtime_ns
        except OSError:
            self._watch.pop(path, None)
            return False
        age = max(0.0, self._clock() - mtime_ns / 1e9)
        if age > self.ttl + self.clock_skew:
            return True
        now = self._monotonic()
        seen = self._watch.get(path)
        if seen is None or seen[0] != mtime_ns:
            self._watch[path] = (mtime_ns, now)
            return False
        return now - seen[1] > self.ttl

    #: Backwards-compatible alias from before ``is_expired`` was public.
    _expired = is_expired

    # ------------------------------------------------------------ claiming
    def try_acquire(self, chunk_id: str, *, worker: str) -> Lease | None:
        """One attempt to claim ``chunk_id``; None when someone holds it.

        Never blocks: a live foreign lease returns None immediately, an
        expired one is broken (via the reclaim guard) and the claim retried
        once — losing that race also returns None, and the driver simply
        moves on to the next chunk.
        """
        path = self.path_for(chunk_id)
        for attempt in range(2):
            lease = self._create(path, chunk_id, worker)
            if lease is not None:
                self._watch.pop(path, None)
                return lease
            if attempt == 0 and self.is_expired(path) and not self._break(path):
                return None
            if attempt == 0 and path.exists() and not self.is_expired(path):
                return None
        return None

    def holder_record(self, chunk_id: str) -> dict | None:
        """The current lease record of ``chunk_id``, or None when unheld.

        The driver's straggler policy reads ``acquired_unix`` from here to
        judge how long a *live* lease has been held (a heartbeat refreshes
        mtime, not the record, so acquisition time survives).
        """
        try:
            record = json.loads(self.path_for(chunk_id).read_text())
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def _exclusive_create(self, path: Path, payload: bytes) -> bool:
        """Atomically create ``path`` with ``payload``; False when it exists.

        Write-tmp / fsync / ``os.link`` instead of ``O_EXCL`` — NFS-safe,
        and the ``st_nlink == 2`` re-check converts an applied-but-errored
        link (lost NFS reply) into the success it actually was.
        """
        tmp = path.parent / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        linked = False
        try:
            fd = os.open(tmp, os.O_CREAT | os.O_WRONLY, 0o644)
            try:
                view = memoryview(payload)
                while view:
                    view = view[os.write(fd, view) :]
                os.fsync(fd)
            finally:
                os.close(fd)
            try:
                os.link(tmp, path)
                linked = True
            except OSError:
                try:
                    linked = os.stat(tmp).st_nlink == 2
                except OSError:
                    linked = False
        except OSError:
            linked = False
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return linked

    def _create(self, path: Path, chunk_id: str, worker: str) -> Lease | None:
        token = uuid.uuid4().hex
        record = {
            "chunk": chunk_id,
            "worker": worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "token": token,
            "acquired_unix": self._clock(),
        }
        payload = (json.dumps(record) + "\n").encode()
        if not self._exclusive_create(path, payload):
            return None
        return Lease(path, chunk_id, token, worker)

    def _break(self, path: Path) -> bool:
        """Tear down an expired lease; True when the caller cleared it.

        Exactly one contender wins the exclusive creation of the reclaim
        guard; that winner re-checks the expiry *under the guard* (the owner
        may have heartbeat in between) and only then unlinks the lease.  A
        guard left behind by a crashed reclaimer expires on the same TTL.
        """
        guard = path.with_suffix(".reclaim")
        if not self._exclusive_create(guard, b"reclaim\n"):
            if self.is_expired(guard):  # reclaimer died mid-reclaim
                try:
                    os.unlink(guard)
                except OSError:
                    pass
            return False
        try:
            if not self.is_expired(path):
                return False
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            self._watch.pop(path, None)
            return True
        finally:
            try:
                os.unlink(guard)
            except OSError:
                pass
            self._watch.pop(guard, None)

    # ---------------------------------------------------------- inspection
    def active(self) -> list[LeaseInfo]:
        """Snapshot every lease file (live and expired), oldest first."""
        infos = []
        for path in sorted(self.directory.glob("*.lease")):
            age = self._age(path)
            if age is None:
                continue  # released between glob and stat
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = {}
            infos.append(
                LeaseInfo(
                    chunk_id=record.get("chunk", path.stem),
                    worker=str(record.get("worker", "?")),
                    pid=int(record.get("pid", -1)),
                    host=str(record.get("host", "?")),
                    age_s=age,
                    expired=age > self.ttl + self.clock_skew,
                )
            )
        infos.sort(key=lambda info: -info.age_s)
        return infos


class Heartbeat:
    """Background thread refreshing leases every ``interval`` seconds.

    The driver starts one around each chunk computation: the worker's main
    thread is busy simulating/searching, the heartbeat keeps the lease's
    mtime young so other workers do not reclaim it.  Stops itself the moment
    a refresh reports lost ownership (the lease's ``lost`` flag then tells
    the driver not to publish).

    ``extras`` are additional leases (e.g. a prefetched next chunk) kept
    alive alongside the primary; one of them going lost drops it from the
    refresh set without stopping the primary's heartbeat.

    The thread is a daemon and :meth:`stop` joins it with a bounded timeout
    — a worker crashing out of a chunk can neither hang on a wedged
    filesystem during unwind nor keep a lease looking fresh after the
    process should be dead.
    """

    def __init__(
        self,
        lease: Lease,
        interval: float,
        *,
        extras: Iterable[Lease] = (),
    ):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive (seconds)")
        self.lease = lease
        self.interval = float(interval)
        self.extras = list(extras)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                for extra in list(self.extras):
                    if not extra.refresh():
                        self.extras.remove(extra)
                if not self.lease.refresh():
                    return
            except Exception:
                # A refresh can only fail by marking the lease lost; anything
                # else (injected fault surfacing oddly, interpreter teardown)
                # must not kill the thread silently mid-loop — stop cleanly
                # and let the driver's owned() check decide.
                return

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread and join it, waiting at most ``timeout``.

        The bounded join means a heartbeat wedged inside a dead NFS mount
        cannot hang the worker's cleanup; the thread is a daemon, so it
        also cannot outlive the process.
        """
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
