"""Progress and heartbeat snapshots over a fleet's shared store.

A status reader stats the chunk files and the lease files; it never claims,
reclaims or publishes anything, so ``--watch`` can run on a laptop against
an out-dir that a fleet of other machines is filling.  (Its only side
effect is creating the directory skeleton when pointed at a path that does
not exist yet.)
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.fleet.driver import LEASE_DIR_NAME, FleetJob
from repro.fleet.leases import LeaseManager
from repro.otis.sweep import STORE_IDENTITY_NAME, ChunkStore

__all__ = ["fleet_status", "store_status", "status_to_json", "format_status"]


def fleet_status(job: FleetJob, *, ttl: float) -> dict:
    """One snapshot of a job's store: completion counts plus live leases.

    ``ttl`` must be the fleet's TTL — it decides which leases count as live
    heartbeats and which as expired (reclaimable, owner presumed dead).
    """
    chunks = job.chunks()
    published = job.store.completed_ids()
    complete = published & {chunk.chunk_id for chunk in chunks}
    splits = len(list(job.store.directory.glob("split-*.json")))
    leases = LeaseManager(job.store.directory / LEASE_DIR_NAME, ttl=ttl)
    running = []
    expired = []
    for info in leases.active():
        if info.chunk_id in published:
            continue  # released-after-publish race; ignore
        (expired if info.expired else running).append(info)
    return {
        "chunks": len(chunks),
        "complete": len(complete),
        "splits": splits,
        "running": running,
        "expired": expired,
        "pending": max(
            0, len(chunks) - len(complete) - len(running) - len(expired)
        ),
        "done": len(complete) == len(chunks),
    }


def store_status(directory: str | Path, *, ttl: float) -> dict:
    """A :func:`fleet_status`-shaped snapshot read from a store directory.

    Works without reconstructing the job (no graph, traffics or search
    parameters needed): the chunk count comes from the ``manifest.json``
    identity the first worker published, completion from the chunk files,
    liveness from the lease files.  This is what ``repro fleet status``
    uses — any machine that can see the shared out-dir can poll it.
    """
    store = ChunkStore(directory)
    identity_path = store.directory / STORE_IDENTITY_NAME
    if not identity_path.exists():
        raise FileNotFoundError(
            f"no {STORE_IDENTITY_NAME} in {store.directory} — no fleet has "
            "written to this out-dir yet"
        )
    identity = json.loads(identity_path.read_text())
    num_chunks = int(identity["num_chunks"])
    published = store.completed_ids()
    # Sub-chunk files (``<parent>.s<i>``) are split work in flight; only
    # whole-chunk files count toward manifest completion.
    complete = {chunk_id for chunk_id in published if "." not in chunk_id}
    splits = len(list(store.directory.glob("split-*.json")))
    leases = LeaseManager(store.directory / LEASE_DIR_NAME, ttl=ttl)
    running = []
    expired = []
    for info in leases.active():
        if info.chunk_id in published:
            continue  # released-after-publish race; ignore
        (expired if info.expired else running).append(info)
    return {
        "chunks": num_chunks,
        "complete": min(len(complete), num_chunks),
        "splits": splits,
        "running": running,
        "expired": expired,
        "pending": max(
            0, num_chunks - len(complete) - len(running) - len(expired)
        ),
        "done": len(complete) >= num_chunks,
        "identity": identity,
    }


def status_to_json(status: dict) -> dict:
    """One status snapshot as a JSON-serialisable object (stable schema).

    The ``running`` / ``expired`` lease lists become plain dicts with the
    :class:`~repro.fleet.leases.LeaseInfo` fields (``chunk_id``, ``worker``,
    ``pid``, ``host``, ``age_s``, ``expired``); everything else is already
    JSON-native.  ``json.loads(json.dumps(status_to_json(s)))`` round-trips
    exactly — the contract ``repro fleet status --json`` exposes to
    dashboards and cron jobs.
    """
    payload = dict(status)
    payload["running"] = [asdict(info) for info in status["running"]]
    payload["expired"] = [asdict(info) for info in status["expired"]]
    return payload


def format_status(status: dict, *, summary: str = "") -> str:
    """Render one :func:`fleet_status` snapshot as plain text."""
    lines = [
        f"chunks: {status['complete']}/{status['chunks']} complete, "
        f"{len(status['running'])} running, {status['pending']} unclaimed"
        + (
            f", {status['splits']} split into sub-chunks"
            if status.get("splits")
            else ""
        )
        + (
            f", {len(status['expired'])} expired lease(s) awaiting reclaim"
            if status["expired"]
            else ""
        )
    ]
    for info in status["running"]:
        lines.append(
            f"  {info.chunk_id}  held by {info.worker} "
            f"(heartbeat {info.age_s:.1f}s ago)"
        )
    for info in status["expired"]:
        lines.append(
            f"  {info.chunk_id}  EXPIRED lease of {info.worker} "
            f"(last heartbeat {info.age_s:.1f}s ago)"
        )
    if summary:
        lines.append(f"  {summary}")
    return "\n".join(lines)
