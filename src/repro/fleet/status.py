"""Progress and heartbeat snapshots over a fleet's shared store.

A status reader stats the chunk files and the lease files; it never claims,
reclaims or publishes anything, so ``--watch`` can run on a laptop against
an out-dir that a fleet of other machines is filling.  (Its only side
effect is creating the directory skeleton when pointed at a path that does
not exist yet.)
"""

from __future__ import annotations

from repro.fleet.driver import LEASE_DIR_NAME, FleetJob
from repro.fleet.leases import LeaseManager

__all__ = ["fleet_status", "format_status"]


def fleet_status(job: FleetJob, *, ttl: float) -> dict:
    """One snapshot of a job's store: completion counts plus live leases.

    ``ttl`` must be the fleet's TTL — it decides which leases count as live
    heartbeats and which as expired (reclaimable, owner presumed dead).
    """
    chunks = job.chunks()
    complete = job.store.completed_ids() & {chunk.chunk_id for chunk in chunks}
    leases = LeaseManager(job.store.directory / LEASE_DIR_NAME, ttl=ttl)
    running = []
    expired = []
    for info in leases.active():
        if info.chunk_id in complete:
            continue  # released-after-publish race; ignore
        (expired if info.expired else running).append(info)
    return {
        "chunks": len(chunks),
        "complete": len(complete),
        "running": running,
        "expired": expired,
        "pending": len(chunks) - len(complete) - len(running) - len(expired),
        "done": len(complete) == len(chunks),
    }


def format_status(status: dict, *, summary: str = "") -> str:
    """Render one :func:`fleet_status` snapshot as plain text."""
    lines = [
        f"chunks: {status['complete']}/{status['chunks']} complete, "
        f"{len(status['running'])} running, {status['pending']} unclaimed"
        + (
            f", {len(status['expired'])} expired lease(s) awaiting reclaim"
            if status["expired"]
            else ""
        )
    ]
    for info in status["running"]:
        lines.append(
            f"  {info.chunk_id}  held by {info.worker} "
            f"(heartbeat {info.age_s:.1f}s ago)"
        )
    for info in status["expired"]:
        lines.append(
            f"  {info.chunk_id}  EXPIRED lease of {info.worker} "
            f"(last heartbeat {info.age_s:.1f}s ago)"
        )
    if summary:
        lines.append(f"  {summary}")
    return "\n".join(lines)
