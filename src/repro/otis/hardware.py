"""Parametric hardware model of an OTIS free-space optical interconnect.

The paper's hardware argument is purely combinatorial — the number of lenses
``p + q`` and the number of transceivers per processor — but it is motivated
by published device figures: the electrical/optical break-even interconnect
length of less than 1 cm from Feldman et al. (ref. [16]), VCSEL transmitter
arrays (refs. [15, 31]), transimpedance receivers (ref. [5]) and lenslet
arrays (refs. [6, 26]).

Since no physical hardware is available (and none is needed for the paper's
claims), this module provides the **substitute** documented in DESIGN.md: a
parametric cost/power/latency model that

* counts lenses, transmitters and receivers exactly from a layout,
* estimates lens apertures from the group sizes (a ``p``-group lens must
  collect ``q`` beams and vice versa),
* estimates per-link power and latency for the optical system and for an
  electrical baseline, using constants of the same order of magnitude as the
  cited measurements (defaults are intentionally round numbers — the model is
  for *relative* comparisons, which is all the paper uses),
* reports the break-even line length at which the optical link becomes
  cheaper than the electrical one, mirroring the motivation of Section 1.

None of the paper's reproduced results depend on the absolute constants; the
lens-count scaling benchmarks (Corollary 4.4) only use the exact counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["OpticalTechnology", "ElectricalTechnology", "HardwareModel", "HardwareReport"]


@dataclass(frozen=True)
class OpticalTechnology:
    """Device-level constants of the free-space optical technology.

    The defaults are order-of-magnitude values consistent with the late-1990s
    literature the paper cites (VCSEL arrays, transimpedance receivers,
    lenslet arrays); change them to study other operating points.

    Attributes
    ----------
    vcsel_power_mw:
        Electrical power drawn by one VCSEL transmitter (mW).
    receiver_power_mw:
        Power drawn by one optical receiver (mW).
    lens_pitch_mm:
        Centre-to-centre pitch of individual transmitter/receiver elements
        under one lenslet (mm); determines lens aperture.
    lens_unit_cost:
        Relative cost of one lenslet (arbitrary units; 1.0 by default so that
        "cost" equals "lens count", the paper's metric).
    propagation_speed_m_per_s:
        Speed of light in the free-space optical path.
    transceiver_latency_ns:
        Fixed conversion latency of one transmitter+receiver pair (ns).
    """

    vcsel_power_mw: float = 2.0
    receiver_power_mw: float = 5.0
    lens_pitch_mm: float = 0.25
    lens_unit_cost: float = 1.0
    propagation_speed_m_per_s: float = 2.99792458e8
    transceiver_latency_ns: float = 1.0


@dataclass(frozen=True)
class ElectricalTechnology:
    """Constants of the electrical baseline used for the break-even comparison.

    Attributes
    ----------
    energy_pj_per_bit_per_mm:
        Energy to drive one bit down one millimetre of on-board trace.
    fixed_energy_pj_per_bit:
        Driver/receiver energy independent of length.
    signal_speed_m_per_s:
        Propagation speed on the electrical trace (roughly c/2).
    max_frequency_ghz_mm:
        Bandwidth–length product: achievable frequency falls as 1/length.
    """

    energy_pj_per_bit_per_mm: float = 0.15
    fixed_energy_pj_per_bit: float = 0.5
    signal_speed_m_per_s: float = 1.5e8
    max_frequency_ghz_mm: float = 10.0


@dataclass(frozen=True)
class HardwareReport:
    """The hardware bill of materials and operating figures of one layout."""

    nodes: int
    degree: int
    p: int
    q: int
    num_lenses: int
    num_transmitters: int
    num_receivers: int
    transmitter_lens_aperture_mm: float
    receiver_lens_aperture_mm: float
    total_lens_cost: float
    optical_power_w: float
    optical_latency_ns: float
    electrical_power_w: float
    electrical_latency_ns: float
    break_even_length_mm: float

    def lens_count_per_node(self) -> float:
        """Lenses divided by processors — the paper's efficiency headline."""
        return self.num_lenses / self.nodes


class HardwareModel:
    """Evaluate the hardware cost of an OTIS layout.

    Parameters
    ----------
    optical:
        Optical technology constants (defaults are fine for relative studies).
    electrical:
        Electrical baseline constants.
    board_length_mm:
        Physical span of the interconnect being replaced; used for the
        electrical baseline and the free-space propagation time.
    """

    def __init__(
        self,
        optical: OpticalTechnology | None = None,
        electrical: ElectricalTechnology | None = None,
        board_length_mm: float = 50.0,
    ):
        self.optical = optical or OpticalTechnology()
        self.electrical = electrical or ElectricalTechnology()
        if board_length_mm <= 0:
            raise ValueError("board_length_mm must be positive")
        self.board_length_mm = float(board_length_mm)

    # ----------------------------------------------------------- power/latency
    def optical_link_energy_pj(self) -> float:
        """Energy per bit of one free-space optical link (length independent)."""
        # Convert mW at 1 Gbit/s to pJ/bit: 1 mW / 1 Gbps = 1 pJ/bit.
        return self.optical.vcsel_power_mw + self.optical.receiver_power_mw

    def electrical_link_energy_pj(self, length_mm: float) -> float:
        """Energy per bit of an electrical trace of the given length."""
        if length_mm < 0:
            raise ValueError("length must be non-negative")
        return (
            self.electrical.fixed_energy_pj_per_bit
            + self.electrical.energy_pj_per_bit_per_mm * length_mm
        )

    def break_even_length_mm(self) -> float:
        """Trace length above which the optical link uses less energy per bit.

        Mirrors the motivation of Section 1 (Feldman et al. put it below
        10 mm for their constants).
        """
        numerator = (
            self.optical_link_energy_pj() - self.electrical.fixed_energy_pj_per_bit
        )
        if numerator <= 0:
            return 0.0
        return numerator / self.electrical.energy_pj_per_bit_per_mm

    def optical_latency_ns(self, path_length_mm: float | None = None) -> float:
        """One-hop latency of the optical link (conversion + free-space flight)."""
        length_mm = self.board_length_mm if path_length_mm is None else path_length_mm
        flight_ns = (length_mm * 1e-3) / self.optical.propagation_speed_m_per_s * 1e9
        return self.optical.transceiver_latency_ns + flight_ns

    def electrical_latency_ns(self, path_length_mm: float | None = None) -> float:
        """One-hop latency of the electrical baseline over the same span."""
        length_mm = self.board_length_mm if path_length_mm is None else path_length_mm
        return (length_mm * 1e-3) / self.electrical.signal_speed_m_per_s * 1e9

    # -------------------------------------------------------------- evaluation
    def evaluate(self, layout) -> HardwareReport:
        """Produce the full hardware report of an :class:`~repro.otis.layout.OTISLayout`."""
        p, q, d = layout.p, layout.q, layout.d
        n = layout.num_nodes
        num_transceivers = n * d
        # A transmitter-side lens covers one group of q transmitters laid out
        # on a sqrt(q) x sqrt(q) grid; its aperture scales with that grid.
        tx_aperture = self.optical.lens_pitch_mm * math.ceil(math.sqrt(q))
        rx_aperture = self.optical.lens_pitch_mm * math.ceil(math.sqrt(p))
        total_lens_cost = self.optical.lens_unit_cost * (p + q)

        optical_power_w = (
            num_transceivers
            * (self.optical.vcsel_power_mw + self.optical.receiver_power_mw)
            / 1000.0
        )
        electrical_power_w = (
            num_transceivers
            * self.electrical_link_energy_pj(self.board_length_mm)
            / 1000.0
        )
        return HardwareReport(
            nodes=n,
            degree=d,
            p=p,
            q=q,
            num_lenses=p + q,
            num_transmitters=num_transceivers,
            num_receivers=num_transceivers,
            transmitter_lens_aperture_mm=tx_aperture,
            receiver_lens_aperture_mm=rx_aperture,
            total_lens_cost=total_lens_cost,
            optical_power_w=optical_power_w,
            optical_latency_ns=self.optical_latency_ns(),
            electrical_power_w=electrical_power_w,
            electrical_latency_ns=self.electrical_latency_ns(),
            break_even_length_mm=self.break_even_length_mm(),
        )
