"""The OTIS(p, q) free-space optical architecture (Section 4.1).

``OTIS(p, q)`` is a one-to-one optical interconnect between ``p`` groups of
``q`` transmitters and ``q`` groups of ``p`` receivers, realised with a pair
of lenslet arrays in free space (Figure 6 of the paper shows ``OTIS(3, 6)``).
Its defining property is the *transpose* wiring:

    transmitter ``(i, j)``  →  receiver ``(q - j - 1, p - i - 1)``

for ``0 <= i < p`` and ``0 <= j < q``.  The hardware cost that the paper
optimises is the number of lenses, ``p + q``: one lens per transmitter group
and one per receiver group.

This module models the architecture combinatorially and exposes the
quantities the rest of the library needs:

* the global wiring permutation between transmitter indices and receiver
  indices (:meth:`OTISArchitecture.connection_array`),
* group/offset index conversions,
* the optical path of a connection (which transmitter-side lens and which
  receiver-side lens it traverses), used by the hardware model and the
  simulator's link model,
* simple validity checks (the wiring must be a bijection — verified by
  property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OTISArchitecture", "OpticalPath"]


@dataclass(frozen=True)
class OpticalPath:
    """The free-space path of one OTIS connection.

    Attributes
    ----------
    transmitter:
        ``(i, j)`` — group and offset of the transmitter.
    receiver:
        ``(a, b)`` — group and offset of the receiver it illuminates.
    transmitter_lens:
        Index of the lens in the transmitter-side lenslet array (one lens per
        transmitter group, so this equals ``i``).
    receiver_lens:
        Index of the lens in the receiver-side lenslet array (one lens per
        receiver group, so this equals ``a = q - j - 1``).
    """

    transmitter: tuple[int, int]
    receiver: tuple[int, int]
    transmitter_lens: int
    receiver_lens: int


class OTISArchitecture:
    """The ``OTIS(p, q)`` optical transpose interconnection system.

    Parameters
    ----------
    p:
        Number of transmitter groups (= number of receivers per group).
    q:
        Number of transmitters per group (= number of receiver groups).

    Notes
    -----
    Global indices flatten the (group, offset) pairs row-major:
    transmitter ``(i, j)`` has global index ``i*q + j`` and receiver
    ``(a, b)`` has global index ``a*p + b``.  With this convention the OTIS
    wiring is the map ``t ↦ (q - 1 - t%q) * p + (p - 1 - t//q)``.
    """

    def __init__(self, p: int, q: int):
        if p < 1 or q < 1:
            raise ValueError("OTIS parameters p and q must be positive")
        self.p = int(p)
        self.q = int(q)

    # ------------------------------------------------------------- geometry
    @property
    def num_transmitters(self) -> int:
        """Total number of transmitters ``p * q``."""
        return self.p * self.q

    @property
    def num_receivers(self) -> int:
        """Total number of receivers ``p * q``."""
        return self.p * self.q

    @property
    def num_lenses(self) -> int:
        """Number of lenses ``p + q`` — the cost the paper minimises."""
        return self.p + self.q

    @property
    def transmitter_lens_count(self) -> int:
        """Lenses on the transmitter side (one per transmitter group): ``p``."""
        return self.p

    @property
    def receiver_lens_count(self) -> int:
        """Lenses on the receiver side (one per receiver group): ``q``."""
        return self.q

    # ------------------------------------------------------- index handling
    def transmitter_index(self, i: int, j: int) -> int:
        """Global index of transmitter ``(i, j)``."""
        self._check_transmitter(i, j)
        return i * self.q + j

    def transmitter_coords(self, t: int) -> tuple[int, int]:
        """Group/offset coordinates of the transmitter with global index ``t``."""
        if not 0 <= t < self.num_transmitters:
            raise ValueError(f"transmitter index {t} out of range")
        return (t // self.q, t % self.q)

    def receiver_index(self, a: int, b: int) -> int:
        """Global index of receiver ``(a, b)``."""
        self._check_receiver(a, b)
        return a * self.p + b

    def receiver_coords(self, r: int) -> tuple[int, int]:
        """Group/offset coordinates of the receiver with global index ``r``."""
        if not 0 <= r < self.num_receivers:
            raise ValueError(f"receiver index {r} out of range")
        return (r // self.p, r % self.p)

    def _check_transmitter(self, i: int, j: int) -> None:
        if not (0 <= i < self.p and 0 <= j < self.q):
            raise ValueError(
                f"transmitter ({i}, {j}) out of range for OTIS({self.p}, {self.q})"
            )

    def _check_receiver(self, a: int, b: int) -> None:
        if not (0 <= a < self.q and 0 <= b < self.p):
            raise ValueError(
                f"receiver ({a}, {b}) out of range for OTIS({self.p}, {self.q})"
            )

    # --------------------------------------------------------------- wiring
    def receiver_of(self, i: int, j: int) -> tuple[int, int]:
        """The receiver illuminated by transmitter ``(i, j)``.

        This is the defining transpose rule of the architecture:
        ``(i, j) → (q - j - 1, p - i - 1)``.

        >>> OTISArchitecture(3, 6).receiver_of(0, 0)
        (5, 2)
        """
        self._check_transmitter(i, j)
        return (self.q - j - 1, self.p - i - 1)

    def transmitter_of(self, a: int, b: int) -> tuple[int, int]:
        """The transmitter whose beam reaches receiver ``(a, b)`` (inverse wiring)."""
        self._check_receiver(a, b)
        return (self.p - b - 1, self.q - a - 1)

    def connection_array(self) -> np.ndarray:
        """Vectorised wiring: entry ``t`` is the global receiver index hit by
        the transmitter with global index ``t``.

        The array is a permutation of ``0 .. p*q - 1`` (each receiver is hit
        by exactly one transmitter); the property-based tests assert this for
        random ``(p, q)``.
        """
        t = np.arange(self.num_transmitters, dtype=np.int64)
        i = t // self.q
        j = t % self.q
        a = self.q - j - 1
        b = self.p - i - 1
        return a * self.p + b

    def optical_path(self, i: int, j: int) -> OpticalPath:
        """The lenses traversed by the beam of transmitter ``(i, j)``.

        The OTIS realisation uses one lenslet per transmitter group and one
        per receiver group; the beam from transmitter ``(i, j)`` is collimated
        by transmitter-side lens ``i`` and focused by receiver-side lens
        ``q - j - 1`` onto its receiver.
        """
        receiver = self.receiver_of(i, j)
        return OpticalPath(
            transmitter=(i, j),
            receiver=receiver,
            transmitter_lens=i,
            receiver_lens=receiver[0],
        )

    def all_optical_paths(self) -> list[OpticalPath]:
        """Every optical path of the system, in transmitter global-index order."""
        return [
            self.optical_path(i, j) for i in range(self.p) for j in range(self.q)
        ]

    def is_transpose(self) -> bool:
        """Check the characteristic involution property of the wiring.

        Following the wiring of ``OTIS(p, q)`` and then the wiring of
        ``OTIS(q, p)`` (receivers reinterpreted as transmitters with the same
        group/offset coordinates) returns every signal to its starting
        coordinates — the "transpose" in the system's name.
        """
        mirror = OTISArchitecture(self.q, self.p)
        for i in range(self.p):
            for j in range(self.q):
                a, b = self.receiver_of(i, j)
                back = mirror.receiver_of(a, b)
                if back != (i, j):
                    return False
        return True

    def __repr__(self) -> str:
        return f"OTISArchitecture(p={self.p}, q={self.q})"
