"""The OTIS free-space optical substrate and its induced digraphs.

The Optical Transpose Interconnection System ``OTIS(p, q)`` (Marsden et al.,
ref. [25]; Section 4.1 of the paper) connects ``p`` groups of ``q``
transmitters to ``q`` groups of ``p`` receivers with ``p + q`` lenses, wiring
transmitter ``(i, j)`` to receiver ``(q-j-1, p-i-1)``.

This package models that architecture and everything the paper builds on it:

* :mod:`repro.otis.architecture` — the optical wiring itself (transmitter →
  receiver permutation, lens groups, per-connection optical paths),
* :mod:`repro.otis.h_digraph` — the induced processor digraph ``H(p, q, d)``
  of Section 4.2,
* :mod:`repro.otis.layout` — OTIS layouts of arbitrary digraphs and the
  paper's optimal ``Θ(√n)``-lens layouts of the de Bruijn digraph
  (Corollaries 4.4 / 4.6), plus the known ``O(n)``-lens Imase–Itoh layout,
* :mod:`repro.otis.search` — the degree–diameter exhaustive search that
  regenerates Table 1,
* :mod:`repro.otis.sweep` — resumable, shardable orchestration of that
  search: deterministic chunk manifest, atomic per-chunk result store,
  merge step and the on-disk split-verdict cache,
* :mod:`repro.otis.hardware` — a parametric hardware cost / power model of
  the free-space optical system (the substitution for physical hardware
  documented in DESIGN.md).
"""

from repro.otis.architecture import OTISArchitecture
from repro.otis.h_digraph import h_digraph, h_digraph_splits, otis_node_assignment
from repro.otis.hardware import HardwareModel, OpticalTechnology
from repro.otis.layout import (
    OTISLayout,
    debruijn_layout,
    imase_itoh_layout,
    kautz_layout,
    optimal_debruijn_layout,
)
from repro.otis.search import DegreeDiameterResult, degree_diameter_search, table1_rows
from repro.otis.sweep import (
    ChunkManifest,
    ChunkStore,
    SplitVerdictCache,
    merge_sweep,
    run_sweep,
)

__all__ = [
    "OTISArchitecture",
    "h_digraph",
    "h_digraph_splits",
    "otis_node_assignment",
    "OTISLayout",
    "debruijn_layout",
    "optimal_debruijn_layout",
    "imase_itoh_layout",
    "kautz_layout",
    "DegreeDiameterResult",
    "degree_diameter_search",
    "table1_rows",
    "ChunkManifest",
    "ChunkStore",
    "SplitVerdictCache",
    "run_sweep",
    "merge_sweep",
    "HardwareModel",
    "OpticalTechnology",
]
