"""Degree–diameter exhaustive search over OTIS digraphs (Table 1).

Section 4.3 of the paper asks: for a fixed degree ``d`` and diameter ``D``,
what is the largest digraph of the family ``H(p, q, d)`` — i.e. the largest
network realisable with a single OTIS system and ``d`` transceivers per
processor?  The authors answer by exhaustive search for ``d = 2`` and
``D ∈ {8, 9, 10}``; Table 1 lists, for each diameter, the node counts ``n``
near the optimum together with the splits ``(p, q)`` that achieve them, the
de Bruijn digraph ``B(2, D)`` sitting at ``n = 2^D``, and the Kautz digraph
``K(2, D)`` at the very top with ``n = 3 · 2^{D-1}``.

This module re-runs that search:

* :func:`candidate_splits` — all ``(p, q)`` with ``p*q = n*d`` and ``p <= q``
  (the paper lists layouts with ``p <= q``; the reverse split lays out the
  converse digraph, Section 4.2),
* :func:`h_diameter` — staged diameter computation with early rejection: a
  forward BFS screen, a reverse BFS screen (together they decide strong
  connectivity), then the batched bit-parallel eccentricity sweep of
  :mod:`repro.graphs.apsp` with early abort at the target diameter,
* :func:`degree_diameter_search` — sweep a range of ``n`` and report every
  ``(n, p, q)`` whose OTIS digraph has exactly the requested diameter,
  optionally fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`,
* :func:`table1_rows` — the paper's Table 1 rows regenerated (restricted, by
  default, to the ``n`` range the paper prints).

The sweep itself is orchestrated by :mod:`repro.otis.sweep`: the ``(n, p, q)``
work list is deterministically partitioned into named chunks
(:class:`repro.otis.sweep.ChunkManifest`), and this module's in-process search
is "one host consuming every chunk".  The same manifest drives the multi-host
sharded path (``python -m repro sweep --shard i/k``) with resumable per-chunk
persistence, and both paths consult the on-disk
:class:`repro.otis.sweep.SplitVerdictCache` of ``h_diameter`` verdicts when a
``cache`` is supplied — overlapping Table 1 blocks share many splits, and the
verdicts are pure functions of ``(p, q, d, D)``.

The expensive part is the all-pairs stage; it runs on the bit-packed
``(n, ceil(n/64))`` reachability matrix of
:func:`repro.graphs.apsp.batched_eccentricities`, so no ``n × n`` int64
distance matrix is ever materialised on the search path (the matrix-based
:func:`repro.graphs.properties.distance_matrix` remains available as a
cross-checked reference).  See ``docs/apsp.md`` for the engine's contract.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.graphs.apsp import batched_eccentricities
from repro.graphs.digraph import RegularDigraph
from repro.graphs.moore import kautz_order
from repro.graphs.traversal import (
    bfs_distances_regular,
    reverse_bfs_distances_regular,
)
from repro.otis.h_digraph import h_digraph

__all__ = [
    "candidate_splits",
    "h_diameter",
    "DegreeDiameterResult",
    "degree_diameter_search",
    "table1_rows",
    "PAPER_TABLE1",
]


#: The rows of Table 1 exactly as printed in the paper: for each diameter,
#: a list of ``(n, [(p, q), ...])`` pairs (splits with ``p <= q``), annotated
#: with the named digraphs ``B(2, D)`` and ``K(2, D)`` where the paper does.
PAPER_TABLE1: dict[int, list[tuple[int, list[tuple[int, int]]]]] = {
    8: [
        (253, [(2, 253)]),
        (254, [(2, 254)]),
        (255, [(2, 255)]),
        (256, [(2, 256), (4, 128), (16, 32)]),  # B(2,8)
        (258, [(2, 258)]),
        (264, [(2, 264)]),
        (288, [(2, 288)]),
        (384, [(2, 384)]),  # K(2,8)
    ],
    9: [
        (509, [(2, 509)]),
        (510, [(2, 510)]),
        (511, [(2, 511)]),
        (512, [(2, 512), (8, 128)]),  # B(2,9)
        (513, [(2, 513)]),
        (516, [(2, 516)]),
        (528, [(2, 528)]),
        (576, [(2, 576)]),
        (768, [(2, 768)]),  # K(2,9)
    ],
    10: [
        (1022, [(2, 1022)]),
        (1023, [(2, 1023)]),
        (1024, [(2, 1024), (4, 512), (8, 256), (16, 128), (32, 64)]),  # B(2,10)
        (1026, [(2, 1026)]),
        (1032, [(2, 1032)]),
        (1056, [(2, 1056)]),
        (1152, [(2, 1152)]),
        (1536, [(2, 1536)]),  # K(2,10)
    ],
}


def candidate_splits(n: int, d: int) -> list[tuple[int, int]]:
    """All OTIS splits ``(p, q)`` with ``p*q = n*d`` and ``p <= q``."""
    if n < 1 or d < 1:
        raise ValueError("n and d must be positive")
    m = n * d
    splits = []
    p = 1
    while p * p <= m:
        if m % p == 0:
            splits.append((p, m // p))
        p += 1
    return splits


def h_diameter(
    graph: RegularDigraph, upper_bound: int | None = None
) -> int:
    """Diameter of an OTIS digraph with staged early rejection.

    Returns ``-1`` when the digraph is not strongly connected.  When
    ``upper_bound`` is given and a diameter lower bound already exceeds it,
    the (useless for the search) exact value is not computed and
    ``upper_bound + 1`` is returned as a sentinel meaning "too large".

    The screening order follows the cost ladder:

    1. one forward BFS from vertex 0 — detects forward-unreachable vertices
       and yields the diameter lower bound ``ecc(0)``;
    2. one reverse BFS to vertex 0 — together with stage 1 this decides
       strong connectivity, and ``max_u d(u, 0)`` is another diameter lower
       bound;
    3. the batched bit-parallel eccentricity sweep
       (:func:`repro.graphs.apsp.batched_eccentricities`), which aborts the
       moment any eccentricity is certain to exceed ``upper_bound``.  No
       ``(n, n)`` int64 matrix is allocated at any stage.
    """
    n = graph.num_vertices
    if n <= 1:
        return 0
    # Stage 1: forward BFS from vertex 0.
    dist0 = bfs_distances_regular(graph, 0)
    if np.any(dist0 < 0):
        return -1
    if upper_bound is not None and int(dist0.max()) > upper_bound:
        return upper_bound + 1
    # Stage 2: reverse BFS to vertex 0 — completes the connectivity check
    # before the all-pairs stage is paid for.
    rdist0 = reverse_bfs_distances_regular(graph, 0)
    if np.any(rdist0 < 0):
        return -1
    if upper_bound is not None and int(rdist0.max()) > upper_bound:
        return upper_bound + 1
    # Stage 3: batched bit-parallel sweep over all sources at once.  The
    # digraph is strongly connected by now, so an abort can only mean the
    # diameter exceeds the bound.
    ecc, aborted = batched_eccentricities(graph, upper_bound=upper_bound)
    if aborted:
        return upper_bound + 1
    return int(ecc.max())


@dataclass(frozen=True)
class DegreeDiameterResult:
    """Outcome of the exhaustive search for one diameter value.

    Attributes
    ----------
    d:
        Degree (transceivers per node).
    diameter:
        The target diameter.
    rows:
        List of ``(n, splits)`` pairs, in increasing ``n``: every node count
        in the searched range for which at least one OTIS split yields a
        strongly connected ``H(p, q, d)`` of exactly this diameter, together
        with all such splits (``p <= q``).
    n_range:
        The inclusive ``(n_min, n_max)`` range that was searched.
    """

    d: int
    diameter: int
    rows: list[tuple[int, list[tuple[int, int]]]]
    n_range: tuple[int, int]

    @property
    def largest_n(self) -> int:
        """The largest node count achieving the diameter (0 when none found)."""
        return self.rows[-1][0] if self.rows else 0

    def splits_for(self, n: int) -> list[tuple[int, int]]:
        """The splits recorded for a given node count (empty when absent)."""
        for row_n, splits in self.rows:
            if row_n == n:
                return splits
        return []

    def as_table(self) -> str:
        """Plain-text rendering in the shape of the paper's Table 1 block."""
        lines = [f"degree d={self.d}, diameter D={self.diameter}", "   n    p     q"]
        for n, splits in self.rows:
            first = True
            for p, q in splits:
                label = ""
                if n == self.d**self.diameter:
                    label = f"  B({self.d},{self.diameter})" if first else ""
                if n == kautz_order(self.d, self.diameter):
                    label = f"  K({self.d},{self.diameter})" if first else ""
                prefix = f"{n:6d}" if first else " " * 6
                lines.append(f"{prefix} {p:5d} {q:6d}{label}")
                first = False
        return "\n".join(lines)


def degree_diameter_search(
    d: int,
    diameter: int,
    n_min: int,
    n_max: int,
    *,
    require_exact: bool = True,
    n_values: list[int] | None = None,
    workers: int | None = None,
    chunk_size: int = 64,
    cache: "object | str | None" = None,
) -> DegreeDiameterResult:
    """Exhaustive search over ``H(p, q, d)`` for a given diameter.

    The sweep always routes through the chunk manifest of
    :mod:`repro.otis.sweep`: the ``(n, p, q)`` work list is deterministically
    partitioned into named chunks, and this function is simply "one host
    consuming every chunk" — serially, or fanned out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Because the manifest
    partitioning is a pure function of the parameters (cf. the deterministic
    work-splitting of Bobpp-style exhaustive search) and the merge orders
    records canonically, the result is identical whether the chunks ran
    serially, on a worker pool, or sharded across hosts with
    :func:`repro.otis.sweep.run_sweep` + :func:`repro.otis.sweep.merge_sweep`.

    Parameters
    ----------
    d:
        Degree.
    diameter:
        The target diameter ``D``.
    n_min, n_max:
        Inclusive node-count range to sweep.
    require_exact:
        When True (default) only digraphs of *exactly* the target diameter
        are reported, matching the paper's table; when False, any diameter
        ``<= D`` qualifies.
    n_values:
        Optional explicit list of node counts to test instead of the full
        ``n_min..n_max`` sweep (used by the benchmarks to restrict the heavy
        diameter-10 block to the rows the paper prints).
    workers:
        When given and ``> 1``, the manifest's chunks are fanned out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`; chunk results are
        merged in manifest order, so the result is identical to the serial
        sweep regardless of worker scheduling.
    chunk_size:
        ``(n, p, q)`` work items per chunk (a chunk is the unit of worker
        dispatch and, in the sharded path, of resumable persistence).
    cache:
        A :class:`repro.otis.sweep.SplitVerdictCache`, or a directory path
        from which one is opened keyed by ``(d, diameter, code_version)``.
        Memoised ``h_diameter`` verdicts are consulted before any graph is
        built, so overlapping Table 1 blocks and repeated runs skip the
        expensive all-pairs stage entirely.

    Returns
    -------
    DegreeDiameterResult
    """
    from repro.otis.sweep import (
        ChunkManifest,
        SplitVerdictCache,
        fold_records,
        run_chunk,
    )

    if n_min < 1 or n_max < n_min:
        raise ValueError("need 1 <= n_min <= n_max")
    sweep_ns = (
        list(range(n_min, n_max + 1)) if n_values is None else sorted(set(n_values))
    )
    manifest = ChunkManifest.build(
        d, diameter, sweep_ns, require_exact=require_exact, chunk_size=chunk_size
    )
    if isinstance(cache, SplitVerdictCache):
        cache_dir: str | None = str(cache.directory)
        cache_version = cache.version
    elif cache is not None:
        cache_dir = str(cache)
        cache_version = manifest.code_version
    else:
        cache_dir, cache_version = None, manifest.code_version
    payloads = [
        (d, diameter, chunk.items, cache_dir, cache_version)
        for chunk in manifest.chunks
    ]
    records: list[dict] = []
    if workers is not None and workers > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk_records in pool.map(run_chunk, payloads):
                records.extend(chunk_records)
    else:
        # One shared cache view across all chunks, so a caller-supplied
        # cache object accumulates its hit/miss ledger.
        local_cache = (
            cache
            if isinstance(cache, SplitVerdictCache)
            else (
                SplitVerdictCache(cache_dir, d, diameter, version=cache_version)
                if cache_dir is not None
                else None
            )
        )
        for payload in payloads:
            records.extend(run_chunk(payload, cache=local_cache))
    return fold_records(manifest, records, n_range=(n_min, n_max))


def table1_rows(
    diameter: int,
    d: int = 2,
    n_min: int | None = None,
    n_max: int | None = None,
    *,
    printed_rows_only: bool = False,
    workers: int | None = None,
    cache: "object | str | None" = None,
) -> DegreeDiameterResult:
    """Regenerate one block of Table 1.

    By default the searched range matches what the paper prints: from the
    first row shown for that diameter up to the Kautz order
    ``3 · 2^{D-1}`` (the table's maximum).  With ``printed_rows_only=True``
    only the node counts printed by the paper are tested (much faster for the
    diameter-10 block; the full sweep is run by
    ``examples/degree_diameter_search.py``).

    ``cache`` (a :class:`repro.otis.sweep.SplitVerdictCache` or a directory
    path) memoises the per-split verdicts on disk: the Table 1 blocks share
    many ``(p, q)`` splits, so warming the cache on one block speeds up the
    others — and makes a repeated run of the same block near-instant (the
    cold-vs-warm timing is tracked in ``BENCH_table1.json`` by
    ``benchmarks/test_sweep_cache.py``).

    >>> result = table1_rows(8, n_min=255, n_max=256)
    >>> result.splits_for(256)
    [(2, 256), (4, 128), (16, 32)]
    """
    if diameter not in PAPER_TABLE1 and (n_min is None or n_max is None):
        raise ValueError(
            "for diameters not printed in the paper, pass n_min and n_max explicitly"
        )
    if n_min is None:
        n_min = PAPER_TABLE1[diameter][0][0]
    if n_max is None:
        n_max = PAPER_TABLE1[diameter][-1][0]
    n_values = None
    if printed_rows_only and diameter in PAPER_TABLE1:
        n_values = [
            n for n, _ in PAPER_TABLE1[diameter] if n_min <= n <= n_max
        ]
    return degree_diameter_search(
        d, diameter, n_min, n_max, n_values=n_values, workers=workers, cache=cache
    )


def compare_with_paper(result: DegreeDiameterResult) -> dict[str, object]:
    """Compare a search result against the printed Table 1 rows.

    Returns a dictionary with the paper rows restricted to the searched range,
    the measured rows, and per-row agreement flags.  Only node counts printed
    by the paper are compared (the paper's table elides intermediate rows with
    an ellipsis).
    """
    if result.diameter not in PAPER_TABLE1:
        raise ValueError(f"paper does not print diameter {result.diameter}")
    n_lo, n_hi = result.n_range
    expected = [
        (n, splits)
        for n, splits in PAPER_TABLE1[result.diameter]
        if n_lo <= n <= n_hi
    ]
    agreement = []
    for n, splits in expected:
        measured = result.splits_for(n)
        agreement.append(
            {
                "n": n,
                "paper_splits": splits,
                "measured_splits": measured,
                "match": sorted(splits) == sorted(measured),
            }
        )
    return {
        "diameter": result.diameter,
        "rows_compared": len(expected),
        "all_match": all(entry["match"] for entry in agreement),
        "rows": agreement,
    }
