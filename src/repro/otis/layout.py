"""OTIS layouts of de Bruijn-like digraphs (Section 4.2 and 4.4).

A digraph ``G`` with ``n`` nodes of constant degree ``d`` *has an
OTIS(p, q)-layout* when ``p*q = n*d`` and ``G`` is isomorphic to
``H(p, q, d)``.  A layout is therefore more than a yes/no answer: it is an
explicit assignment of every node of ``G`` to a group of ``d`` transmitters
and ``d`` receivers of the optical plane.  :class:`OTISLayout` packages that
assignment together with its hardware cost.

The constructions provided:

* :func:`imase_itoh_layout` — the previously known ``OTIS(d, n)`` layout of
  ``II(d, n)`` (ref. [14]), which through Proposition 3.3 also lays out the
  de Bruijn digraph, but with ``p + q = d + n = O(n)`` lenses.
* :func:`kautz_layout` — the ``OTIS(d, n)`` layout of the Kautz digraph
  ``K(d, D)`` (``n = d^D + d^{D-1}``), again ``O(n)`` lenses.
* :func:`debruijn_layout` — the paper's contribution: for any valid split
  ``p' + q' - 1 = D`` (Corollary 4.2) an explicit layout of ``B(d, D)`` on
  ``OTIS(d^{p'}, d^{q'})``, built from the constructive isomorphism
  ``Ψ : B(d, D) → A(f, C, p'-1) = H(d^{p'}, d^{q'}, d)``.
* :func:`optimal_debruijn_layout` — the lens-minimising split of Corollary
  4.6, which for even ``D`` is the balanced ``Θ(√n)``-lens layout of
  Corollary 4.4.

Every layout can ``verify()`` itself by checking that relabelling ``G`` by
the node assignment reproduces ``H(p, q, d)`` arc-for-arc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.checks import (
    LensSplit,
    enumerate_layout_splits,
    minimal_lens_split,
    otis_alphabet_spec,
)
from repro.core.isomorphisms import debruijn_to_alphabet_isomorphism, invert_mapping
from repro.graphs.digraph import BaseDigraph, RegularDigraph
from repro.graphs.generators import de_bruijn, imase_itoh, kautz
from repro.graphs.isomorphism import find_isomorphism, is_isomorphism
from repro.otis.h_digraph import NodeAssignment, h_digraph, otis_node_assignment

__all__ = [
    "OTISLayout",
    "debruijn_layout",
    "optimal_debruijn_layout",
    "imase_itoh_layout",
    "kautz_layout",
    "find_layout_by_search",
]


@dataclass
class OTISLayout:
    """An explicit OTIS(p, q) layout of a digraph.

    Attributes
    ----------
    graph:
        The digraph being laid out (nodes ``0 .. n-1``).
    p, q:
        The OTIS system parameters; the optical plane has ``p*q``
        transmitters, ``p*q`` receivers and ``p + q`` lenses.
    d:
        Transceivers per node (= the digraph's constant degree).
    node_to_h:
        Array of length ``n``: ``node_to_h[u]`` is the ``H(p, q, d)`` node
        index assigned to node ``u`` of ``graph``.  This single array encodes
        the whole physical layout, because the transceivers of an ``H`` node
        are fixed by the architecture (:func:`otis_node_assignment`).
    description:
        Human-readable provenance (which corollary / search produced it).
    """

    graph: BaseDigraph
    p: int
    q: int
    d: int
    node_to_h: np.ndarray
    description: str = ""
    _h_cache: RegularDigraph | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ hardware
    @property
    def num_nodes(self) -> int:
        """Number of processors ``n``."""
        return self.graph.num_vertices

    @property
    def num_lenses(self) -> int:
        """Number of lenses ``p + q`` used by the optical system."""
        return self.p + self.q

    @property
    def num_transceivers_per_node(self) -> int:
        """Transmitter/receiver pairs per processor (= degree ``d``)."""
        return self.d

    @property
    def lens_efficiency(self) -> float:
        """Ratio ``(p + q) / sqrt(n)`` — the paper's optimum is ``Θ(1)`` here.

        For the balanced even-``D`` layout of Corollary 4.4 this equals
        exactly ``1 + d``; for the Imase–Itoh layout it grows like ``sqrt(n)``.
        """
        return self.num_lenses / float(np.sqrt(self.num_nodes))

    # ------------------------------------------------------------- assembly
    def h(self) -> RegularDigraph:
        """The target OTIS digraph ``H(p, q, d)`` (cached)."""
        if self._h_cache is None:
            self._h_cache = h_digraph(self.p, self.q, self.d)
        return self._h_cache

    def node_assignment(self, node: int) -> NodeAssignment:
        """Physical transceivers assigned to ``node`` of the laid-out digraph."""
        return otis_node_assignment(self.p, self.q, self.d, int(self.node_to_h[node]))

    def transmitter_map(self) -> np.ndarray:
        """Array ``(n, d, 2)``: transmitter (group, offset) per node and slot."""
        n = self.num_nodes
        result = np.empty((n, self.d, 2), dtype=np.int64)
        for u in range(n):
            assignment = self.node_assignment(u)
            for slot, (i, j) in enumerate(assignment.transmitters):
                result[u, slot] = (i, j)
        return result

    def verify(self) -> bool:
        """Check that the assignment is an isomorphism onto ``H(p, q, d)``.

        Returns True when relabelling ``graph`` by ``node_to_h`` reproduces
        the OTIS digraph exactly (arc multisets compared).
        """
        return is_isomorphism(self.graph, self.h(), self.node_to_h)

    def summary(self) -> dict[str, object]:
        """A dictionary of the headline layout figures (for reports/benches)."""
        return {
            "graph": self.graph.name or repr(self.graph),
            "nodes": self.num_nodes,
            "degree": self.d,
            "p": self.p,
            "q": self.q,
            "lenses": self.num_lenses,
            "lens_efficiency": self.lens_efficiency,
            "description": self.description,
        }


# --------------------------------------------------------------------------
# The paper's de Bruijn layouts
# --------------------------------------------------------------------------
def debruijn_layout(d: int, D: int, p_prime: int, q_prime: int) -> OTISLayout:
    """Lay out ``B(d, D)`` on ``OTIS(d^{p'}, d^{q'})`` (Corollary 4.2).

    Parameters
    ----------
    d, D:
        De Bruijn degree and diameter; ``n = d**D`` nodes.
    p_prime, q_prime:
        The split; must satisfy ``p' + q' - 1 = D`` and pass the cyclicity
        test of Corollary 4.2.

    Raises
    ------
    ValueError
        If the split does not cover ``D`` or does not yield a de Bruijn
        layout (e.g. the balanced split for odd ``D > 1``, Proposition 4.3).
    """
    if p_prime + q_prime - 1 != D:
        raise ValueError(
            f"split ({p_prime}, {q_prime}) does not satisfy p' + q' - 1 = D = {D}"
        )
    spec = otis_alphabet_spec(d, p_prime, q_prime)
    if not spec.is_debruijn_isomorphic():
        raise ValueError(
            f"H(d^{p_prime}, d^{q_prime}, d) is not isomorphic to B({d},{D}): "
            "the index permutation of Proposition 4.1 is not cyclic"
        )
    mapping = debruijn_to_alphabet_isomorphism(spec)
    graph = de_bruijn(d, D)
    return OTISLayout(
        graph=graph,
        p=d**p_prime,
        q=d**q_prime,
        d=d,
        node_to_h=mapping,
        description=(
            f"B({d},{D}) on OTIS({d**p_prime},{d**q_prime}) via Corollary 4.2 "
            f"(p'={p_prime}, q'={q_prime})"
        ),
    )


def optimal_debruijn_layout(d: int, D: int) -> OTISLayout:
    """The lens-minimising layout of ``B(d, D)`` (Corollaries 4.4 and 4.6).

    For even ``D`` this is the balanced split ``p' = D/2``, ``q' = D/2 + 1``
    with ``p + q = Θ(√n)`` lenses; for odd ``D`` the best valid split found by
    the ``O(D^2)`` search of Corollary 4.6 is used.
    """
    split: LensSplit = minimal_lens_split(d, D)
    return debruijn_layout(d, D, split.p_prime, split.q_prime)


def imase_itoh_layout(d: int, n: int) -> OTISLayout:
    """The previously known ``OTIS(d, n)`` layout of ``II(d, n)`` (ref. [14]).

    Uses ``d + n = O(n)`` lenses — the baseline the paper improves upon.  The
    node assignment is the identity: ``II(d, n)`` equals ``H(d, n, d)`` on
    integer labels (verified by the tests for many ``(d, n)``).
    """
    graph = imase_itoh(d, n)
    return OTISLayout(
        graph=graph,
        p=d,
        q=n,
        d=d,
        node_to_h=np.arange(n, dtype=np.int64),
        description=f"II({d},{n}) on OTIS({d},{n}) (known layout, O(n) lenses)",
    )


def kautz_layout(d: int, D: int) -> OTISLayout:
    """An ``OTIS(d, n)`` layout of the Kautz digraph ``K(d, D)``.

    ``K(d, D)`` is isomorphic to ``II(d, d^{D-1}(d+1))`` (Imase & Itoh, ref.
    [21]), so it inherits the ``OTIS(d, n)`` layout of the Imase–Itoh digraph.
    The node assignment is computed with the generic isomorphism search for
    small instances (the closed-form congruence isomorphism is exercised by
    the routing tests); this keeps the function exact while staying out of any
    hot path.
    """
    n = d ** (D - 1) * (d + 1)
    graph = kautz(d, D)
    target = h_digraph(d, n, d)
    mapping = find_isomorphism(graph, target)
    if mapping is None:  # pragma: no cover - would contradict Imase & Itoh 1983
        raise RuntimeError(f"K({d},{D}) unexpectedly has no OTIS({d},{n}) layout")
    return OTISLayout(
        graph=graph,
        p=d,
        q=n,
        d=d,
        node_to_h=np.asarray(mapping, dtype=np.int64),
        description=f"K({d},{D}) on OTIS({d},{n}) via II isomorphism",
    )


def find_layout_by_search(graph: RegularDigraph) -> OTISLayout | None:
    """Search every OTIS split for a layout of ``graph`` (generic, small n only).

    Tries all ``(p, q)`` with ``p*q = n*d`` in order of increasing ``p + q``
    and runs the generic isomorphism search against ``H(p, q, d)``.  Returns
    the first (fewest-lens) layout found, or ``None``.  This is the brute
    force the paper's structural theory replaces; it is used by the tests and
    the ablation benchmarks as the baseline.
    """
    from repro.otis.h_digraph import h_digraph_splits

    n = graph.num_vertices
    d = graph.degree
    candidates = []
    for p, q in h_digraph_splits(n, d):
        candidates.append((p, q))
        if p != q:
            candidates.append((q, p))
    candidates.sort(key=lambda pq: (pq[0] + pq[1], pq[0]))
    for p, q in candidates:
        target = h_digraph(p, q, d)
        mapping = find_isomorphism(graph, target)
        if mapping is not None:
            return OTISLayout(
                graph=graph,
                p=p,
                q=q,
                d=d,
                node_to_h=np.asarray(mapping, dtype=np.int64),
                description=f"found by exhaustive split search",
            )
    return None
