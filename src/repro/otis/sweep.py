"""Resumable, shardable orchestration of the degree–diameter sweep.

The full diameter-10 block of Table 1 tests every divisor split of every
``n`` up to the Kautz order 1536 — hours of work that one wants to spread
over several hosts, interrupt, and resume.  This module supplies the three
pieces that make that safe, in the deterministic-partitioning style of
Bobpp-like exhaustive search frameworks (see PAPERS.md):

* :class:`ChunkManifest` — a pure function of the search parameters that
  partitions the ``(n, p, q)`` work list into *named* chunks.  A chunk id is
  a stable hash of the chunk's work items together with the search
  parameters and :func:`code_version`, so every host (and every re-run)
  derives the identical manifest and agrees on which file holds which work.
* :class:`ChunkStore` — a directory of per-chunk JSON-lines result files.
  A chunk file is written to a temporary name and published with one atomic
  :func:`os.replace`, so a file either holds the complete chunk or does not
  exist; an interrupted sweep resumes by skipping the chunk ids already on
  disk (:func:`run_sweep` with ``resume=True``).
* :class:`SplitVerdictCache` — an on-disk memo of
  :func:`repro.otis.search.h_diameter` verdicts keyed by
  ``(p, q, d, target_D)`` and scoped by :func:`code_version`.  ``h_diameter``
  is a pure function of those parameters, and overlapping Table 1 blocks
  (plus repeated CI runs) ask for the same splits again and again; with a
  warm cache they are answered from disk.  Bumping the code version (any
  change to the verdict-defining sources) switches to a fresh cache file, so
  stale verdicts can never leak across versions.

:func:`run_sweep` executes (a shard of) a manifest into a store and
:func:`merge_sweep` folds the chunk files back into the same
:class:`~repro.otis.search.DegreeDiameterResult` that an in-process
:func:`~repro.otis.search.degree_diameter_search` returns — byte-identical
rows, regardless of how the work was sharded.  The CLI front-end is
``python -m repro sweep`` (``--shard i/k``, ``--resume``, ``--merge``,
``--cache-dir``).

On-disk formats (all JSON, one object per line in the ``.jsonl`` files):

* chunk file ``<out_dir>/chunk-<id>.jsonl`` — one record
  ``{"n": n, "p": p, "q": q, "verdict": v}`` per work item, where ``v`` is
  the raw staged verdict of ``h_diameter(h_digraph(p, q, d), upper_bound=D)``
  (``-1`` not strongly connected, ``0..D`` exact diameter, ``D+1`` "too
  large").  Storing the raw verdict keeps the merge free to apply either
  the exact-diameter or the at-most-diameter filter.  The final line is a
  ``{"__chunk_footer__": id, "records": count}`` footer; :meth:`ChunkStore.read`
  refuses files whose footer is missing or disagrees, so a chunk truncated
  in transit can never fold partial data into a merge.
* identity file ``<out_dir>/manifest.json`` — the manifest parameters the
  store was built for (:meth:`ChunkManifest.identity`), published on first
  write and verified on every later run/resume/merge
  (:func:`ensure_store_identity`): relaunching an out-dir with different
  ``(d, D, n range)``/chunk-size/code fails fast instead of silently
  matching zero chunks and rerunning everything.
* cache file ``<cache_dir>/verdicts-d<d>-D<D>-<code_version>.jsonl`` — one
  record ``{"p": p, "q": q, "verdict": v}`` per memoised split, each
  appended as a single ``O_APPEND`` write so concurrent workers never tear
  lines.

>>> manifest = ChunkManifest.build(2, 4, [16], chunk_size=2, code_version="v1")
>>> [chunk.items for chunk in manifest.chunks]
[((16, 1, 32), (16, 2, 16)), ((16, 4, 8),)]
>>> manifest.shard(0, 2) == manifest.chunks[0::2]
True
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.version import __version__

__all__ = [
    "fingerprint_paths",
    "code_version",
    "WorkItem",
    "SweepChunk",
    "make_chunks",
    "split_chunk",
    "assemble_split",
    "ChunkManifest",
    "ChunkStore",
    "StoreIdentityError",
    "ensure_store_identity",
    "SplitVerdictCache",
    "run_chunk",
    "run_sweep",
    "merge_sweep",
    "fold_records",
]

#: ``(n, p, q)`` — one candidate split of ``n`` nodes to test.
WorkItem = tuple[int, int, int]

#: Source files whose content defines what an ``h_diameter`` verdict *means*.
#: Their hash is folded into :func:`code_version`, so editing any of them
#: invalidates every on-disk verdict and renames every chunk — a resumed
#: sweep can never mix results computed by different code.
_VERDICT_SOURCES = (
    "graphs/digraph.py",
    "graphs/traversal.py",
    "graphs/apsp.py",
    "graphs/moore.py",
    "otis/h_digraph.py",
    "otis/search.py",
    "kernels/__init__.py",
    "kernels/_pyimpl.py",
    "kernels/native.py",
    "kernels/numba_backend.py",
)


@lru_cache(maxsize=None)
def fingerprint_paths(
    relative_paths: tuple[str, ...], extra: tuple[str, ...] = ()
) -> str:
    """Stable 12-hex-digit fingerprint of package sources.

    A SHA-256 prefix over the package version string, the bytes of the
    given ``repro``-relative source files, and any ``extra`` identity
    strings (e.g. the active kernel backend).  This is the generic form of
    :func:`code_version`: any subsystem that persists results keyed by "the
    code that computed them" (the degree–diameter sweep, the sharded
    simulator of :mod:`repro.simulation.sharding`) derives its version from
    the sources that define its semantics, so editing one of them renames
    every chunk and no resumed run can mix results from different code.
    """
    digest = hashlib.sha256()
    digest.update(__version__.encode())
    package_root = Path(__file__).resolve().parent.parent
    for relative in relative_paths:
        digest.update(relative.encode())
        digest.update((package_root / relative).read_bytes())
    for item in extra:
        digest.update(item.encode())
    return digest.hexdigest()[:12]


def code_version() -> str:
    """Fingerprint of the verdict-defining code (see :func:`fingerprint_paths`).

    Part of every chunk id and every cache file name: two processes agree on
    a chunk or cache entry only when they run the *same* verdict code.  The
    active kernel backend (:func:`repro.kernels.active_backend`) is folded
    in: backends are bit-identical by contract, but on-disk results stay
    attributable to the code path that actually produced them, and a resume
    after a backend switch is rejected rather than silently mixed.
    """
    from repro import kernels

    return fingerprint_paths(
        _VERDICT_SOURCES, ("kernels=" + kernels.active_backend(),)
    )


@dataclass(frozen=True)
class SweepChunk:
    """One named unit of chunked work.

    ``chunk_id`` is the stable name (also the result file name); ``index``
    is the chunk's position in the manifest; ``items`` the work items — for
    the degree–diameter sweep the ``(n, p, q)`` triples in canonical (``n``
    then ``p`` ascending) order, for other manifests whatever
    JSON-serialisable item type they chunk over (e.g. the sharded
    simulator's ``(replica index, traffic digest)`` pairs).
    """

    chunk_id: str
    index: int
    items: tuple


def make_chunks(items, chunk_size: int, identity: list) -> tuple[SweepChunk, ...]:
    """Cut a work list into contiguous, deterministically named chunks.

    ``identity`` is the JSON-serialisable context that, together with a
    chunk's items, *defines* its results (search parameters, code version,
    link timings, …): the chunk id is a SHA-256 prefix over both, so every
    host deriving the same identity and item list agrees on which file holds
    which work — the coordination mechanism behind ``--shard i/k``.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    items = list(items)
    chunks = []
    for index, start in enumerate(range(0, len(items), chunk_size)):
        chunk_items = tuple(items[start : start + chunk_size])
        payload = json.dumps(identity + [chunk_items], separators=(",", ":"))
        chunk_id = hashlib.sha256(payload.encode()).hexdigest()[:16]
        chunks.append(SweepChunk(chunk_id=chunk_id, index=index, items=chunk_items))
    return tuple(chunks)


def split_chunk(chunk: SweepChunk, parts: int = 2) -> tuple[SweepChunk, ...]:
    """Cut one chunk into deterministically named contiguous sub-chunks.

    Sub-chunk ``i`` of ``chunk`` is always named ``<chunk_id>.s<i>`` and
    always holds the same contiguous slice of the parent's items, so every
    fleet worker — with no coordination beyond seeing a split marker —
    derives the identical sub-chunk set and agrees on which lease and which
    result file belongs to which slice (the Bobpp-style deterministic
    partitioning contract, one level down).  Concatenating the sub-chunks'
    records in sub-index order reproduces the parent's records exactly,
    which is what makes :func:`assemble_split` byte-identical to running
    the parent unsplit.
    """
    if parts < 2:
        raise ValueError("a split needs parts >= 2")
    if len(chunk.items) < 2:
        raise ValueError(f"chunk {chunk.chunk_id} has fewer than 2 items")
    parts = min(parts, len(chunk.items))
    base, extra = divmod(len(chunk.items), parts)
    subs = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        subs.append(
            SweepChunk(
                chunk_id=f"{chunk.chunk_id}.s{index}",
                index=index,
                items=tuple(chunk.items[start : start + size]),
            )
        )
        start += size
    return tuple(subs)


def assemble_split(store: "ChunkStore", chunk: SweepChunk, parts: int) -> bool:
    """Fold a fully published split back into the parent chunk file.

    Returns False when any sub-chunk is still unpublished (nothing is
    written), True once the parent file exists.  The parent's records are
    the sub-chunks' records concatenated in sub-index order — chunk
    computations are pure per work item, so the assembled file is
    **byte-identical** to the file a worker running the unsplit chunk
    publishes; concurrent assemblers (or the original straggler finishing
    late) all rename identical bytes into place, a benign race.
    """
    if store.is_complete(chunk):
        return True
    subs = split_chunk(chunk, parts)
    if not all(store.is_complete(sub) for sub in subs):
        return False
    records: list[dict] = []
    for sub in subs:
        records.extend(store.read(sub))
    store.write(chunk, records)
    return True


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (persists renames across crashes).

    ``os.replace`` is atomic, but on a crash the *directory entry* may still
    be lost unless the directory itself is synced — the classic
    write/fsync/rename/fsync-dir discipline NFS and ext4 documentation both
    prescribe.  Failure is ignored: some filesystems refuse O_RDONLY opens
    of directories, and durability is an upgrade, not a correctness
    requirement (a lost rename just means the chunk is recomputed).
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_payload(fd: int, payload: bytes) -> None:
    """Write ``payload`` to ``fd`` fully, then fsync.

    One explicit ``os.write`` loop instead of a buffered text handle: the
    write is a visible seam (the chaos harness injects torn writes and
    EIO/ENOSPC exactly here), and a partial write followed by a crash can
    only ever leave a *temporary* file torn — publication renames only
    after the full payload and the fsync succeeded.
    """
    view = memoryview(payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]
    os.fsync(fd)


@dataclass(frozen=True)
class ChunkManifest:
    """Deterministic partition of a degree–diameter sweep into named chunks.

    Built by :meth:`build` as a pure function of ``(d, diameter,
    require_exact, n_values, chunk_size, code_version)``: every host that
    receives the same parameters derives bit-identical chunk ids, which is
    what lets ``--shard i/k`` invocations on different machines split the
    work with no coordination beyond the shared parameters.

    ``require_exact`` is carried in the manifest (and hashed into the chunk
    ids) even though chunk files store raw verdicts — it is applied at merge
    time, and keeping it in the identity means a store directory can never
    silently mix sweeps that were launched with different filters.
    """

    d: int
    diameter: int
    require_exact: bool
    n_values: tuple[int, ...]
    chunk_size: int
    code_version: str
    chunks: tuple[SweepChunk, ...]

    @classmethod
    def build(
        cls,
        d: int,
        diameter: int,
        n_values,
        *,
        require_exact: bool = True,
        chunk_size: int = 32,
        code_version: str | None = None,
    ) -> "ChunkManifest":
        """Partition the ``(n, p, q)`` work list into contiguous named chunks.

        ``n_values`` is deduplicated and sorted; each ``n`` expands to its
        :func:`~repro.otis.search.candidate_splits`, and the flattened item
        list is cut into chunks of ``chunk_size`` items.  ``code_version``
        defaults to :func:`code_version` and should only be overridden by
        tests (to simulate a version bump without editing sources).
        """
        from repro.otis.search import candidate_splits

        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        version = globals()["code_version"]() if code_version is None else code_version
        ns = tuple(sorted(set(int(n) for n in n_values)))
        items: list[WorkItem] = [
            (n, p, q) for n in ns for p, q in candidate_splits(n, d)
        ]
        chunks = make_chunks(items, chunk_size, [d, diameter, require_exact, version])
        return cls(
            d=d,
            diameter=diameter,
            require_exact=require_exact,
            n_values=ns,
            chunk_size=chunk_size,
            code_version=version,
            chunks=tuple(chunks),
        )

    def shard(self, index: int, count: int) -> tuple[SweepChunk, ...]:
        """The chunks assigned to shard ``index`` of ``count`` (round-robin).

        Round-robin (``chunks[index::count]``) rather than contiguous ranges,
        so the expensive large-``n`` chunks at the end of a Table 1 block
        spread evenly over the shards.  The shards partition :attr:`chunks`:
        their union over ``index in range(count)`` is exactly the manifest.
        """
        if count < 1:
            raise ValueError("shard count must be positive")
        if not 0 <= index < count:
            raise ValueError(f"shard index must be in [0, {count}), got {index}")
        return self.chunks[index::count]

    def identity(self) -> dict:
        """The JSON identity persisted as ``manifest.json`` in a store.

        Every parameter that renames the chunk ids appears here (plus a
        digest over the ids themselves), so :func:`ensure_store_identity`
        can fail fast — with the *differing field named* — when a store
        directory is relaunched, resumed or merged under parameters other
        than the ones it was built for.
        """
        ids = hashlib.sha256(
            "".join(chunk.chunk_id for chunk in self.chunks).encode()
        ).hexdigest()[:16]
        return {
            "kind": "degree-diameter-sweep",
            "d": self.d,
            "diameter": self.diameter,
            "require_exact": self.require_exact,
            "n_values": list(self.n_values),
            "chunk_size": self.chunk_size,
            "code_version": self.code_version,
            "num_chunks": len(self.chunks),
            "chunk_ids_digest": ids,
        }


class ChunkStore:
    """Directory of per-chunk result files with atomic completion.

    A chunk's results are streamed to a ``tempfile`` in the store directory
    and published under ``chunk-<id>.jsonl`` with one :func:`os.replace` —
    POSIX-atomic, so :meth:`is_complete` (existence of the final name) can
    never observe a half-written chunk.  Killing a sweep mid-chunk leaves at
    worst a ``.tmp-*`` orphan, which resumption ignores and overwrites.

    The last line of every chunk file is a **footer** naming the chunk and
    its record count.  The atomic rename already guarantees a *locally*
    written file is complete; the footer extends the guarantee to files that
    travelled — a chunk truncated by an interrupted ``scp``/``rsync`` between
    fleet hosts, or tampered with in place, makes :meth:`read` raise instead
    of silently folding partial data into a merge.
    """

    #: Footer key — no result record uses it, so a footer can never be
    #: mistaken for data (records are flat parameter/stat objects).
    FOOTER_KEY = "__chunk_footer__"

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, chunk: SweepChunk) -> Path:
        """The (final, post-publication) result file of a chunk."""
        return self.directory / f"chunk-{chunk.chunk_id}.jsonl"

    def is_complete(self, chunk: SweepChunk) -> bool:
        """Whether the chunk's results were fully written and published."""
        return self.path_for(chunk).exists()

    def completed_ids(self) -> set[str]:
        """Chunk ids with a published result file in the store."""
        return {
            path.name[len("chunk-") : -len(".jsonl")]
            for path in sorted(self.directory.glob("chunk-*.jsonl"))
        }

    def write(self, chunk: SweepChunk, records: list[dict]) -> Path:
        """Atomically publish a chunk's records (write-temp, fsync, rename).

        The full payload — records plus footer — is serialised first and
        pushed through one :func:`os.write` loop, so a crash or injected
        fault at any point leaves either no file or a ``.tmp-*`` orphan,
        never a half-published ``chunk-*.jsonl``.
        """
        target = self.path_for(chunk)
        lines = [json.dumps(record, separators=(",", ":")) for record in records]
        footer = {self.FOOTER_KEY: chunk.chunk_id, "records": len(records)}
        lines.append(json.dumps(footer, separators=(",", ":")))
        payload = ("\n".join(lines) + "\n").encode()
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".tmp-{chunk.chunk_id}-", suffix=".jsonl", dir=self.directory
        )
        try:
            try:
                _write_payload(fd, payload)
            finally:
                os.close(fd)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_directory(self.directory)
        return target

    def split_path(self, chunk: SweepChunk) -> Path:
        """The split-marker file announcing that ``chunk`` was split."""
        return self.directory / f"split-{chunk.chunk_id}.json"

    def request_split(self, chunk: SweepChunk, parts: int = 2) -> int:
        """Announce (or observe) a split of ``chunk`` into sub-chunks.

        The first caller publishes a marker file naming ``parts``; every
        later caller — and every racing worker — reads the winner's value
        back, so all workers agree on one sub-chunk set.  Exclusivity uses
        the write-tmp/fsync/``os.link`` discipline (see
        :meth:`repro.fleet.leases.LeaseManager`) rather than ``O_EXCL``,
        which NFSv2-era servers do not implement atomically.  Returns the
        agreed part count.
        """
        parts = min(max(2, parts), len(chunk.items))
        if len(chunk.items) < 2:
            raise ValueError(f"chunk {chunk.chunk_id} has fewer than 2 items")
        marker = self.split_path(chunk)
        existing = self.split_parts(chunk)
        if existing is not None:
            return existing
        payload = json.dumps(
            {"chunk": chunk.chunk_id, "parts": parts}, separators=(",", ":")
        ).encode() + b"\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".tmp-split-{chunk.chunk_id}-", suffix=".json", dir=self.directory
        )
        linked = False
        try:
            try:
                _write_payload(fd, payload)
            finally:
                os.close(fd)
            try:
                os.link(tmp_name, marker)
                linked = True
            except OSError:
                # Either we lost the race, or the link was applied but the
                # reply was lost (NFS retransmit) — st_nlink distinguishes.
                try:
                    linked = os.stat(tmp_name).st_nlink == 2
                except OSError:
                    linked = False
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        if linked:
            _fsync_directory(self.directory)
            return parts
        winner = self.split_parts(chunk)
        if winner is None:
            raise OSError(f"could not publish or read split marker {marker.name}")
        return winner

    def split_parts(self, chunk: SweepChunk) -> int | None:
        """The published part count of a split chunk, or None if unsplit."""
        marker = self.split_path(chunk)
        try:
            data = json.loads(marker.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None
        if data.get("chunk") != chunk.chunk_id:
            return None
        parts = data.get("parts")
        return parts if isinstance(parts, int) and parts >= 2 else None

    def read(self, chunk: SweepChunk) -> list[dict]:
        """The records of a completed chunk, validated against its footer.

        Raises ``ValueError`` on an unparseable line, a missing/foreign
        footer, or a record count that disagrees with the footer — any of
        which means the file is not the chunk :meth:`write` published
        (truncated in transit, tampered, or written by pre-footer code) and
        must not be merged.
        """
        path = self.path_for(chunk)
        records: list[dict] = []
        with path.open() as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    raise ValueError(
                        f"{path.name}: line {number} is not valid JSON - the "
                        "chunk file is corrupt; delete it and re-run the chunk"
                    ) from None
        if not records or self.FOOTER_KEY not in records[-1]:
            raise ValueError(
                f"{path.name}: missing record-count footer - the file is "
                "truncated (e.g. an interrupted copy) or was written by an "
                "older version; delete it and re-run the chunk"
            )
        footer = records.pop()
        if footer[self.FOOTER_KEY] != chunk.chunk_id:
            raise ValueError(
                f"{path.name}: footer names chunk {footer[self.FOOTER_KEY]!r}, "
                f"expected {chunk.chunk_id!r} - the file belongs to a "
                "different chunk"
            )
        if footer.get("records") != len(records):
            raise ValueError(
                f"{path.name}: holds {len(records)} records but the footer "
                f"promises {footer.get('records')} - partial chunk payload; "
                "delete it and re-run the chunk"
            )
        return records


class StoreIdentityError(RuntimeError):
    """A store directory's ``manifest.json`` disagrees with the caller's manifest.

    Raised instead of letting a relaunch with different parameters silently
    match zero completed chunks (and rerun everything) or pile a second,
    differently named chunk set into the same directory.
    """


#: Name of the identity file :func:`ensure_store_identity` keeps per store.
STORE_IDENTITY_NAME = "manifest.json"


def ensure_store_identity(store: ChunkStore, identity: dict) -> None:
    """Persist or verify a store directory's manifest identity.

    On the first write into an out-dir the identity (every parameter that
    renames the chunk ids — see :meth:`ChunkManifest.identity` /
    :meth:`repro.simulation.sharding.ReplicaChunkManifest.identity`) is
    published atomically as ``manifest.json``.  Every later run, resume or
    merge against the same directory must present the same identity;  a
    mismatch raises :class:`StoreIdentityError` naming the differing fields
    *before* any work runs.  Concurrent fleet workers race benignly: they
    derive byte-identical identities, so whichever ``os.replace`` lands last
    publishes the same content.
    """
    path = store.directory / STORE_IDENTITY_NAME
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            raise StoreIdentityError(
                f"{path}: existing identity file is not valid JSON; "
                "the store directory is corrupt"
            ) from None
        if existing != identity:
            fields = [
                key
                for key in sorted(set(existing) | set(identity))
                if existing.get(key) != identity.get(key)
            ]
            detail = ", ".join(
                f"{key}: store has {existing.get(key)!r}, caller has "
                f"{identity.get(key)!r}"
                for key in fields
            )
            raise StoreIdentityError(
                f"{path} does not match the requested manifest ({detail}); "
                "the store was built with different parameters or code - "
                "use a fresh --out-dir, or relaunch with the original "
                "parameters"
            )
        return
    payload = (json.dumps(identity, indent=2, sort_keys=True) + "\n").encode()
    fd, tmp_name = tempfile.mkstemp(
        prefix=".tmp-manifest-", suffix=".json", dir=store.directory
    )
    try:
        try:
            _write_payload(fd, payload)
        finally:
            os.close(fd)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(store.directory)


class SplitVerdictCache:
    """On-disk memo of ``h_diameter`` verdicts for OTIS splits.

    One JSON-lines file per ``(d, target_D, code_version)`` triple, holding
    ``{"p": p, "q": q, "verdict": v}`` records.  The key design points:

    * the **code version is part of the file name**, not of each record:
      bumping it (any edit to a verdict-defining source) makes the cache
      start cold in a fresh file, so a verdict computed by old code can
      never satisfy a lookup from new code — correctness does not depend on
      anyone remembering to clear a directory;
    * records are *appended*, each as **one ``os.write`` on an ``O_APPEND``
      file descriptor**: POSIX serialises same-filesystem ``O_APPEND``
      writes, so concurrent sweep/fleet processes sharing a ``--cache-dir``
      interleave whole lines and can never tear each other's records (a
      buffered text-mode ``open("a")`` offers no such guarantee — its
      flush may split one line across several writes).  Duplicated entries
      are harmless (last one wins on load, and verdicts are deterministic
      so duplicates always agree);
    * a malformed line (torn write from a crashed or pre-fix writer) is
      skipped on load — but *counted*, and a :class:`RuntimeWarning` says
      how many verdicts were dropped instead of silently swallowing them.

    ``hits`` / ``misses`` counters are exposed for the cold-vs-warm
    benchmark (``benchmarks/test_sweep_cache.py``).
    """

    def __init__(
        self,
        directory: str | Path,
        d: int,
        target_diameter: int,
        *,
        version: str | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.d = d
        self.target_diameter = target_diameter
        self.version = code_version() if version is None else version
        self.path = (
            self.directory
            / f"verdicts-d{d}-D{target_diameter}-{self.version}.jsonl"
        )
        self.hits = 0
        self.misses = 0
        self._memory: dict[tuple[int, int], int] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        dropped = 0
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._memory[(int(record["p"]), int(record["q"]))] = int(
                        record["verdict"]
                    )
                except (ValueError, KeyError, TypeError):
                    dropped += 1  # torn line from a crashed writer
        if dropped:
            warnings.warn(
                f"{self.path.name}: dropped {dropped} unparseable cache "
                "line(s) (torn write from a crashed writer, or a file shared "
                "with a pre-O_APPEND version); the affected verdicts will be "
                "recomputed",
                RuntimeWarning,
                stacklevel=3,
            )

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, p: int, q: int) -> int | None:
        """The memoised verdict for split ``(p, q)``, or None on a miss."""
        verdict = self._memory.get((p, q))
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def put(self, p: int, q: int, verdict: int) -> None:
        """Record a verdict (in memory and appended to the cache file).

        The record goes to disk as a **single ``os.write``** on an
        ``O_APPEND`` descriptor: the kernel serialises the seek-to-end and
        the write, so concurrent shard/fleet workers appending to one cache
        file emit whole, untorn lines (small writes — a verdict line is tens
        of bytes, far below any pipe/FS atomicity limit).
        """
        if (p, q) in self._memory:
            return
        self._memory[(p, q)] = verdict
        line = json.dumps(
            {"p": p, "q": q, "verdict": verdict}, separators=(",", ":")
        )
        payload = (line + "\n").encode()
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)


def _item_verdict(
    n: int, p: int, q: int, d: int, diameter: int, cache: SplitVerdictCache | None
) -> dict:
    """Verdict record for one work item, consulting the cache when given."""
    from repro.otis.h_digraph import h_digraph
    from repro.otis.search import h_diameter

    verdict = cache.get(p, q) if cache is not None else None
    if verdict is None:
        verdict = h_diameter(h_digraph(p, q, d), upper_bound=diameter)
        if cache is not None:
            cache.put(p, q, verdict)
    return {"n": n, "p": p, "q": q, "verdict": verdict}


def run_chunk(
    payload: tuple[int, int, tuple[WorkItem, ...], str | None, str | None],
    cache: SplitVerdictCache | None = None,
) -> list[dict]:
    """Compute the verdict records of one chunk.

    ``payload`` is ``(d, diameter, items, cache_dir, cache_version)`` — a
    plain picklable tuple so :class:`ProcessPoolExecutor` workers can run
    chunks; the serial path calls it with the same payload, keeping one code
    path for both.  Each worker opens its own :class:`SplitVerdictCache`
    view of ``cache_dir`` (appends interleave safely, see the cache's
    docstring); a serial caller may instead pass an already-open ``cache``,
    which takes precedence and keeps one hit/miss ledger across chunks.
    """
    d, diameter, items, cache_dir, cache_version = payload
    if cache is None and cache_dir is not None:
        cache = SplitVerdictCache(cache_dir, d, diameter, version=cache_version)
    return [_item_verdict(n, p, q, d, diameter, cache) for n, p, q in items]


def fold_records(
    manifest: ChunkManifest,
    records: list[dict],
    *,
    n_range: tuple[int, int] | None = None,
):
    """Fold verdict records into a :class:`DegreeDiameterResult`.

    Applies the manifest's ``require_exact`` filter, groups by ``n`` and
    orders rows by ``n`` and splits by ``p`` — exactly the shape
    :func:`~repro.otis.search.degree_diameter_search` produces, so sharded
    and in-process sweeps are interchangeable downstream.  ``n_range``
    defaults to the extremes of the manifest's ``n_values``; the in-process
    search passes its original ``(n_min, n_max)`` instead.
    """
    from repro.otis.search import DegreeDiameterResult

    kept: dict[int, list[tuple[int, int]]] = {}
    for record in sorted(records, key=lambda r: (r["n"], r["p"], r["q"])):
        verdict = record["verdict"]
        if verdict < 0 or verdict > manifest.diameter:
            continue
        if manifest.require_exact and verdict != manifest.diameter:
            continue
        kept.setdefault(record["n"], []).append((record["p"], record["q"]))
    if n_range is None:
        n_range = (
            (manifest.n_values[0], manifest.n_values[-1])
            if manifest.n_values
            else (0, 0)
        )
    return DegreeDiameterResult(
        d=manifest.d,
        diameter=manifest.diameter,
        rows=sorted(kept.items()),
        n_range=n_range,
    )


def run_sweep(
    manifest: ChunkManifest,
    store: ChunkStore | str | Path,
    *,
    shard: tuple[int, int] = (0, 1),
    resume: bool = False,
    cache: SplitVerdictCache | str | Path | None = None,
    workers: int | None = None,
) -> dict:
    """Execute (one shard of) a manifest into a chunk store.

    Parameters
    ----------
    manifest:
        The work partition; every cooperating host must build it with the
        same parameters (the chunk ids are the coordination mechanism).
    store:
        A :class:`ChunkStore` or a directory path for one.  Chunk results
        are published atomically, one file per chunk.
    shard:
        ``(index, count)`` — run only the round-robin shard ``index`` of
        ``count`` (default: everything).  Different shards write disjoint
        chunk files, so any number of hosts can share one store directory
        (e.g. over NFS) without locking.
    resume:
        Skip chunks whose result file already exists.  This is what makes
        an interrupted sweep safe to relaunch: completed chunks are kept,
        the chunk that was in flight (no published file) is recomputed.
    cache:
        A :class:`SplitVerdictCache`, or a cache *directory* from which one
        is opened with the manifest's parameters.  Consulted before every
        ``h_diameter`` call and fed with every fresh verdict.
    workers:
        When ``> 1``, chunks of this shard fan out over a
        :class:`ProcessPoolExecutor` (each worker opening its own cache
        view); results are identical regardless of scheduling because every
        chunk is an independent pure computation.

    Returns
    -------
    dict with ``ran`` / ``skipped`` chunk-id lists and the store directory.
    """
    if not isinstance(store, ChunkStore):
        store = ChunkStore(store)
    ensure_store_identity(store, manifest.identity())
    shard_index, shard_count = shard
    chunks = manifest.shard(shard_index, shard_count)
    todo = []
    skipped = []
    for chunk in chunks:
        if resume and store.is_complete(chunk):
            skipped.append(chunk.chunk_id)
        else:
            todo.append(chunk)

    cache_dir: str | None = None
    local_cache: SplitVerdictCache | None = None
    if isinstance(cache, SplitVerdictCache):
        local_cache = cache
        cache_dir = str(cache.directory)
        cache_version = cache.version
    elif cache is not None:
        cache_dir = str(cache)
        cache_version = manifest.code_version
        local_cache = SplitVerdictCache(
            cache_dir, manifest.d, manifest.diameter, version=cache_version
        )
    else:
        cache_version = manifest.code_version

    payloads = [
        (manifest.d, manifest.diameter, chunk.items, cache_dir, cache_version)
        for chunk in todo
    ]
    if workers is not None and workers > 1 and len(todo) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Publish each chunk the moment its future completes (not in
            # submission order): if the process dies while one slow chunk is
            # still in flight, every finished chunk is already on disk and a
            # --resume relaunch recomputes only the one that was lost.
            futures = {
                pool.submit(run_chunk, payload): chunk
                for chunk, payload in zip(todo, payloads)
            }
            for future in as_completed(futures):
                store.write(futures[future], future.result())
    else:
        for chunk, payload in zip(todo, payloads):
            store.write(chunk, run_chunk(payload, cache=local_cache))
    return {
        "ran": [chunk.chunk_id for chunk in todo],
        "skipped": skipped,
        "store": str(store.directory),
    }


def merge_sweep(
    manifest: ChunkManifest,
    store: ChunkStore | str | Path,
    *,
    partial: bool = False,
):
    """Fold a store's chunk files into a :class:`DegreeDiameterResult`.

    Raises ``FileNotFoundError`` naming the missing chunk ids when any chunk
    of the manifest has not been published yet — a partial merge would
    silently drop table rows, which is exactly the failure mode the named
    manifest exists to prevent.  ``partial=True`` opts into exactly that
    drop *explicitly*, for progress reports over a store other shards are
    still filling: the completed chunks are folded and the result carries
    only the rows they cover (the CLI's ``--merge --partial`` prints the
    coverage next to the table so a partial report can never masquerade as
    a finished sweep).  Raises :class:`StoreIdentityError` before anything
    else when the store's ``manifest.json`` was written for different
    parameters.
    """
    if not isinstance(store, ChunkStore):
        store = ChunkStore(store)
    ensure_store_identity(store, manifest.identity())
    for chunk in manifest.chunks:
        # A straggler split whose assembler died after the last sub-chunk
        # published is still mergeable — fold it back here rather than
        # reporting the parent missing.
        if not store.is_complete(chunk):
            parts = store.split_parts(chunk)
            if parts is not None:
                assemble_split(store, chunk, parts)
    missing = [
        chunk.chunk_id for chunk in manifest.chunks if not store.is_complete(chunk)
    ]
    if missing and partial:
        records: list[dict] = []
        for chunk in manifest.chunks:
            if store.is_complete(chunk):
                records.extend(store.read(chunk))
        return fold_records(manifest, records)
    if missing:
        message = (
            f"{len(missing)} of {len(manifest.chunks)} chunks incomplete "
            f"(e.g. {missing[:3]}); run the remaining shards (or --resume) first"
        )
        # Chunk files that belong to no chunk of *this* manifest usually mean
        # the manifest identity changed under the store — a code-version bump
        # (any edit to a verdict-defining source) or different parameters
        # (chunk_size, require_exact, range) rename every chunk id.  Saying
        # "re-run the shards" alone would silently discard a completed sweep.
        known = {c.chunk_id for c in manifest.chunks}
        orphans = {
            chunk_id
            for chunk_id in store.completed_ids() - known
            # Sub-chunk files (``<parent>.s<i>``) of a known chunk are split
            # work in flight, not foreign-manifest leftovers.
            if chunk_id.partition(".")[0] not in known
        }
        if orphans:
            message += (
                f"; NOTE: the store also holds {len(orphans)} chunk file(s) from "
                "a different manifest — the code version or sweep parameters "
                f"(chunk_size, require_exact, n range) likely changed since "
                f"they were written (current code version: {manifest.code_version})"
            )
        raise FileNotFoundError(message)
    records: list[dict] = []
    for chunk in manifest.chunks:
        records.extend(store.read(chunk))
    return fold_records(manifest, records)
