"""The OTIS-induced processor digraph ``H(p, q, d)`` (Section 4.2).

Let ``m = p*q`` and let ``d`` divide ``m``.  ``OTIS(p, q)`` connects ``m``
transmitters to ``m`` receivers; grouping them ``d`` at a time onto
``n = m/d`` processors yields the ``d``-regular digraph ``H(p, q, d)``:

* node ``u`` owns transmitters ``(⌊(du+λ)/q⌋, (du+λ) mod q)`` for
  ``λ ∈ Z_d``,
* node ``u`` owns receivers ``(⌊(du+λ)/p⌋, (du+λ) mod p)`` for ``λ ∈ Z_d``,
* there is an arc ``u → v`` whenever one of ``u``'s transmitters illuminates
  one of ``v``'s receivers.

Figure 7 of the paper draws ``H(4, 8, 2)``; the paper's results identify the
power-of-``d`` cases ``H(d^{p'}, d^{q'}, d)`` with alphabet digraphs
(Proposition 4.1) and characterise when they are de Bruijn digraphs
(Corollary 4.2).

A digraph ``G`` *has an OTIS(p, q)-layout* when it is isomorphic to
``H(p, q, d)``; that notion lives in :mod:`repro.otis.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import RegularDigraph

__all__ = ["h_digraph", "h_digraph_splits", "otis_node_assignment", "NodeAssignment"]


def h_digraph(p: int, q: int, d: int) -> RegularDigraph:
    """Construct the OTIS digraph ``H(p, q, d)``.

    Parameters
    ----------
    p, q:
        OTIS parameters (``p`` groups of ``q`` transmitters).
    d:
        Number of transceivers per processor; must divide ``p*q``.

    Returns
    -------
    RegularDigraph
        A ``d``-regular digraph on ``n = p*q/d`` vertices.  Successor slot
        ``λ`` of node ``u`` is the node receiving the beam of transmitter
        ``d*u + λ``.

    Examples
    --------
    >>> H = h_digraph(4, 8, 2)
    >>> H.num_vertices, H.degree
    (16, 2)
    >>> H.out_neighbors(0)          # 0000 -> {1101, 1111}  (Figure 7/8)
    [15, 13]
    """
    if p < 1 or q < 1 or d < 1:
        raise ValueError("p, q and d must be positive")
    m = p * q
    if m % d != 0:
        raise ValueError(f"d={d} must divide p*q={m}")
    n = m // d

    transmitters = np.arange(m, dtype=np.int64)
    i = transmitters // q
    j = transmitters % q
    receiver_global = (q - j - 1) * p + (p - i - 1)
    owner = receiver_global // d
    successors = owner.reshape(n, d)
    return RegularDigraph(successors, name=f"H({p},{q},{d})")


def h_digraph_splits(n: int, d: int) -> list[tuple[int, int]]:
    """All ``(p, q)`` with ``p*q = n*d`` — the candidate OTIS systems for ``n`` nodes.

    Used by the degree–diameter search of Table 1: every divisor pair of
    ``m = n*d`` gives a candidate ``H(p, q, d)`` on ``n`` nodes.
    Pairs are returned with ``p <= q`` first, in increasing ``p``.
    """
    if n < 1 or d < 1:
        raise ValueError("n and d must be positive")
    m = n * d
    splits = []
    p = 1
    while p * p <= m:
        if m % p == 0:
            splits.append((p, m // p))
        p += 1
    return splits


@dataclass(frozen=True)
class NodeAssignment:
    """The transceivers owned by one processor of ``H(p, q, d)``.

    Attributes
    ----------
    node:
        The processor index ``u ∈ Z_n``.
    transmitters:
        The ``d`` transmitter coordinates ``(i, j)`` owned by the node.
    receivers:
        The ``d`` receiver coordinates ``(a, b)`` owned by the node.
    """

    node: int
    transmitters: tuple[tuple[int, int], ...]
    receivers: tuple[tuple[int, int], ...]


def otis_node_assignment(p: int, q: int, d: int, node: int) -> NodeAssignment:
    """The transmitters and receivers assigned to ``node`` in ``H(p, q, d)``.

    This is the physical content of a layout: it tells the hardware designer
    which ``d`` VCSELs and which ``d`` photodetectors of the OTIS plane belong
    to each processor.
    """
    m = p * q
    if m % d != 0:
        raise ValueError(f"d={d} must divide p*q={m}")
    n = m // d
    if not 0 <= node < n:
        raise ValueError(f"node {node} out of range for H({p},{q},{d})")
    transmitters = tuple(
        ((d * node + lam) // q, (d * node + lam) % q) for lam in range(d)
    )
    receivers = tuple(
        ((d * node + lam) // p, (d * node + lam) % p) for lam in range(d)
    )
    return NodeAssignment(node=node, transmitters=transmitters, receivers=receivers)
