"""Tests for the OTIS(p, q) architecture model (Section 4.1, Figure 6)."""

import numpy as np
import pytest

from repro.otis.architecture import OTISArchitecture


class TestWiring:
    def test_defining_rule(self):
        otis = OTISArchitecture(3, 6)
        assert otis.receiver_of(0, 0) == (5, 2)
        assert otis.receiver_of(2, 5) == (0, 0)
        assert otis.receiver_of(1, 3) == (2, 1)

    def test_inverse_wiring(self):
        otis = OTISArchitecture(4, 8)
        for i in range(4):
            for j in range(8):
                a, b = otis.receiver_of(i, j)
                assert otis.transmitter_of(a, b) == (i, j)

    def test_connection_array_is_permutation(self):
        for p, q in [(3, 6), (4, 8), (2, 256), (5, 7), (1, 9)]:
            otis = OTISArchitecture(p, q)
            wiring = otis.connection_array()
            assert sorted(wiring.tolist()) == list(range(p * q))

    def test_connection_array_matches_scalar_rule(self):
        otis = OTISArchitecture(3, 5)
        wiring = otis.connection_array()
        for i in range(3):
            for j in range(5):
                a, b = otis.receiver_of(i, j)
                assert wiring[otis.transmitter_index(i, j)] == otis.receiver_index(a, b)

    def test_transpose_property(self):
        assert OTISArchitecture(3, 6).is_transpose()
        assert OTISArchitecture(4, 4).is_transpose()
        assert OTISArchitecture(1, 7).is_transpose()

    def test_range_validation(self):
        otis = OTISArchitecture(3, 6)
        with pytest.raises(ValueError):
            otis.receiver_of(3, 0)
        with pytest.raises(ValueError):
            otis.receiver_of(0, 6)
        with pytest.raises(ValueError):
            otis.transmitter_of(6, 0)
        with pytest.raises(ValueError):
            OTISArchitecture(0, 5)


class TestGeometry:
    def test_counts_figure_6(self):
        # OTIS(3, 6): 18 transmitters, 18 receivers, 9 lenses.
        otis = OTISArchitecture(3, 6)
        assert otis.num_transmitters == 18
        assert otis.num_receivers == 18
        assert otis.num_lenses == 9
        assert otis.transmitter_lens_count == 3
        assert otis.receiver_lens_count == 6

    def test_index_roundtrips(self):
        otis = OTISArchitecture(4, 7)
        for t in range(otis.num_transmitters):
            i, j = otis.transmitter_coords(t)
            assert otis.transmitter_index(i, j) == t
        for r in range(otis.num_receivers):
            a, b = otis.receiver_coords(r)
            assert otis.receiver_index(a, b) == r
        with pytest.raises(ValueError):
            otis.transmitter_coords(28)

    def test_optical_paths(self):
        otis = OTISArchitecture(3, 6)
        path = otis.optical_path(1, 2)
        assert path.transmitter == (1, 2)
        assert path.receiver == (3, 1)
        assert path.transmitter_lens == 1
        assert path.receiver_lens == 3
        all_paths = otis.all_optical_paths()
        assert len(all_paths) == 18
        # every transmitter-side lens carries exactly q beams
        from collections import Counter

        counts = Counter(p.transmitter_lens for p in all_paths)
        assert all(count == 6 for count in counts.values())
        counts_rx = Counter(p.receiver_lens for p in all_paths)
        assert all(count == 3 for count in counts_rx.values())

    def test_repr(self):
        assert "OTISArchitecture(p=3, q=6)" in repr(OTISArchitecture(3, 6))
