"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestLayoutCommand:
    def test_layout_basic(self, capsys):
        assert main(["layout", "-D", "8"]) == 0
        out = capsys.readouterr().out
        assert "OTIS(16,32)" in out
        assert "48 lenses" in out
        assert "verified: True" in out

    def test_layout_with_assignments(self, capsys):
        assert main(["layout", "-D", "4", "--assignments"]) == 0
        out = capsys.readouterr().out
        assert "transmitters" in out
        assert out.count("\n") > 16  # one row per processor


class TestCheckCommand:
    def test_check_positive(self, capsys):
        assert main(["check", "--p-prime", "4", "--q-prime", "5"]) == 0
        assert "IS isomorphic" in capsys.readouterr().out

    def test_check_negative_exit_code(self, capsys):
        assert main(["check", "--p-prime", "3", "--q-prime", "6"]) == 1
        assert "is NOT isomorphic" in capsys.readouterr().out


class TestSplitsCommand:
    def test_splits(self, capsys):
        assert main(["splits", "-D", "8"]) == 0
        out = capsys.readouterr().out
        assert "lenses" in out
        assert out.count("\n") >= 9  # header + separator + 8 splits


class TestTable1Command:
    def test_table1_printed_rows(self, capsys):
        assert main(["table1", "8"]) == 0
        out = capsys.readouterr().out
        assert "B(2,8)" in out
        assert "K(2,8)" in out
        assert "all printed rows reproduced: True" in out

    def test_table1_rejects_unknown_diameter(self):
        with pytest.raises(SystemExit):
            main(["table1", "6"])


class TestFigureCommand:
    def test_figure_1_dot(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "B(2,3)"')

    def test_figure_2_text(self, capsys):
        assert main(["figure", "2", "--format", "text"]) == 0
        assert "->" in capsys.readouterr().out

    def test_figure_5_dot(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_figure_6_and_7_wirings(self, capsys):
        assert main(["figure", "6"]) == 0
        out6 = capsys.readouterr().out
        assert out6.count("->") == 18
        assert main(["figure", "7", "--format", "text"]) == 0
        out7 = capsys.readouterr().out
        assert "32 beams" in out7

    def test_figure_8(self, capsys):
        assert main(["figure", "8", "--format", "text"]) == 0
        assert "0000" in capsys.readouterr().out


class TestSimCommand:
    def test_sim_basic_sweep(self, capsys):
        assert main(["sim", "-p", "4", "-q", "8", "--messages", "40", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "H(4,8,2)" in out
        assert "throughput" in out
        assert "engine=batched" in out

    def test_sim_both_engines_parity(self, capsys):
        assert (
            main(
                [
                    "sim",
                    "-p", "4", "-q", "8",
                    "--messages", "30",
                    "--seeds", "2",
                    "--workloads", "uniform", "hotspot",
                    "--rates", "2.0",
                    "--engine", "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parity with event-loop reference: True" in out

    def test_sim_writes_json(self, capsys, tmp_path):
        target = tmp_path / "BENCH_sim.json"
        assert (
            main(
                [
                    "sim",
                    "-p", "4", "-q", "8",
                    "--messages", "20",
                    "--seeds", "1",
                    "--json", str(target),
                ]
            )
            == 0
        )
        import json

        data = json.loads(target.read_text())
        entry = data["sweep_H(4,8,2)_batched"]
        assert entry["graph"] == "H(4,8,2)"
        assert entry["curves"][0]["delivered"] == 20

class TestScenariosCommand:
    def test_scenarios_basic(self, capsys):
        assert (
            main(
                [
                    "scenarios",
                    "-p", "2", "-q", "8", "-d", "4",
                    "--messages", "40",
                    "--seeds", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "H(2,8,4)" in out
        assert "scenario [" in out
        assert "pareto" in out

    def test_scenarios_faults_reroute_parity(self, capsys):
        assert (
            main(
                [
                    "scenarios",
                    "-p", "2", "-q", "8", "-d", "4",
                    "--messages", "40",
                    "--seeds", "2",
                    "--rates", "0.5", "2.0",
                    "--fail-links", "5",
                    "--fail-at", "2.0",
                    "--reroute", "arc-disjoint",
                    "--engine", "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reroute=arc-disjoint" in out
        assert "parity with event-loop reference: True" in out

    def test_scenarios_buffered_bursty_json(self, capsys, tmp_path):
        target = tmp_path / "BENCH_scenarios.json"
        assert (
            main(
                [
                    "scenarios",
                    "-p", "2", "-q", "8", "-d", "4",
                    "--arrival", "bursty",
                    "--messages", "30",
                    "--seeds", "1",
                    "--capacity", "1",
                    "--on-full", "retry",
                    "--json", str(target),
                ]
            )
            == 0
        )
        import json

        data = json.loads(target.read_text())
        entry = data["scenarios_H(2,8,4)_bursty"]
        assert entry["scenario"]["arrivals"]["kind"] == "bursty"
        assert entry["scenario"]["link"]["capacity"] == 1
        assert entry["scenario_digest"]
        row = entry["curves"][0]
        assert {"throughput", "mean_latency", "pareto", "retransmits"} <= set(row)


class TestFleetStatusCommand:
    def test_status_of_completed_store(self, capsys, tmp_path):
        import json

        from repro.fleet import SweepFleetJob, run_fleet
        from repro.otis.sweep import ChunkManifest, ChunkStore

        manifest = ChunkManifest.build(2, 6, range(60, 64), chunk_size=2)
        store = ChunkStore(tmp_path / "sweep")
        run_fleet(SweepFleetJob(manifest, store), ttl=10, heartbeat=2)
        assert (
            main(["fleet", "status", "--out-dir", str(store.directory)]) == 0
        )
        out = capsys.readouterr().out
        assert "complete" in out
        assert (
            main(
                ["fleet", "status", "--out-dir", str(store.directory), "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] is True
        assert payload["chunks"] == len(manifest.chunks)
        assert payload["running"] == []

    def test_status_of_untouched_dir_fails(self, capsys, tmp_path):
        assert main(["fleet", "status", "--out-dir", str(tmp_path / "no")]) == 1
        assert "no fleet has written" in capsys.readouterr().err


class TestSweepCommand:
    def _args(self, tmp_path, *extra):
        return [
            "sweep",
            "-D", "6",
            "--n-min", "62",
            "--n-max", "66",
            "--out-dir", str(tmp_path / "chunks"),
            "--chunk-size", "8",
            *extra,
        ]

    def test_sharded_run_then_merge(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--shard", "0/2")) == 0
        assert main(self._args(tmp_path, "--shard", "1/2")) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge")) == 0
        out = capsys.readouterr().out
        assert "B(2,6)" in out  # n=64 row with its three splits
        assert "8     16" in out

    def test_merge_refuses_partial_store(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--shard", "0/2")) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge")) == 1
        assert "chunks incomplete" in capsys.readouterr().err

    def test_resume_skips_completed_chunks(self, capsys, tmp_path):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--resume")) == 0
        out = capsys.readouterr().out
        assert "ran 0 chunks" in out

    def test_cache_dir_is_created_and_filled(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self._args(tmp_path, "--cache-dir", str(cache_dir))) == 0
        assert list(cache_dir.glob("verdicts-d2-D6-*.jsonl"))

    def test_rejects_malformed_shard(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self._args(tmp_path, "--shard", "2/2"))
        with pytest.raises(SystemExit):
            main(self._args(tmp_path, "--shard", "nope"))

    def test_rejects_bad_range(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep",
                    "-D", "6",
                    "--n-min", "10",
                    "--n-max", "5",
                    "--out-dir", str(tmp_path / "chunks"),
                ]
            )
            == 2
        )


class TestSimCommandJson:
    def test_sim_json_key_matches_recorded_engine(self, capsys, tmp_path):
        # --engine both records the batched sweep: key and payload must agree
        target = tmp_path / "BENCH_sim.json"
        assert (
            main(
                [
                    "sim",
                    "-p", "4", "-q", "8",
                    "--messages", "15",
                    "--seeds", "1",
                    "--engine", "both",
                    "--json", str(target),
                ]
            )
            == 0
        )
        import json

        data = json.loads(target.read_text())
        (key,) = data.keys()
        assert key == "sweep_H(4,8,2)_batched"
        assert data[key]["engine"] == "batched"


class TestSimRouterFlag:
    @pytest.mark.parametrize("router", ["dense", "closed-form", "lru"])
    def test_router_choices_agree(self, capsys, router):
        assert (
            main(
                [
                    "sim",
                    "-p", "4", "-q", "8",
                    "--messages", "30",
                    "--seeds", "1",
                    "--router", router,
                    "--engine", "both",
                ]
            )
            == 0
        )
        assert "parity with event-loop reference: True" in capsys.readouterr().out

    def test_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "-p", "4", "-q", "8", "--router", "magic"])


class TestSimShardedCommand:
    def _args(self, tmp_path, *extra):
        return [
            "sim",
            "-p", "4", "-q", "8",
            "--messages", "25",
            "--seeds", "4",
            "--out-dir", str(tmp_path / "replicas"),
            "--chunk-size", "2",
            *extra,
        ]

    def test_shard_run_then_merge(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--shard", "0/2")) == 0
        assert main(self._args(tmp_path, "--shard", "1/2")) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge")) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "100/100" in out  # 4 seeds x 25 messages, all delivered

    def test_merge_refuses_incomplete_store(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--shard", "0/2")) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge")) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_resume_skips_completed_chunks(self, capsys, tmp_path):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--resume")) == 0
        assert "ran 0 chunks" in capsys.readouterr().out

    def test_sharded_merge_matches_in_process_curves(self, capsys, tmp_path):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge")) == 0
        sharded_out = capsys.readouterr().out
        assert (
            main(["sim", "-p", "4", "-q", "8", "--messages", "25", "--seeds", "4"])
            == 0
        )
        in_process_out = capsys.readouterr().out
        # identical curve rows (skip the differing header/progress lines)
        sharded_rows = [l for l in sharded_out.splitlines() if "uniform" in l]
        in_process_rows = [l for l in in_process_out.splitlines() if "uniform" in l]
        assert sharded_rows == in_process_rows

    def test_sharded_writes_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "BENCH_sim.json"
        assert main(self._args(tmp_path)) == 0
        assert main(self._args(tmp_path, "--merge", "--json", str(target))) == 0
        data = json.loads(target.read_text())
        entry = data["sweep_H(4,8,2)_sharded"]
        assert entry["curves"][0]["delivered"] == 100
        # the merge never timed the simulation: no bogus wall_time_s in the
        # trajectory, only the (clearly labelled) fold time
        assert "wall_time_s" not in entry
        assert "merge_wall_time_s" in entry

    def test_sharded_rejects_event_engine(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--engine", "event")) == 2
        assert "batched engine" in capsys.readouterr().err


class TestSweepPartialMerge:
    def _args(self, tmp_path, *extra):
        return [
            "sweep",
            "-D", "6",
            "--n-min", "62",
            "--n-max", "66",
            "--out-dir", str(tmp_path / "chunks"),
            "--chunk-size", "8",
            *extra,
        ]

    def test_partial_merge_reports_progress(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--shard", "0/2")) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge", "--partial")) == 0
        out = capsys.readouterr().out
        assert "PARTIAL merge" in out
        assert "chunks complete" in out
        # the strict merge of the same store still refuses
        assert main(self._args(tmp_path, "--merge")) == 1

    def test_partial_without_merge_is_rejected(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "--partial")) == 2
        assert "--merge" in capsys.readouterr().err

    def test_partial_merge_of_complete_store_matches_strict(self, capsys, tmp_path):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--merge")) == 0
        strict = capsys.readouterr().out
        assert main(self._args(tmp_path, "--merge", "--partial")) == 0
        partial = capsys.readouterr().out
        strict_rows = [l for l in strict.splitlines() if l and l[0].isdigit()]
        partial_rows = [l for l in partial.splitlines() if l and l[0].isdigit()]
        assert strict_rows == partial_rows
