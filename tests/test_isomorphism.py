"""Unit tests for the generic digraph isomorphism machinery."""

import numpy as np
import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generators import circuit, de_bruijn, imase_itoh, kautz
from repro.graphs.isomorphism import (
    are_isomorphic,
    find_isomorphism,
    invariant_fingerprint,
    is_isomorphism,
    refinement_colors,
)
from repro.graphs.nx_interop import networkx_is_isomorphic
from repro.graphs.operations import relabel


class TestIsIsomorphism:
    def test_identity_mapping(self):
        g = de_bruijn(2, 3)
        assert is_isomorphism(g, g, list(range(8)))

    def test_relabelled_mapping(self):
        g = de_bruijn(2, 3)
        rng = np.random.default_rng(0)
        mapping = rng.permutation(8)
        h = relabel(g, mapping)
        assert is_isomorphism(g, h, mapping)
        # a wrong mapping is rejected
        wrong = mapping.copy()
        wrong[[0, 1]] = wrong[[1, 0]]
        if not np.array_equal(wrong, mapping):
            assert not is_isomorphism(g, h, wrong) or g.same_arcs(relabel(g, wrong))

    def test_rejects_non_permutation(self):
        g = circuit(4)
        assert not is_isomorphism(g, g, [0, 0, 1, 2])
        assert not is_isomorphism(g, g, [0, 1, 2])
        assert not is_isomorphism(g, circuit(5), [0, 1, 2, 3])


class TestRefinement:
    def test_colors_constant_on_vertex_transitive(self):
        colors = refinement_colors(de_bruijn(2, 3))
        # B(2,3) is not vertex transitive under WL because loops single out
        # 000 and 111; but all non-loop vertices share colours with someone.
        assert len(colors) == 8

    def test_fingerprint_isomorphism_invariant(self):
        g = de_bruijn(2, 4)
        mapping = np.random.default_rng(3).permutation(16)
        h = relabel(g, mapping)
        assert invariant_fingerprint(g) == invariant_fingerprint(h)

    def test_fingerprint_distinguishes(self):
        assert invariant_fingerprint(de_bruijn(2, 3)) != invariant_fingerprint(
            kautz(2, 3)
        )
        assert invariant_fingerprint(circuit(4)) != invariant_fingerprint(circuit(5))


class TestFindIsomorphism:
    def test_finds_known_isomorphism(self):
        # B(2,3) and II(2,8) are isomorphic (Proposition 3.3).
        g = de_bruijn(2, 3)
        h = imase_itoh(2, 8)
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        assert is_isomorphism(g, h, mapping)

    def test_finds_for_random_relabelling(self):
        g = kautz(2, 3)
        rng = np.random.default_rng(11)
        h = relabel(g, rng.permutation(g.num_vertices))
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        assert is_isomorphism(g, h, mapping)

    def test_rejects_non_isomorphic_same_size(self):
        # B(2,3) and the 8-cycle are both 8 vertices but not isomorphic.
        g8 = Digraph(8)
        for i in range(8):
            g8.add_arc(i, (i + 1) % 8)
            g8.add_arc(i, (i + 2) % 8)
        assert not are_isomorphic(de_bruijn(2, 3), g8)

    def test_rejects_different_sizes(self):
        assert find_isomorphism(circuit(3), circuit(4)) is None
        assert find_isomorphism(de_bruijn(2, 3), kautz(2, 3)) is None

    def test_loops_and_multiplicities_respected(self):
        g = Digraph(2, arcs=[(0, 0), (0, 1), (1, 0), (1, 0)])
        h = Digraph(2, arcs=[(1, 1), (1, 0), (0, 1), (0, 1)])
        mapping = find_isomorphism(g, h)
        assert mapping == [1, 0]
        h_bad = Digraph(2, arcs=[(1, 1), (1, 0), (0, 1), (1, 0)])
        assert find_isomorphism(g, h_bad) is None

    def test_empty_graphs(self):
        assert find_isomorphism(Digraph(0), Digraph(0)) == []

    def test_max_nodes_budget(self):
        g = de_bruijn(2, 4)
        h = relabel(g, np.random.default_rng(5).permutation(16))
        with pytest.raises(RuntimeError):
            find_isomorphism(g, h, max_nodes=1)

    def test_agrees_with_networkx(self):
        # Cross-validate on a batch of small digraph pairs.
        pairs = [
            (de_bruijn(2, 3), imase_itoh(2, 8)),
            (de_bruijn(2, 3), kautz(2, 3)),
            (circuit(6), circuit(6)),
            (circuit(6), de_bruijn(2, 3)),
            (kautz(2, 2), imase_itoh(2, 6)),
        ]
        for g, h in pairs:
            assert are_isomorphic(g, h) == networkx_is_isomorphic(g, h)
