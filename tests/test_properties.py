"""Unit tests for metric digraph properties (diameter, girth, etc.)."""

import numpy as np
import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generators import circuit, de_bruijn, imase_itoh, kautz
from repro.graphs.properties import (
    average_distance,
    degree_summary,
    diameter,
    distance_matrix,
    eccentricities,
    girth,
    radius,
)


class TestDistanceMatrix:
    def test_scipy_and_python_agree(self):
        # The optimised path must agree with the reference implementation.
        for graph in (de_bruijn(2, 4), kautz(2, 3), circuit(6)):
            fast = distance_matrix(graph, method="scipy")
            slow = distance_matrix(graph, method="python")
            assert np.array_equal(fast, slow)

    def test_unreachable_marked_minus_one(self):
        g = Digraph(3, arcs=[(0, 1)])
        dist = distance_matrix(g)
        assert dist[0, 2] == -1
        assert dist[1, 0] == -1
        assert dist[0, 1] == 1

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            distance_matrix(circuit(3), method="magic")

    def test_empty_graph(self):
        assert distance_matrix(Digraph(0)).shape == (0, 0)

    def test_parallel_arcs_do_not_change_distances(self):
        g = Digraph(3, arcs=[(0, 1), (0, 1), (1, 2)])
        dist = distance_matrix(g)
        assert dist[0, 2] == 2


class TestDiameter:
    def test_debruijn_diameter_is_D(self):
        # B(d, D) has diameter exactly D.
        for d, D in ((2, 3), (2, 5), (3, 3), (4, 2)):
            assert diameter(de_bruijn(d, D)) == D

    def test_kautz_diameter_is_D(self):
        for d, D in ((2, 3), (2, 4), (3, 2)):
            assert diameter(kautz(d, D)) == D

    def test_imase_itoh_diameter_at_powers(self):
        # II(d, d^D) is isomorphic to B(d, D) so its diameter is D.
        assert diameter(imase_itoh(2, 16)) == 4
        assert diameter(imase_itoh(3, 27)) == 3

    def test_circuit_diameter(self):
        assert diameter(circuit(7)) == 6
        assert diameter(circuit(1)) == 0

    def test_disconnected_diameter(self):
        g = Digraph(3, arcs=[(0, 1)])
        assert diameter(g) == -1

    def test_radius_le_diameter(self):
        for graph in (de_bruijn(2, 4), kautz(2, 3)):
            assert 0 < radius(graph) <= diameter(graph)

    def test_eccentricities_vertex_transitive_families(self):
        # Every de Bruijn vertex has out-eccentricity exactly D.
        ecc = eccentricities(de_bruijn(2, 4))
        assert np.all(ecc == 4)


class TestOtherMetrics:
    def test_average_distance_circuit(self):
        # On C_n the average over ordered pairs is n/2.
        assert average_distance(circuit(6)) == pytest.approx(3.0)

    def test_average_distance_requires_connected(self):
        with pytest.raises(ValueError):
            average_distance(Digraph(3, arcs=[(0, 1)]))

    def test_average_distance_below_diameter(self):
        graph = de_bruijn(2, 5)
        assert average_distance(graph) < diameter(graph)

    def test_girth_with_loops(self):
        # de Bruijn digraphs contain d loops, so girth 1.
        assert girth(de_bruijn(2, 3)) == 1

    def test_girth_kautz(self):
        # Kautz digraphs have no loops; shortest cycles have length 2
        # (words ababab... alternate).
        assert girth(kautz(2, 3)) == 2

    def test_girth_circuit(self):
        assert girth(circuit(5)) == 5
        assert girth(circuit(1)) == 1

    def test_girth_acyclic(self):
        assert girth(Digraph(3, arcs=[(0, 1), (1, 2)])) == -1

    def test_girth_max_length_cutoff(self):
        assert girth(circuit(5), max_length=3) == -1
        assert girth(circuit(5), max_length=4) == -1
        assert girth(circuit(5), max_length=5) == 5

    def test_girth_truncation_prunes_the_bfs(self, monkeypatch):
        # Regression: max_length used to be applied only as a post-filter,
        # with every BFS run to completion.  The BFS must now stop expanding
        # at the cutoff depth.
        import repro.graphs.properties as properties

        observed = []
        original = properties._distance_between

        def spy(graph, source, target, cutoff=None):
            observed.append(cutoff)
            return original(graph, source, target, cutoff=cutoff)

        monkeypatch.setattr(properties, "_distance_between", spy)
        girth(circuit(6), max_length=2)
        assert observed and all(c == 1 for c in observed)

    def test_girth_two_cycle_early_exit(self):
        # A 2-cycle plus a long tail: the answer is 2 regardless of the rest.
        g = Digraph(6, arcs=[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 5), (5, 1)])
        assert girth(g) == 2

    def test_girth_best_so_far_tightens_cutoff(self):
        # Two disjoint cycles of different lengths: the shorter must win.
        arcs = [(0, 1), (1, 2), (2, 0)] + [(3, 4), (4, 5), (5, 6), (6, 3)]
        assert girth(Digraph(7, arcs=arcs)) == 3

    def test_degree_summary(self):
        summary = degree_summary(de_bruijn(2, 3))
        assert summary["num_vertices"] == 8
        assert summary["num_arcs"] == 16
        assert summary["is_regular"] is True
        assert summary["num_loops"] == 2
        assert summary["out_degree_min"] == summary["out_degree_max"] == 2
