"""Tests for the constructive isomorphisms of Propositions 3.2, 3.3 and 3.9."""

import numpy as np
import pytest

from repro.core.alphabet_digraph import (
    AlphabetDigraphSpec,
    alphabet_digraph,
    b_sigma,
    debruijn_spec,
)
from repro.core.isomorphisms import (
    compose_mappings,
    count_alternative_definitions,
    debruijn_to_alphabet_isomorphism,
    debruijn_to_imase_itoh_isomorphism,
    enumerate_alternative_definitions,
    g_permutation,
    invert_mapping,
    prop_3_2_inverse,
    prop_3_2_isomorphism,
    prop_3_9_isomorphism,
)
from repro.graphs.generators import de_bruijn, imase_itoh
from repro.graphs.isomorphism import is_isomorphism
from repro.permutations import (
    Permutation,
    all_permutations,
    complement,
    identity,
    random_cyclic_permutation,
    random_permutation,
    rotation,
)


class TestProposition32:
    def test_w_is_isomorphism_binary(self):
        # W : B_sigma(d, D) -> B(d, D)
        for sigma in all_permutations(2):
            for D in (2, 3, 4):
                mapping = prop_3_2_isomorphism(2, D, sigma)
                assert is_isomorphism(b_sigma(2, D, sigma), de_bruijn(2, D), mapping)

    def test_w_is_isomorphism_larger_alphabets(self):
        rng = np.random.default_rng(0)
        for d, D in ((3, 3), (4, 2), (5, 2)):
            sigma = random_permutation(d, rng)
            mapping = prop_3_2_isomorphism(d, D, sigma)
            assert is_isomorphism(b_sigma(d, D, sigma), de_bruijn(d, D), mapping)

    def test_w_formula_positions(self):
        # W applies sigma^{D-1-i} at position i.
        sigma = Permutation([1, 2, 0])
        d, D = 3, 3
        mapping = prop_3_2_isomorphism(d, D, sigma)
        # word (2, 1, 0) -> sigma^0(2) sigma^1(1) sigma^2(0)
        from repro.words import int_to_word, word_to_int

        u = word_to_int((2, 1, 0), 3)
        # sigma^0 is the identity, so the leftmost letter is unchanged.
        expected = (2, sigma(1), (sigma * sigma)(0))
        assert int_to_word(int(mapping[u]), d, D) == expected

    def test_w_identity_sigma_is_identity_map(self):
        mapping = prop_3_2_isomorphism(2, 5, identity(2))
        assert np.array_equal(mapping, np.arange(32))

    def test_inverse(self):
        sigma = Permutation([2, 0, 1])
        forward = prop_3_2_isomorphism(3, 3, sigma)
        backward = prop_3_2_inverse(3, 3, sigma)
        assert np.array_equal(forward[backward], np.arange(27))

    def test_validation(self):
        with pytest.raises(ValueError):
            prop_3_2_isomorphism(2, 3, identity(3))


class TestProposition33:
    def test_debruijn_imase_itoh_isomorphism(self):
        for d, D in ((2, 3), (2, 4), (3, 3), (4, 2)):
            mapping = debruijn_to_imase_itoh_isomorphism(d, D)
            assert is_isomorphism(de_bruijn(d, D), imase_itoh(d, d**D), mapping)

    def test_corollary_3_4_three_way(self):
        # B(d, D), RRK(d, d^D) and II(d, d^D) are pairwise isomorphic.
        from repro.graphs.generators import reddy_raghavan_kuhl

        d, D = 2, 4
        B = de_bruijn(d, D)
        RRK = reddy_raghavan_kuhl(d, d**D)
        II = imase_itoh(d, d**D)
        assert B.same_arcs(RRK)  # identical labelled digraphs (Remark 2.6)
        mapping = debruijn_to_imase_itoh_isomorphism(d, D)
        assert is_isomorphism(RRK, II, mapping)


class TestGPermutation:
    def test_figure_4_values(self):
        # Example 3.3.1: g(0)=2, g(1)=5, g(2)=1, g(3)=4, g(4)=0, g(5)=3.
        f = Permutation([3, 4, 5, 2, 0, 1])
        g = g_permutation(f, 2)
        assert g.as_tuple() == (2, 5, 1, 4, 0, 3)

    def test_conjugation_property(self):
        # g^{-1} f g is the rotation i -> i+1 and g^{-1}(j) = 0.
        rng = np.random.default_rng(4)
        for D in (3, 4, 5, 6):
            f = random_cyclic_permutation(D, rng)
            for j in range(D):
                g = g_permutation(f, j)
                conjugated = g.inverse() * f * g
                assert conjugated.as_tuple() == rotation(D).as_tuple()
                assert g.inverse()(j) == 0

    def test_non_cyclic_rejected(self):
        with pytest.raises(ValueError):
            g_permutation(Permutation([2, 1, 0]), 1)
        with pytest.raises(ValueError):
            g_permutation(identity(4), 0)

    def test_position_validation(self):
        with pytest.raises(ValueError):
            g_permutation(rotation(4), 7)


class TestProposition39:
    def test_example_3_3_1_full_isomorphism(self):
        # A(f, Id, 2) with the example's f is isomorphic to B(d, 6).
        f = Permutation([3, 4, 5, 2, 0, 1])
        spec = AlphabetDigraphSpec(d=2, D=6, f=f, sigma=identity(2), j=2)
        mapping = debruijn_to_alphabet_isomorphism(spec)
        assert is_isomorphism(de_bruijn(2, 6), spec.build(), mapping)

    def test_prop_3_9_mapping_from_b_sigma(self):
        # ->g maps B_sigma onto A(f, sigma, j).
        rng = np.random.default_rng(1)
        for d, D in ((2, 4), (3, 3)):
            f = random_cyclic_permutation(D, rng)
            sigma = random_permutation(d, rng)
            j = int(rng.integers(D))
            spec = AlphabetDigraphSpec(d=d, D=D, f=f, sigma=sigma, j=j)
            mapping = prop_3_9_isomorphism(spec)
            assert is_isomorphism(b_sigma(d, D, sigma), spec.build(), mapping)

    def test_full_composition_random_specs(self):
        rng = np.random.default_rng(2)
        for _ in range(6):
            d = int(rng.integers(2, 4))
            D = int(rng.integers(2, 5))
            spec = AlphabetDigraphSpec(
                d=d,
                D=D,
                f=random_cyclic_permutation(D, rng),
                sigma=random_permutation(d, rng),
                j=int(rng.integers(D)),
            )
            mapping = debruijn_to_alphabet_isomorphism(spec)
            assert is_isomorphism(de_bruijn(d, D), spec.build(), mapping)

    def test_rotation_identity_spec_gives_identity_mapping(self):
        spec = debruijn_spec(2, 4)
        mapping = debruijn_to_alphabet_isomorphism(spec)
        assert np.array_equal(mapping, np.arange(16))

    def test_non_cyclic_raises(self):
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        with pytest.raises(ValueError):
            prop_3_9_isomorphism(spec)
        with pytest.raises(ValueError):
            debruijn_to_alphabet_isomorphism(spec)


class TestMappingUtilities:
    def test_compose_and_invert(self):
        rng = np.random.default_rng(9)
        a = rng.permutation(10)
        b = rng.permutation(10)
        composed = compose_mappings(a, b)
        assert np.array_equal(composed, a[b])
        assert np.array_equal(invert_mapping(a)[a], np.arange(10))

    def test_compose_length_mismatch(self):
        with pytest.raises(ValueError):
            compose_mappings(np.arange(3), np.arange(4))


class TestEnumeration:
    def test_count(self):
        assert count_alternative_definitions(2, 3) == 4
        assert count_alternative_definitions(3, 3) == 12

    def test_enumerate_small_case(self):
        specs = list(enumerate_alternative_definitions(2, 3))
        assert len(specs) == 4
        # every spec is genuinely isomorphic to B(2, 3)
        B = de_bruijn(2, 3)
        seen = set()
        for spec in specs:
            assert spec.is_debruijn_isomorphic()
            mapping = debruijn_to_alphabet_isomorphism(spec)
            assert is_isomorphism(B, spec.build(), mapping)
            seen.add((spec.sigma.as_tuple(), spec.f.as_tuple()))
        assert len(seen) == 4  # all distinct (sigma, f) pairs

    def test_enumerate_validates_position(self):
        with pytest.raises(ValueError):
            list(enumerate_alternative_definitions(2, 3, j=5))
