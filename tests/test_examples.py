"""Smoke-test the example scripts (they are part of the public deliverable).

Each fast example is executed in-process by importing its module and calling
``main()`` with stdout captured; the heavyweight Table 1 example is run
restricted to the diameter-8 block.  Assertions check the headline outputs,
so a regression in the library surfaces here even if the unit tests miss it.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    # Register the module and make examples/ importable so examples that
    # spawn worker processes (fleet_search) stay picklable-by-reference
    # under the 'spawn' multiprocessing start method, not only under fork.
    if str(EXAMPLES_DIR) not in sys.path:
        sys.path.insert(0, str(EXAMPLES_DIR))
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "OTIS(16, 32)" in out
        assert "Layout verified : True" in out
        assert "Lens saving" in out

    def test_otis_layout_design(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["otis_layout_design.py", "6"])
        load_example("otis_layout_design").main()
        out = capsys.readouterr().out
        assert "B(2, 6)" in out
        assert "optimal split" in out
        assert "lens scaling" in out

    def test_isomorphism_gallery(self, capsys):
        load_example("isomorphism_gallery").main()
        out = capsys.readouterr().out
        assert "arc-for-arc: True" in out
        assert "(paper: 2, 5, 1, 4, 0, 3)" in out
        assert "isomorphic to B(2, 6): True" in out
        assert "10080 definitions" in out

    def test_network_simulation(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["network_simulation.py", "5"])
        load_example("network_simulation").main()
        out = capsys.readouterr().out
        assert "B(2,5)" in out
        assert "ring(32)" in out
        assert "verified=True" in out

    def test_fleet_search(self, capsys):
        load_example("fleet_search").main()
        out = capsys.readouterr().out
        assert "no chunk ran twice: True" in out
        assert "expired lease reclaimed: True" in out
        assert "fleet merge identical to direct search: True" in out

    def test_failover_study(self, capsys):
        load_example("failover_study").main()
        out = capsys.readouterr().out
        assert "H(32,64,2): n=1024" in out
        assert "drop policy loses messages: True" in out
        assert "rerouted delivery: True" in out
        assert "degraded-mode latency penalty: +" in out

    def test_degree_diameter_search_diameter_8(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["degree_diameter_search.py", "8"])
        load_example("degree_diameter_search").main()
        out = capsys.readouterr().out
        assert "B(2,8)" in out
        assert "K(2,8)" in out
        assert "all printed rows reproduced: True" in out
        # The resumable-sweep demonstration: interrupt, resume from the
        # chunk store (warm verdict cache), merge identically.
        assert "merge before resume correctly fails" in out
        assert "resume: ran 1 chunk(s), skipped" in out
        assert "misses 0" in out
        assert "merged rows identical to direct search: True" in out
