"""The scenario layers: validation, composition, and cross-engine parity.

The scenario stack (:mod:`repro.simulation.scenarios`) extends the
bit-identical engine contract of ``test_simulation_parity`` to degraded
networks: finite link buffers (drop and retry policies), deterministic
fault plans, arc-disjoint rerouting and the non-uniform arrival processes.
Every composition must produce identical :class:`NetworkStats` — including
the drop/retransmit/reroute counters — and identical per-message records
(hops, arrival time, ``drop_reason``) from both engines, and the degenerate
configurations (zero-capacity buffers, a blackout at t=0) must *terminate*
with the failure surfaced in the stats, never hang.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import de_bruijn
from repro.otis.h_digraph import h_digraph
from repro.simulation.network import (
    BatchedNetworkSimulator,
    BufferedLinkModel,
    LinkModel,
    NetworkSimulator,
)
from repro.simulation.scenarios import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    FaultEvent,
    FaultPlan,
    HotspotArrivals,
    PermutationArrivals,
    Scenario,
    UniformArrivals,
    make_arrivals,
    run_scenario_sweep,
    validate_traffic,
)

GRAPH = h_digraph(2, 8, 4)  # 4 nodes, 16 links, parallel arcs
BIG = de_bruijn(2, 4)  # 16 nodes, no parallel arcs


def assert_scenario_parity(graph, scenario, seed, **run_kwargs):
    """Both engines agree on stats and every per-message record."""
    traffic = scenario.traffic(graph.num_vertices, rng=seed)
    ref_stats, ref_messages = NetworkSimulator(graph, scenario=scenario).run(
        traffic, **run_kwargs
    )
    bat_stats, bat_messages = BatchedNetworkSimulator(
        graph, scenario=scenario
    ).run(traffic, **run_kwargs)
    assert bat_stats == ref_stats
    assert len(bat_messages) == len(ref_messages)
    for ref, bat in zip(ref_messages, bat_messages):
        assert bat.ident == ref.ident
        assert bat.source == ref.source
        assert bat.destination == ref.destination
        assert bat.creation_time == ref.creation_time
        assert bat.hops == ref.hops
        assert bat.drop_reason == ref.drop_reason
        if math.isnan(ref.arrival_time):
            assert math.isnan(bat.arrival_time)
        else:
            assert bat.arrival_time == ref.arrival_time  # exact, not approx
    return ref_stats


# ---------------------------------------------------------------------------
# Fail-fast validation
# ---------------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize("bad", [float("nan"), -1.0, float("inf"), -1e-9])
    def test_validate_traffic_rejects_bad_release_times(self, bad):
        with pytest.raises(ValueError, match="release time"):
            validate_traffic([(0, 1, bad)])

    def test_validate_traffic_rejects_out_of_range_endpoints(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_traffic([(0, 9, 0.0)], num_nodes=4)

    def test_validate_traffic_rejects_non_triples(self):
        with pytest.raises(ValueError, match="triple"):
            validate_traffic([(0, 1)])

    @pytest.mark.parametrize("engine", [NetworkSimulator, BatchedNetworkSimulator])
    @pytest.mark.parametrize("bad", [float("nan"), -1.0, float("inf")])
    def test_engines_reject_bad_release_times(self, engine, bad):
        with pytest.raises(ValueError, match="finite and non-negative"):
            engine(GRAPH).run([(0, 1, bad)])

    @pytest.mark.parametrize(

        "kwargs",
        [
            {"latency": float("nan")},
            {"latency": -1.0},
            {"transmission_time": float("inf")},
            {"transmission_time": -0.5},
        ],
    )
    def test_link_model_rejects_bad_timings(self, kwargs):
        # transmission_time IS the per-message size in time units, so this
        # is the negative/NaN message-size rejection of the satellite task.
        with pytest.raises(ValueError, match="finite and non-negative"):
            LinkModel(**kwargs)

    def test_buffered_link_model_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BufferedLinkModel(capacity=-1)
        with pytest.raises(ValueError, match="on_full"):
            BufferedLinkModel(capacity=1, on_full="explode")
        with pytest.raises(ValueError, match="retry_delay"):
            BufferedLinkModel(capacity=1, on_full="retry", retry_delay=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            BufferedLinkModel(capacity=1, on_full="retry", max_retries=-1)

    def test_fault_event_validation(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-1.0, "link_down", 0)
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(0.0, "link_sideways", 0)
        with pytest.raises(ValueError, match="target"):
            FaultEvent(0.0, "link_down", -2)

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="reroute"):
            Scenario(reroute="psychic")
        with pytest.raises(ValueError, match="max_hops"):
            Scenario(max_hops=0)
        with pytest.raises(ValueError, match="arrivals"):
            Scenario(arrivals="uniform")

    def test_engine_rejects_link_and_scenario_together(self):
        for engine in (NetworkSimulator, BatchedNetworkSimulator):
            with pytest.raises(ValueError, match="not both"):
                engine(GRAPH, link=LinkModel(), scenario=Scenario())

    def test_fault_target_range_checked_against_topology(self):
        scenario = Scenario(faults=FaultPlan((FaultEvent(0.0, "link_down", 99),)))
        with pytest.raises(ValueError, match="out of range"):
            NetworkSimulator(GRAPH, scenario=scenario).run([(0, 1, 0.0)])

    @pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
    def test_arrival_kinds_constructible_and_round_trip(self, kind):
        arrivals = (
            make_arrivals(kind)
            if kind == "permutation"
            else make_arrivals(kind, num_messages=10)
        )
        payload = arrivals.to_json()
        assert payload["kind"] == kind
        rebuilt = make_arrivals(kind, **{k: v for k, v in payload.items() if k != "kind"})
        assert rebuilt == arrivals

    def test_make_arrivals_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("tidal")


# ---------------------------------------------------------------------------
# Determinism and identity
# ---------------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
    def test_traffic_is_a_pure_function_of_the_seed(self, kind):
        arrivals = (
            make_arrivals(kind)
            if kind == "permutation"
            else make_arrivals(kind, num_messages=40)
        )
        a = arrivals.traffic(16, rng=7)
        b = arrivals.traffic(16, rng=7)
        assert a == b
        assert validate_traffic(a, 16) == a

    def test_uniform_arrivals_match_make_workload_stream(self):
        # The scenario layer must consume the identical RNG stream as
        # make_workload, so existing traffic digests do not change.
        from repro.simulation.workloads import make_workload

        arrivals = UniformArrivals(num_messages=50, rate=1.5)
        assert arrivals.traffic(16, rng=3) == make_workload(
            "uniform", 16, 50, rng=3, rate=1.5
        )

    def test_digest_stable_and_sensitive(self):
        base = Scenario(arrivals=UniformArrivals(40, rate=1.0))
        assert base.digest() == Scenario(arrivals=UniformArrivals(40, rate=1.0)).digest()
        variants = [
            Scenario(arrivals=UniformArrivals(41, rate=1.0)),
            Scenario(
                arrivals=UniformArrivals(40, rate=1.0),
                link=BufferedLinkModel(capacity=4),
            ),
            Scenario(
                arrivals=UniformArrivals(40, rate=1.0),
                faults=FaultPlan.node_outage(0, at=1.0),
            ),
            Scenario(arrivals=UniformArrivals(40, rate=1.0), reroute="arc-disjoint"),
            Scenario(arrivals=UniformArrivals(40, rate=1.0), max_hops=5),
        ]
        digests = {scenario.digest() for scenario in variants}
        assert base.digest() not in digests
        assert len(digests) == len(variants)

    def test_fault_plan_sorted_and_boolish(self):
        plan = FaultPlan(
            (FaultEvent(5.0, "link_down", 1), FaultEvent(2.0, "link_up", 0))
        )
        assert [event.time for event in plan.events] == [2.0, 5.0]
        assert plan and not FaultPlan.none()

    def test_needs_event_exact(self):
        assert not Scenario().needs_event_exact()
        assert Scenario(link=BufferedLinkModel(capacity=3)).needs_event_exact()
        assert Scenario(faults=FaultPlan.node_outage(0, at=1.0)).needs_event_exact()
        assert Scenario(reroute="arc-disjoint").needs_event_exact()
        assert Scenario(max_hops=4).needs_event_exact()


# ---------------------------------------------------------------------------
# Default scenario == plain engines
# ---------------------------------------------------------------------------
def test_default_scenario_equals_plain_link_run():
    scenario = Scenario(arrivals=UniformArrivals(60, rate=1.3))
    traffic = scenario.traffic(GRAPH.num_vertices, rng=0)
    plain_stats, plain_messages = NetworkSimulator(GRAPH, link=LinkModel()).run(
        traffic
    )
    for engine in (NetworkSimulator, BatchedNetworkSimulator):
        stats, messages = engine(GRAPH, scenario=scenario).run(traffic)
        assert stats == plain_stats
        assert [m.arrival_time for m in messages] == [
            m.arrival_time for m in plain_messages
        ]


# ---------------------------------------------------------------------------
# Parity across the scenario-layer combinations
# ---------------------------------------------------------------------------
SCENARIOS = {
    "buffer-drop": Scenario(
        arrivals=HotspotArrivals(80, hotspot=3, hotspot_fraction=0.8, rate=5.0),
        link=BufferedLinkModel(capacity=1, on_full="drop"),
    ),
    "buffer-retry": Scenario(
        arrivals=HotspotArrivals(80, hotspot=3, hotspot_fraction=0.8, rate=5.0),
        link=BufferedLinkModel(
            capacity=1, on_full="retry", retry_delay=0.5, max_retries=4
        ),
    ),
    "fault-drop": Scenario(
        arrivals=UniformArrivals(80, rate=2.0),
        faults=FaultPlan.random_link_failures(GRAPH, 6, at=3.0, seed=7),
    ),
    "fault-reroute": Scenario(
        arrivals=UniformArrivals(80, rate=2.0),
        faults=FaultPlan.random_link_failures(GRAPH, 6, at=3.0, seed=7),
        reroute="arc-disjoint",
    ),
    "fault-heal": Scenario(
        arrivals=UniformArrivals(60, rate=1.0),
        faults=FaultPlan.random_link_failures(
            GRAPH, 8, at=2.0, heal_after=6.0, seed=1
        ),
        reroute="arc-disjoint",
    ),
    "bursty-kitchen-sink": Scenario(
        arrivals=BurstyArrivals(60, burst_size=6, burst_rate=6.0, gap=2.0),
        link=BufferedLinkModel(capacity=2, on_full="retry"),
        faults=FaultPlan.random_link_failures(GRAPH, 4, at=1.0, seed=2),
        reroute="arc-disjoint",
    ),
    "diurnal-ttl": Scenario(
        arrivals=DiurnalArrivals(60, peak_rate=3.0, trough_rate=0.3, period=10.0),
        max_hops=3,
    ),
    "permutation-buffers": Scenario(
        arrivals=PermutationArrivals(rate=2.0),
        link=BufferedLinkModel(capacity=1, on_full="drop"),
    ),
}


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_parity(name, seed):
    assert_scenario_parity(GRAPH, SCENARIOS[name], seed)


@pytest.mark.parametrize("seed", range(2))
def test_scenario_parity_on_simple_graph(seed):
    scenario = Scenario(
        arrivals=UniformArrivals(60, rate=1.5),
        faults=FaultPlan(
            tuple(
                list(
                    FaultPlan.random_link_failures(
                        BIG, 5, at=2.0, heal_after=5.0, seed=1
                    ).events
                )
                + list(FaultPlan.node_outage(5, at=1.0, heal_at=8.0).events)
            )
        ),
        reroute="arc-disjoint",
    )
    stats = assert_scenario_parity(BIG, scenario, seed)
    assert stats.delivered + stats.undelivered == 60


@pytest.mark.parametrize(
    "run_kwargs",
    [{"max_events": 0}, {"max_events": 7}, {"max_events": 23}, {"until": 1.5}],
    ids=["ev0", "ev7", "ev23", "until"],
)
def test_scenario_truncation_parity(run_kwargs):
    assert_scenario_parity(GRAPH, SCENARIOS["bursty-kitchen-sink"], 5, **run_kwargs)


def test_fault_at_t0_parity_and_counters():
    # The fault fires before any same-instant injection (lower sequence
    # number), so messages whose primary hop died at t=0 never move.
    scenario = Scenario(
        arrivals=UniformArrivals(40, rate=1.0),
        faults=FaultPlan.all_links_down(GRAPH, at=0.0),
    )
    stats = assert_scenario_parity(GRAPH, scenario, 3)
    assert stats.delivered == 0
    assert stats.dropped_fault == 40
    assert stats.undelivered == 40


def test_zero_capacity_buffers_terminate():
    scenario = Scenario(
        arrivals=UniformArrivals(40, rate=1.0),
        link=BufferedLinkModel(
            capacity=0, on_full="retry", retry_delay=1.0, max_retries=2
        ),
    )
    stats = assert_scenario_parity(GRAPH, scenario, 3)
    assert stats.delivered == 0
    assert stats.dropped_buffer == 40
    assert stats.retransmits == 40 * 2  # every message exhausts its retries


def test_reroute_recovers_deliveries():
    faults = FaultPlan.random_link_failures(GRAPH, 6, at=3.0, seed=7)
    base = Scenario(arrivals=UniformArrivals(80, rate=2.0), faults=faults)
    rerouted = Scenario(
        arrivals=UniformArrivals(80, rate=2.0),
        faults=faults,
        reroute="arc-disjoint",
    )
    dropped = assert_scenario_parity(GRAPH, base, 2)
    recovered = assert_scenario_parity(GRAPH, rerouted, 2)
    assert dropped.dropped_fault > 0
    assert recovered.delivered > dropped.delivered
    assert recovered.rerouted_hops > 0


def test_drop_reasons_on_messages():
    scenario = Scenario(
        arrivals=UniformArrivals(40, rate=1.0),
        faults=FaultPlan.all_links_down(GRAPH, at=0.0),
    )
    traffic = scenario.traffic(GRAPH.num_vertices, rng=0)
    for engine in (NetworkSimulator, BatchedNetworkSimulator):
        _, messages = engine(GRAPH, scenario=scenario).run(traffic)
        assert all(message.drop_reason == "fault" for message in messages)


def test_healthy_unreachable_is_not_a_fault_drop():
    # A destination unreachable in the *healthy* topology is a plain
    # undelivered message (drop_reason None), exactly as in the base model —
    # the default-scenario ≡ plain-engine equivalence depends on this.
    from repro.graphs.digraph import Digraph

    graph = Digraph(3, arcs=[(0, 1), (1, 0), (1, 2)])
    scenario = Scenario(max_hops=10)  # degraded path, healthy topology
    traffic = [(2, 0, 0.0), (0, 2, 0.0)]
    for engine in (NetworkSimulator, BatchedNetworkSimulator):
        stats, messages = engine(graph, scenario=scenario).run(traffic)
        assert stats.undelivered == 1
        assert stats.dropped_fault == 0
        assert messages[0].drop_reason is None


def test_run_many_scenario_matches_solo():
    scenario = SCENARIOS["bursty-kitchen-sink"]
    simulator = BatchedNetworkSimulator(GRAPH, scenario=scenario)
    traffics = [
        scenario.traffic(GRAPH.num_vertices, rng=seed) for seed in range(4)
    ]
    stacked = simulator.run_many(traffics)
    for traffic, (stacked_stats, stacked_messages) in zip(traffics, stacked):
        solo_stats, solo_messages = simulator.run(traffic)
        assert stacked_stats == solo_stats
        assert [
            (m.ident, m.hops, m.arrival_time, m.drop_reason)
            for m in stacked_messages
        ] == [
            (m.ident, m.hops, m.arrival_time, m.drop_reason)
            for m in solo_messages
        ]


# ---------------------------------------------------------------------------
# Hypothesis: parity over random scenario compositions
# ---------------------------------------------------------------------------
def _scenario_strategy():
    arrivals = st.one_of(
        st.builds(
            UniformArrivals,
            num_messages=st.integers(5, 30),
            rate=st.one_of(st.none(), st.floats(0.2, 5.0)),
        ),
        st.builds(
            HotspotArrivals,
            num_messages=st.integers(5, 30),
            hotspot=st.integers(0, 3),
            hotspot_fraction=st.floats(0.0, 1.0),
            rate=st.one_of(st.none(), st.floats(0.2, 5.0)),
        ),
        st.builds(
            BurstyArrivals,
            num_messages=st.integers(5, 30),
            burst_size=st.integers(1, 8),
            burst_rate=st.floats(0.5, 8.0),
            gap=st.floats(0.0, 5.0),
        ),
    )
    link = st.one_of(
        st.just(LinkModel()),
        st.builds(
            BufferedLinkModel,
            capacity=st.integers(0, 3),
            on_full=st.sampled_from(["drop", "retry"]),
            retry_delay=st.floats(0.25, 2.0),
            max_retries=st.integers(0, 4),
        ),
    )
    fault_event = st.builds(
        FaultEvent,
        time=st.floats(0.0, 10.0),
        kind=st.sampled_from(["link_down", "link_up", "node_down", "node_up"]),
        target=st.integers(0, 3),  # valid for both links and nodes of GRAPH
    )
    faults = st.builds(FaultPlan, st.tuples()) | st.builds(
        FaultPlan, st.lists(fault_event, max_size=6).map(tuple)
    )
    return st.builds(
        Scenario,
        arrivals=arrivals,
        link=link,
        faults=faults,
        reroute=st.sampled_from(["none", "arc-disjoint"]),
        max_hops=st.one_of(st.none(), st.integers(1, 12)),
    )


@settings(max_examples=40, deadline=None)
@given(scenario=_scenario_strategy(), seed=st.integers(0, 2**16))
def test_hypothesis_scenario_parity(scenario, seed):
    assert_scenario_parity(GRAPH, scenario, seed)


# ---------------------------------------------------------------------------
# Sweep driver
# ---------------------------------------------------------------------------
def test_run_scenario_sweep_engines_agree_and_mark_pareto():
    scenario = Scenario(
        arrivals=UniformArrivals(50),
        link=BufferedLinkModel(capacity=4, on_full="drop"),
    )
    batched = run_scenario_sweep(
        BIG, scenario, rates=(0.5, 1.5, 4.0), seeds=range(2), engine="batched"
    )
    reference = run_scenario_sweep(
        BIG, scenario, rates=(0.5, 1.5, 4.0), seeds=range(2), engine="event"
    )
    assert [point.stats for point in batched.points] == [
        point.stats for point in reference.points
    ]
    payload = batched.to_json()
    assert payload["scenario_digest"] == scenario.digest()
    assert len(payload["curves"]) == 3
    assert any(row["pareto"] for row in payload["curves"])
    # Pareto flags: no flagged row may be dominated by any other row.
    for row in payload["curves"]:
        if row["pareto"]:
            assert not any(
                other["throughput"] >= row["throughput"]
                and other["mean_latency"] <= row["mean_latency"]
                and other is not row
                and (
                    other["throughput"] > row["throughput"]
                    or other["mean_latency"] < row["mean_latency"]
                )
                for other in payload["curves"]
            )


def test_workload_layer_integration():
    # make_workload delegates bursty/diurnal to the arrival-process layer.
    from repro.simulation.workloads import SWEEP_WORKLOADS, make_workload

    assert "bursty" in SWEEP_WORKLOADS and "diurnal" in SWEEP_WORKLOADS
    for name in ("bursty", "diurnal"):
        traffic = make_workload(name, 16, 30, rng=5)
        assert len(traffic) == 30
        times = [time for _, _, time in traffic]
        assert times == sorted(times)
        assert make_workload(name, 16, 30, rng=5) == traffic
        assert make_workload(name, 16, 30, rng=5, rate=4.0) != traffic
