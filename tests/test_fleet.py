"""Tests for the lease-based fleet driver (repro.fleet).

The contracts pinned down here are the ones the fleet's safety rests on:

* **mutual exclusion** — two workers (processes!) can never hold one
  chunk's lease at the same time, so no chunk ever runs twice concurrently;
* **crash recovery** — a worker killed with ``SIGKILL`` mid-chunk leaves an
  expired lease that a relaunched fleet reclaims and completes;
* **merge parity** — however chunks were claimed, crashed, reclaimed or
  reordered, the merged result is byte-identical to the serial
  ``degree_diameter_search`` / in-process ``run_many`` output;
* **worker-process routing parity** — the pickled-graph path that fleet and
  sharded ``run_many`` workers rely on (process-qualified routing-table
  cache tokens stripped on pickle, ``LruRowRouter`` rows recomputed in the
  worker) routes bit-identically to the parent process.
"""

import json
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fleet import (
    Lease,
    LeaseManager,
    SimFleetJob,
    SweepFleetJob,
    fleet_status,
    format_status,
    run_fleet,
)
from repro.fleet.leases import Heartbeat
from repro.otis.h_digraph import h_digraph
from repro.otis.search import degree_diameter_search
from repro.otis.sweep import ChunkManifest, ChunkStore, StoreIdentityError
from repro.routing.routers import DenseTableRouter, LruRowRouter, make_router
from repro.simulation.network import BatchedNetworkSimulator, LinkModel
from repro.simulation.sharding import ReplicaChunkManifest, run_many_sharded
from repro.simulation.workloads import make_workload

SRC = str(Path(__file__).resolve().parents[1] / "src")


def sweep_manifest(chunk_size=4):
    return ChunkManifest.build(2, 6, range(60, 71), chunk_size=chunk_size)


def sim_inputs(replicas=4, messages=60, chunk_size=1):
    graph = h_digraph(8, 16, 2)
    link = LinkModel(latency=0.7, transmission_time=0.3)
    traffics = [
        make_workload("uniform", graph.num_vertices, messages, rng=seed)
        for seed in range(replicas)
    ]
    manifest = ReplicaChunkManifest.build(
        graph, traffics, link=link, chunk_size=chunk_size
    )
    return graph, link, traffics, manifest


# ---------------------------------------------------------------------------
# Lease protocol
# ---------------------------------------------------------------------------
class TestLeases:
    def test_acquire_is_exclusive(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=30)
        first = manager.try_acquire("abc123", worker="w1")
        assert isinstance(first, Lease)
        assert manager.try_acquire("abc123", worker="w2") is None
        first.release()
        assert manager.try_acquire("abc123", worker="w2") is not None

    def test_distinct_chunks_are_independent(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=30)
        assert manager.try_acquire("aaa", worker="w1") is not None
        assert manager.try_acquire("bbb", worker="w1") is not None

    def test_expired_lease_is_reclaimed(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=0.5)
        stale = manager.try_acquire("abc123", worker="dead")
        backdated = time.time() - 60
        os.utime(stale.path, (backdated, backdated))
        fresh = manager.try_acquire("abc123", worker="alive")
        assert fresh is not None
        assert fresh.worker == "alive"
        # the dead worker's handle knows it lost ownership
        assert not stale.owned()

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=30)
        held = manager.try_acquire("abc123", worker="w1")
        assert manager.try_acquire("abc123", worker="w2") is None
        assert held.owned()

    def test_stale_reclaim_guard_does_not_wedge_the_chunk(self, tmp_path):
        # A reclaimer that crashed between creating the guard and removing
        # it must not block the chunk forever: the guard expires on the TTL.
        manager = LeaseManager(tmp_path, ttl=0.5)
        stale = manager.try_acquire("abc123", worker="dead")
        backdated = time.time() - 60
        os.utime(stale.path, (backdated, backdated))
        guard = stale.path.with_suffix(".reclaim")
        guard.write_text("{}")
        os.utime(guard, (backdated, backdated))
        # first attempt clears the stale guard, a retry wins the claim
        lease = manager.try_acquire("abc123", worker="alive")
        if lease is None:
            lease = manager.try_acquire("abc123", worker="alive")
        assert lease is not None
        assert not guard.exists()

    def test_refresh_keeps_lease_alive_and_release_drops_it(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=0.4)
        lease = manager.try_acquire("abc123", worker="w1")
        with Heartbeat(lease, interval=0.05):
            time.sleep(0.6)  # > ttl: only the heartbeat keeps it alive
            assert manager.try_acquire("abc123", worker="w2") is None
        time.sleep(0.6)  # heartbeat stopped: now it expires
        assert manager.try_acquire("abc123", worker="w2") is not None

    def test_owned_detects_theft(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=30)
        lease = manager.try_acquire("abc123", worker="w1")
        record = json.loads(lease.path.read_text())
        record["token"] = "somebody-else"
        lease.path.write_text(json.dumps(record))
        assert not lease.owned()
        assert not lease.refresh()
        lease.release()  # must NOT unlink the thief's lease
        assert lease.path.exists()

    def test_active_snapshot(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=0.5)
        manager.try_acquire("young", worker="w1")
        old = manager.try_acquire("old", worker="w2")
        backdated = time.time() - 60
        os.utime(old.path, (backdated, backdated))
        infos = {info.chunk_id: info for info in manager.active()}
        assert set(infos) == {"young", "old"}
        assert not infos["young"].expired
        assert infos["old"].expired
        assert infos["old"].worker == "w2"

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(tmp_path, ttl=0)


# ---------------------------------------------------------------------------
# Two-process lease contention (the mutual-exclusion stress test)
# ---------------------------------------------------------------------------
def _claim_stress_worker(lease_dir, chunk_ids, out_file, barrier):
    manager = LeaseManager(lease_dir, ttl=60)
    barrier.wait()  # maximise contention: both processes start together
    claimed = []
    for chunk_id in chunk_ids:
        lease = manager.try_acquire(chunk_id, worker=f"pid-{os.getpid()}")
        if lease is not None:
            claimed.append(chunk_id)  # hold every claim, never release
    Path(out_file).write_text(json.dumps(claimed))


class TestLeaseContention:
    def test_two_processes_never_claim_the_same_chunk(self, tmp_path):
        chunk_ids = [f"chunk{i:04d}" for i in range(200)]
        barrier = multiprocessing.Barrier(2)
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        procs = [
            multiprocessing.Process(
                target=_claim_stress_worker,
                args=(tmp_path / "leases", chunk_ids, out, barrier),
            )
            for out in outs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        claims = [set(json.loads(out.read_text())) for out in outs]
        assert claims[0].isdisjoint(claims[1])
        assert claims[0] | claims[1] == set(chunk_ids)


# ---------------------------------------------------------------------------
# Fleet driver over both backends
# ---------------------------------------------------------------------------
class TestFleetDriver:
    def test_sweep_fleet_merge_is_byte_identical_to_serial(self, tmp_path):
        manifest = sweep_manifest()
        job = SweepFleetJob(manifest, ChunkStore(tmp_path / "sweep"))
        outcome = run_fleet(job, ttl=10, heartbeat=2)
        assert outcome["complete"]
        assert sorted(outcome["ran"]) == sorted(
            chunk.chunk_id for chunk in manifest.chunks
        )
        assert job.merge().rows == degree_diameter_search(2, 6, 60, 70).rows

    def test_sim_fleet_merge_is_byte_identical_to_in_process(self, tmp_path):
        graph, link, traffics, manifest = sim_inputs()
        job = SimFleetJob(manifest, ChunkStore(tmp_path / "sim"), graph, traffics)
        outcome = run_fleet(job, ttl=10, heartbeat=2)
        assert outcome["complete"]
        expected = [
            stats
            for stats, _ in BatchedNetworkSimulator(graph, link=link).run_many(
                traffics, return_messages=False
            )
        ]
        assert job.merge() == expected

    def test_worker_skips_chunks_leased_by_a_live_peer(self, tmp_path):
        manifest = sweep_manifest()
        store = ChunkStore(tmp_path / "sweep")
        leases = LeaseManager(store.directory / "leases", ttl=30)
        held = manifest.chunks[0]
        assert leases.try_acquire(held.chunk_id, worker="peer") is not None
        job = SweepFleetJob(manifest, store)
        outcome = run_fleet(job, ttl=30, heartbeat=5, wait=False)
        assert held.chunk_id not in outcome["ran"]
        assert not outcome["complete"]
        assert len(outcome["ran"]) == len(manifest.chunks) - 1

    def test_fleet_refuses_mismatched_store(self, tmp_path):
        store = ChunkStore(tmp_path / "sweep")
        run_fleet(SweepFleetJob(sweep_manifest(chunk_size=4), store), ttl=10)
        other = sweep_manifest(chunk_size=5)
        with pytest.raises(StoreIdentityError, match="chunk_size"):
            run_fleet(SweepFleetJob(other, store), ttl=10)

    def test_fleet_resumes_partially_filled_shard_store(self, tmp_path):
        # A fleet can finish what a --shard i/k run started: same manifest,
        # same store, the leases only cover what is left.
        from repro.otis.sweep import merge_sweep, run_sweep

        manifest = sweep_manifest()
        store = ChunkStore(tmp_path / "sweep")
        run_sweep(manifest, store, shard=(0, 2))
        job = SweepFleetJob(manifest, store)
        outcome = run_fleet(job, ttl=10, heartbeat=2)
        assert outcome["complete"]
        assert sorted(outcome["ran"]) == sorted(
            chunk.chunk_id for chunk in manifest.shard(1, 2)
        )
        assert merge_sweep(manifest, store).rows == degree_diameter_search(
            2, 6, 60, 70
        ).rows

    def test_status_snapshot_counts(self, tmp_path):
        manifest = sweep_manifest()
        store = ChunkStore(tmp_path / "sweep")
        job = SweepFleetJob(manifest, store)
        run_fleet(job, ttl=10, heartbeat=2, max_chunks=1)
        leases = LeaseManager(store.directory / "leases", ttl=10)
        leases.try_acquire(
            next(
                chunk.chunk_id
                for chunk in manifest.chunks
                if not store.is_complete(chunk)
            ),
            worker="peer",
        )
        status = fleet_status(job, ttl=10)
        assert status["chunks"] == len(manifest.chunks)
        assert status["complete"] == 1
        assert len(status["running"]) == 1
        assert status["pending"] == len(manifest.chunks) - 2
        assert not status["done"]
        text = format_status(status, summary="probe")
        assert "held by peer" in text
        assert "probe" in text

    def test_store_status_json_schema_round_trips(self, tmp_path):
        # The `repro fleet status --json` contract: the snapshot read from
        # the store alone (no job parameters) serialises to JSON, round-trips
        # exactly, and agrees with the job-based reader.
        from repro.fleet import status_to_json, store_status

        manifest = sweep_manifest()
        store = ChunkStore(tmp_path / "sweep")
        job = SweepFleetJob(manifest, store)
        run_fleet(job, ttl=10, heartbeat=2, max_chunks=1)
        leases = LeaseManager(store.directory / "leases", ttl=10)
        leases.try_acquire(
            next(
                chunk.chunk_id
                for chunk in manifest.chunks
                if not store.is_complete(chunk)
            ),
            worker="peer",
        )
        status = store_status(store.directory, ttl=10)
        reference = fleet_status(job, ttl=10)
        for key in ("chunks", "complete", "pending", "done"):
            assert status[key] == reference[key]
        payload = status_to_json(status)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["chunks"] == len(manifest.chunks)
        assert payload["complete"] == 1
        (running,) = payload["running"]
        assert set(running) == {
            "chunk_id",
            "worker",
            "pid",
            "host",
            "age_s",
            "expired",
        }
        assert running["worker"] == "peer"
        assert running["expired"] is False
        assert payload["identity"]["kind"] == "degree-diameter-sweep"
        # format_status renders the store-read snapshot too.
        assert "held by peer" in format_status(status)

    def test_store_status_without_manifest_fails_fast(self, tmp_path):
        from repro.fleet import store_status

        with pytest.raises(FileNotFoundError, match="manifest.json"):
            store_status(tmp_path / "empty", ttl=10)

    def test_scenario_fleet_merge_is_byte_identical(self, tmp_path):
        # A fleet job whose manifest carries a Scenario runs the degraded
        # model (faults + finite buffers + reroute) and still merges
        # byte-identically to the in-process scenario run_many.
        from repro.simulation.network import BufferedLinkModel
        from repro.simulation.scenarios import (
            FaultPlan,
            Scenario,
            UniformArrivals,
        )

        graph = h_digraph(8, 16, 2)
        scenario = Scenario(
            arrivals=UniformArrivals(40, rate=1.5),
            link=BufferedLinkModel(capacity=2, on_full="retry"),
            faults=FaultPlan.random_link_failures(graph, 10, at=2.0, seed=3),
            reroute="arc-disjoint",
        )
        traffics = [
            scenario.traffic(graph.num_vertices, rng=seed) for seed in range(4)
        ]
        manifest = ReplicaChunkManifest.build(
            graph, traffics, scenario=scenario, chunk_size=2
        )
        job = SimFleetJob(manifest, ChunkStore(tmp_path / "sim"), graph, traffics)
        outcome = run_fleet(job, ttl=10, heartbeat=2)
        assert outcome["complete"]
        expected = [
            stats
            for stats, _ in BatchedNetworkSimulator(
                graph, scenario=scenario
            ).run_many(traffics, return_messages=False)
        ]
        assert job.merge() == expected
        assert any(stats.dropped_fault or stats.rerouted_hops for stats in expected)


# ---------------------------------------------------------------------------
# Concurrent fleet processes: dynamic assignment, no chunk ever runs twice
# ---------------------------------------------------------------------------
class _SlowSweepJob(SweepFleetJob):
    """Sweep job with an artificial per-chunk delay so two concurrent
    workers genuinely overlap instead of one draining the queue first."""

    def run_chunk(self, chunk):
        time.sleep(0.05)
        return super().run_chunk(chunk)


def _fleet_worker_process(out_dir, result_file, barrier):
    job = _SlowSweepJob(sweep_manifest(chunk_size=2), ChunkStore(out_dir))
    barrier.wait()
    outcome = run_fleet(job, ttl=30, heartbeat=5, worker_id=f"pid-{os.getpid()}")
    Path(result_file).write_text(json.dumps(outcome))


class TestConcurrentFleet:
    def test_two_fleet_processes_split_the_chunks_exactly_once(self, tmp_path):
        manifest = sweep_manifest(chunk_size=2)
        out_dir = tmp_path / "sweep"
        barrier = multiprocessing.Barrier(2)
        results = [tmp_path / "a.json", tmp_path / "b.json"]
        procs = [
            multiprocessing.Process(
                target=_fleet_worker_process, args=(out_dir, result, barrier)
            )
            for result in results
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        outcomes = [json.loads(result.read_text()) for result in results]
        ran = [set(outcome["ran"]) for outcome in outcomes]
        # the core guarantee: no chunk executed by both workers...
        assert ran[0].isdisjoint(ran[1])
        # ...every chunk executed by someone...
        assert ran[0] | ran[1] == {chunk.chunk_id for chunk in manifest.chunks}
        assert not outcomes[0]["lost"] and not outcomes[1]["lost"]
        # ...and the merge is byte-identical to the serial search.
        job = SweepFleetJob(manifest, ChunkStore(out_dir))
        assert job.merge().rows == degree_diameter_search(2, 6, 60, 70).rows


# ---------------------------------------------------------------------------
# SIGKILL a worker mid-chunk: expired lease is reclaimed, merge identical
# ---------------------------------------------------------------------------
_KILL_WORKER_TEMPLATE = """
import sys, time
sys.path.insert(0, {src!r})
{setup}
real = job.run_chunk
def slow(chunk):
    time.sleep(60.0)  # parked mid-chunk until SIGKILL arrives
    return real(chunk)
job.run_chunk = slow
from repro.fleet import run_fleet
run_fleet(job, ttl=600, heartbeat=0.1)
"""

_SWEEP_SETUP = """
from repro.fleet import SweepFleetJob
from repro.otis.sweep import ChunkManifest, ChunkStore
manifest = ChunkManifest.build(2, 6, range(60, 71), chunk_size=4)
job = SweepFleetJob(manifest, ChunkStore({out!r}))
"""

_SIM_SETUP = """
from repro.fleet import SimFleetJob
from repro.otis.h_digraph import h_digraph
from repro.otis.sweep import ChunkStore
from repro.simulation.network import LinkModel
from repro.simulation.sharding import ReplicaChunkManifest
from repro.simulation.workloads import make_workload
graph = h_digraph(8, 16, 2)
link = LinkModel(latency=0.7, transmission_time=0.3)
traffics = [make_workload("uniform", graph.num_vertices, 60, rng=seed)
            for seed in range(4)]
manifest = ReplicaChunkManifest.build(graph, traffics, link=link, chunk_size=1)
job = SimFleetJob(manifest, ChunkStore({out!r}), graph, traffics)
"""


def _kill_nine_mid_chunk(tmp_path, setup_template, out_dir):
    """Start a fleet worker subprocess, SIGKILL it once it holds a lease.

    Returns the chunk id the victim was holding when it died.
    """
    script = tmp_path / "victim.py"
    script.write_text(
        _KILL_WORKER_TEMPLATE.format(
            src=SRC, setup=setup_template.format(out=str(out_dir))
        )
    )
    victim = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    lease_dir = Path(out_dir) / "leases"
    deadline = time.time() + 60
    victim_chunk = None
    while time.time() < deadline:
        for lease in lease_dir.glob("*.lease"):
            try:  # the payload lands just after the O_EXCL create
                victim_chunk = json.loads(lease.read_text())["chunk"]
                break
            except (OSError, ValueError):
                continue
        if victim_chunk is not None:
            break
        if victim.poll() is not None:
            pytest.fail("victim worker exited before claiming a lease")
        time.sleep(0.01)
    assert victim_chunk is not None, "victim never claimed a lease"
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=30)
    # the orphaned lease file survives the kill - that is the point
    assert (lease_dir / f"{victim_chunk}.lease").exists()
    return victim_chunk


class TestKillNineRecovery:
    def test_sweep_fleet_reclaims_after_sigkill(self, tmp_path):
        out_dir = tmp_path / "sweep"
        victim_chunk = _kill_nine_mid_chunk(tmp_path, _SWEEP_SETUP, out_dir)
        manifest = sweep_manifest()
        job = SweepFleetJob(manifest, ChunkStore(out_dir))
        # relaunched fleet: the victim's lease expires on our TTL and is
        # reclaimed; wait=True keeps polling until the store completes.
        outcome = run_fleet(job, ttl=0.5, heartbeat=0.1)
        assert outcome["complete"]
        assert victim_chunk in outcome["ran"]
        assert job.merge().rows == degree_diameter_search(2, 6, 60, 70).rows

    def test_sim_fleet_reclaims_after_sigkill(self, tmp_path):
        out_dir = tmp_path / "sim"
        victim_chunk = _kill_nine_mid_chunk(tmp_path, _SIM_SETUP, out_dir)
        graph, link, traffics, manifest = sim_inputs()
        job = SimFleetJob(manifest, ChunkStore(out_dir), graph, traffics)
        outcome = run_fleet(job, ttl=0.5, heartbeat=0.1)
        assert outcome["complete"]
        assert victim_chunk in outcome["ran"]
        expected = [
            stats
            for stats, _ in BatchedNetworkSimulator(graph, link=link).run_many(
                traffics, return_messages=False
            )
        ]
        assert job.merge() == expected


# ---------------------------------------------------------------------------
# CLI smoke: the end-to-end claim/run/reclaim/merge cycle in tier-1
# ---------------------------------------------------------------------------
class TestFleetCli:
    def test_fleet_smoke_end_to_end(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "expired lease reclaimed: True" in out
        assert "merge identical to serial search: True" in out
        assert "merge identical to in-process run_many: True" in out
        assert "fleet smoke: OK" in out

    def test_fleet_sweep_run_watch_merge(self, capsys, tmp_path):
        from repro.cli import main

        args = [
            "fleet", "sweep",
            "-D", "6",
            "--n-min", "62",
            "--n-max", "66",
            "--out-dir", str(tmp_path / "sweep"),
            "--chunk-size", "8",
        ]
        assert main(args + ["--ttl", "10"]) == 0
        out = capsys.readouterr().out
        assert "chunks complete" in out
        assert main(args + ["--watch"]) == 0
        assert "complete" in capsys.readouterr().out
        assert main(args + ["--merge"]) == 0
        assert "B(2,6)" in capsys.readouterr().out

    def test_fleet_sim_run_then_merge(self, capsys, tmp_path):
        from repro.cli import main

        args = [
            "fleet", "sim",
            "-p", "4", "-q", "8",
            "--messages", "25",
            "--seeds", "4",
            "--out-dir", str(tmp_path / "sim"),
            "--chunk-size", "2",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--merge"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "100/100" in out

    def test_fleet_sim_merge_runs_bench_check_on_bench_json(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        args = [
            "fleet", "sim",
            "-p", "4", "-q", "8",
            "--messages", "20",
            "--seeds", "2",
            "--out-dir", str(tmp_path / "sim"),
            "--chunk-size", "2",
        ]
        assert main(args) == 0
        capsys.readouterr()
        target = tmp_path / "BENCH_sim.json"
        assert main(args + ["--merge", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        entry = json.loads(target.read_text())["sweep_H(4,8,2)_fleet"]
        assert entry["curves"][0]["delivered"] == 40
        assert "wall_time_s" not in entry  # the fold never timed the sim
        # the bench gate ran right after the merge rewrote the BENCH file
        # (no committed baseline in tmp -> nothing to compare, no regression)
        assert "bench-check" in out

    def test_fleet_cli_reports_identity_mismatch(self, capsys, tmp_path):
        from repro.cli import main

        common = [
            "fleet", "sweep",
            "-D", "6",
            "--out-dir", str(tmp_path / "sweep"),
            "--chunk-size", "8",
        ]
        assert main(common + ["--n-min", "62", "--n-max", "66"]) == 0
        capsys.readouterr()
        assert main(common + ["--n-min", "62", "--n-max", "67"]) == 1
        assert "identity mismatch" in capsys.readouterr().err

    def test_fleet_without_mode_errors(self, capsys):
        from repro.cli import main

        assert main(["fleet"]) == 2
        assert "fleet needs a mode" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Router parity inside worker processes (the fleet/sharded run_many path)
# ---------------------------------------------------------------------------
def _routes_in_worker(graph, kind, sources, targets):
    """Build a router of ``kind`` from a pickled graph; return its hops."""
    router = make_router(graph, kind)
    return router.next_hops(np.asarray(sources), np.asarray(targets)).tolist()


class TestRouterWorkerParity:
    def test_lru_eviction_stays_bit_identical_to_dense(self):
        graph = h_digraph(8, 16, 2)
        n = graph.num_vertices
        dense = DenseTableRouter.for_graph(graph)
        lru = LruRowRouter(graph, max_rows=3)
        rng = np.random.default_rng(7)
        for _ in range(25):  # far more distinct sources than max_rows
            sources = rng.integers(n, size=40)
            targets = rng.integers(n, size=40)
            assert np.array_equal(
                lru.next_hops(sources, targets), dense.next_hops(sources, targets)
            )
        assert lru.cached_rows() <= 3
        assert lru.misses > 3  # evictions actually happened and were refilled

    def test_lru_router_pickle_round_trip_parity(self):
        graph = h_digraph(8, 16, 2)
        n = graph.num_vertices
        rng = np.random.default_rng(11)
        warm_sources = rng.integers(n, size=30)
        warm_targets = rng.integers(n, size=30)
        original = LruRowRouter(graph, max_rows=4)
        original.next_hops(warm_sources, warm_targets)  # warm + evict
        clone = pickle.loads(pickle.dumps(original))
        assert clone.max_rows == original.max_rows
        assert clone.cached_rows() == original.cached_rows()
        dense = DenseTableRouter.for_graph(graph)
        probe_sources = rng.integers(n, size=200)
        probe_targets = rng.integers(n, size=200)
        assert np.array_equal(
            clone.next_hops(probe_sources, probe_targets),
            dense.next_hops(probe_sources, probe_targets),
        )

    def test_graph_pickle_strips_process_qualified_cache_token(self):
        from repro.routing.paths import routing_table_for

        graph = h_digraph(4, 8, 2)
        routing_table_for(graph)  # stamps the process-local cache token
        assert getattr(graph, "_routing_table_cache", None) is not None
        clone = pickle.loads(pickle.dumps(graph))
        assert getattr(clone, "_routing_table_cache", None) is None
        # and the pid-qualified token of a foreign process can never alias a
        # table here: a fresh table for the clone still routes identically
        assert np.array_equal(
            routing_table_for(clone).next_hop, routing_table_for(graph).next_hop
        )

    @pytest.mark.parametrize("kind", ["dense", "lru"])
    def test_worker_process_routes_match_parent(self, kind):
        from concurrent.futures import ProcessPoolExecutor

        from repro.routing.paths import routing_table_for

        graph = h_digraph(8, 16, 2)
        routing_table_for(graph)  # parent holds a cached table (token set)
        n = graph.num_vertices
        rng = np.random.default_rng(3)
        sources = rng.integers(n, size=150).tolist()
        targets = rng.integers(n, size=150).tolist()
        parent = make_router(graph, kind).next_hops(
            np.asarray(sources), np.asarray(targets)
        )
        with ProcessPoolExecutor(max_workers=1) as pool:
            worker = pool.submit(
                _routes_in_worker, graph, kind, sources, targets
            ).result()
        assert np.array_equal(parent, np.asarray(worker))

    def test_sharded_run_many_with_lru_router_and_workers(self, tmp_path):
        # The full stack the satellite asks about: pickled graphs into
        # ProcessPoolExecutor workers, each rebuilding LRU rows, merged
        # byte-identical to the in-process pass.
        graph, link, traffics, _ = sim_inputs(replicas=4, messages=50)
        expected = [
            stats
            for stats, _ in BatchedNetworkSimulator(
                graph, link=link, router="lru"
            ).run_many(traffics, return_messages=False)
        ]
        merged = run_many_sharded(
            graph,
            traffics,
            link=link,
            router="lru",
            store=tmp_path,
            chunk_size=1,
            workers=2,
        )
        assert merged == expected
