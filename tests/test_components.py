"""Tests for the component decomposition of non-cyclic alphabet digraphs
(Remark 3.10, Example 3.3.2 / Figure 5)."""

import pytest

from repro.core.alphabet_digraph import AlphabetDigraphSpec, debruijn_spec
from repro.core.components import component_structure, decompose_non_cyclic
from repro.graphs.generators import circuit, de_bruijn
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.operations import conjunction, induced_subgraph
from repro.permutations import Permutation, from_cycles, identity, rotation


class TestComponentStructure:
    def test_cyclic_spec_is_connected(self):
        report = component_structure(debruijn_spec(2, 4))
        assert report.is_connected
        assert report.num_components == 1
        assert report.matches_prop_3_9()

    def test_example_3_3_2_components(self):
        # Figure 5: one square component (4 vertices) + two 2-vertex components.
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        report = component_structure(spec)
        assert not report.is_connected
        assert report.num_components == 3
        assert report.component_sizes == (2, 2, 4)
        assert report.matches_prop_3_9()

    def test_identity_f_components(self):
        # f = identity is as non-cyclic as it gets (D fixed points).
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=identity(3), sigma=identity(2), j=0
        )
        report = component_structure(spec)
        assert not report.is_connected
        # Each component fixes the two untouched positions: 4 components of 2.
        assert report.component_sizes == (2, 2, 2, 2)

    def test_prop_3_9_connectivity_check_over_all_f_small(self):
        # Exhaustively over all permutations of Z_3: connected iff cyclic.
        import itertools

        for perm in itertools.permutations(range(3)):
            f = Permutation(perm)
            spec = AlphabetDigraphSpec(d=2, D=3, f=f, sigma=identity(2), j=0)
            report = component_structure(spec)
            assert report.is_connected == f.is_cyclic()


class TestDecomposition:
    def test_example_3_3_2_factorisation(self):
        # Components are C_2 (x) B(2,1) (the square) and C_1 (x) B(2,1).
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        factors = decompose_non_cyclic(spec)
        assert len(factors) == 3
        summary = sorted((f.size, f.debruijn_dimension, f.circuit_length) for f in factors)
        assert summary == [(2, 1, 1), (2, 1, 1), (4, 1, 2)]
        assert all(f.certified for f in factors)

    def test_certification_against_explicit_conjunction(self):
        # Rebuild each component and compare with B(d, r) (x) C_k directly.
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        graph = spec.build()
        for factorisation in decompose_non_cyclic(spec):
            component = induced_subgraph(graph, list(factorisation.vertices))
            reference = conjunction(
                de_bruijn(spec.d, factorisation.debruijn_dimension),
                circuit(factorisation.circuit_length),
            )
            assert are_isomorphic(component, reference)

    def test_cyclic_case_is_single_debruijn(self):
        factors = decompose_non_cyclic(debruijn_spec(2, 3))
        assert len(factors) == 1
        assert factors[0].debruijn_dimension == 3
        assert factors[0].circuit_length == 1
        assert factors[0].certified

    def test_two_cycle_f_on_four_positions(self):
        # f = (0 1)(2 3): orbit of j=0 has length 2.
        f = from_cycles(4, [[0, 1], [2, 3]])
        spec = AlphabetDigraphSpec(d=2, D=4, f=f, sigma=identity(2), j=0)
        report = component_structure(spec)
        assert not report.is_connected
        factors = decompose_non_cyclic(spec)
        assert sum(f.size for f in factors) == 16
        for factorisation in factors:
            # every component is a de Bruijn-by-circuit conjunction
            assert factorisation.certified
            assert (
                spec.d**factorisation.debruijn_dimension
                * factorisation.circuit_length
                == factorisation.size
            )

    def test_uncertified_mode(self):
        spec = AlphabetDigraphSpec(
            d=2, D=3, f=Permutation([2, 1, 0]), sigma=identity(2), j=1
        )
        factors = decompose_non_cyclic(spec, certify=False)
        assert all(not f.certified for f in factors)
        assert sum(f.size for f in factors) == 8

    def test_non_identity_sigma_decomposition(self):
        # Remark 3.10 holds for any sigma; use the complement.
        from repro.permutations import complement

        spec = AlphabetDigraphSpec(
            d=2, D=4, f=from_cycles(4, [[0, 2], [1, 3]]), sigma=complement(2), j=0
        )
        factors = decompose_non_cyclic(spec)
        assert sum(f.size for f in factors) == 16
        assert all(f.certified for f in factors)
