"""Parity suite: the batched simulator vs. the event-loop reference.

The batched engine's contract (module docstring of
:mod:`repro.simulation.network`) promises *bit-identical* results: the same
:class:`NetworkStats` — delivered count, makespan, latency statistics, FIFO
queue peaks, busy time — and the same per-message records (hop counts and
the full latency histogram), on any workload.  This suite enforces the
contract on uniform / hotspot / permutation workloads over ``H(p, q, d)``
instances *with parallel arcs* (where the earliest-free link selection is
subtlest), across at least five seeds, several link timings (including
zero transmission time and zero latency, which produce same-instant event
cascades), truncated runs (``until`` / ``max_events``) and the stacked
:meth:`~repro.simulation.network.BatchedNetworkSimulator.run_many` path.

This is the fast subset that tier-1 always runs; the 100k-message scale
versions live in ``benchmarks/test_simulation_throughput.py`` behind the
opt-in ``sim`` marker.
"""

import math

import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generators import de_bruijn
from repro.otis.h_digraph import h_digraph
from repro.simulation.network import (
    BatchedNetworkSimulator,
    LinkModel,
    NetworkSimulator,
)
from repro.simulation.workloads import (
    hotspot_pairs,
    make_workload,
    permutation_pairs,
    uniform_random_pairs,
)

SEEDS = range(5)

# H(1,4,2) and H(2,8,4) are multigraphs (every/many (u, v) pairs carry two
# parallel optical channels); H(4,8,2) and B(2,4) are simple but have loops.
GRAPHS = [
    h_digraph(1, 4, 2),
    h_digraph(2, 8, 4),
    h_digraph(4, 8, 2),
    de_bruijn(2, 4),
]

LINKS = [
    LinkModel(latency=1.0, transmission_time=1.0),
    LinkModel(latency=0.7, transmission_time=0.3),
    LinkModel(latency=1.0, transmission_time=0.0),
    LinkModel(latency=0.0, transmission_time=0.0),
]


def has_parallel_arcs(graph):
    return max(graph.arc_multiset().values()) >= 2


def assert_parity(graph, traffic, link, **run_kwargs):
    ref_stats, ref_messages = NetworkSimulator(graph, link=link).run(
        traffic, **run_kwargs
    )
    bat_stats, bat_messages = BatchedNetworkSimulator(graph, link=link).run(
        traffic, **run_kwargs
    )
    assert bat_stats == ref_stats
    assert len(bat_messages) == len(ref_messages)
    for ref, bat in zip(ref_messages, bat_messages):
        assert bat.ident == ref.ident
        assert bat.source == ref.source
        assert bat.destination == ref.destination
        assert bat.creation_time == ref.creation_time
        assert bat.hops == ref.hops
        if math.isnan(ref.arrival_time):
            assert math.isnan(bat.arrival_time)
        else:
            assert bat.arrival_time == ref.arrival_time  # exact, not approx
    return ref_stats


def test_parity_graph_set_includes_parallel_arcs():
    assert any(has_parallel_arcs(graph) for graph in GRAPHS)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "graph", GRAPHS, ids=lambda g: g.name or f"n{g.num_vertices}"
)
def test_uniform_parity(graph, seed):
    n = graph.num_vertices
    traffic = uniform_random_pairs(n, 60, rng=seed)
    stats = assert_parity(graph, traffic, LinkModel(1.0, 1.0))
    assert stats.delivered == 60


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "graph", GRAPHS, ids=lambda g: g.name or f"n{g.num_vertices}"
)
def test_uniform_poisson_parity(graph, seed):
    n = graph.num_vertices
    traffic = uniform_random_pairs(n, 60, rng=seed, rate=1.3)
    assert_parity(graph, traffic, LinkModel(0.7, 0.3))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "graph", GRAPHS, ids=lambda g: g.name or f"n{g.num_vertices}"
)
def test_hotspot_parity(graph, seed):
    n = graph.num_vertices
    traffic = hotspot_pairs(n, 60, hotspot=n - 1, hotspot_fraction=0.7, rng=seed)
    assert_parity(graph, traffic, LinkModel(1.0, 1.0))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "graph", GRAPHS, ids=lambda g: g.name or f"n{g.num_vertices}"
)
def test_permutation_parity(graph, seed):
    traffic = permutation_pairs(graph.num_vertices, rng=seed)
    assert_parity(graph, traffic, LinkModel(1.0, 1.0))


@pytest.mark.parametrize("link", LINKS, ids=["unit", "frac", "T0", "T0L0"])
@pytest.mark.parametrize("seed", SEEDS)
def test_link_timing_parity_on_multigraph(link, seed):
    # H(2, 8, 4) mixes parallel and simple arcs; zero transmission/latency
    # timings collapse timestamps into large same-instant cascades.
    graph = h_digraph(2, 8, 4)
    traffic = uniform_random_pairs(graph.num_vertices, 50, rng=seed, rate=2.0)
    assert_parity(graph, traffic, link)


@pytest.mark.parametrize("max_events", [0, 1, 2, 3, 7, 23, 50, 10_000])
def test_max_events_truncation_parity(max_events):
    graph = h_digraph(2, 8, 4)
    traffic = uniform_random_pairs(graph.num_vertices, 30, rng=1, rate=2.0)
    assert_parity(
        graph, traffic, LinkModel(0.7, 0.3), max_events=max_events
    )


@pytest.mark.parametrize("until", [0.0, 0.5, 1.7, 3.0, 100.0])
def test_until_horizon_parity(until):
    graph = h_digraph(2, 8, 4)
    traffic = uniform_random_pairs(graph.num_vertices, 30, rng=1, rate=2.0)
    assert_parity(graph, traffic, LinkModel(0.7, 0.3), until=until)


def test_drop_parity_on_disconnected():
    graph = Digraph(3, arcs=[(0, 1), (1, 0), (1, 2)])
    traffic = [(2, 0, 0.0), (0, 2, 0.0), (0, 1, 0.0), (2, 2, 0.0)]
    stats = assert_parity(graph, traffic, LinkModel(1.0, 1.0))
    assert stats.undelivered == 1  # only the message stranded at node 2


def test_empty_traffic_parity():
    stats = assert_parity(h_digraph(4, 8, 2), [], LinkModel(1.0, 1.0))
    assert stats.delivered == 0 and stats.makespan == 0.0


def test_run_many_matches_individual_runs():
    graph = h_digraph(8, 16, 2)
    link = LinkModel(1.0, 1.0)
    simulator = BatchedNetworkSimulator(graph, link=link)
    n = graph.num_vertices
    traffics = [
        make_workload("uniform", n, 150, rng=seed) for seed in range(3)
    ] + [
        make_workload("hotspot", n, 100, rng=7, hotspot=3, hotspot_fraction=0.6),
        make_workload("uniform", n, 100, rng=9, rate=3.0),
        make_workload("permutation", n, 0, rng=11),
    ]
    stacked = simulator.run_many(traffics)
    assert len(stacked) == len(traffics)
    for traffic, (stacked_stats, stacked_messages) in zip(traffics, stacked):
        solo_stats, solo_messages = simulator.run(traffic)
        assert stacked_stats == solo_stats
        assert [(m.ident, m.hops, m.arrival_time) for m in stacked_messages] == [
            (m.ident, m.hops, m.arrival_time) for m in solo_messages
        ]


def test_run_many_return_messages_flag():
    graph = h_digraph(4, 8, 2)
    simulator = BatchedNetworkSimulator(graph)
    traffic = uniform_random_pairs(graph.num_vertices, 20, rng=0)
    ((stats, messages),) = simulator.run_many([traffic], return_messages=False)
    assert messages is None
    assert stats.delivered == 20


def test_both_engines_share_cached_routing_table():
    from repro.routing.paths import routing_table_for

    graph = h_digraph(4, 8, 2)
    table = routing_table_for(graph)
    assert routing_table_for(graph) is table
    reference = NetworkSimulator(graph)
    batched = BatchedNetworkSimulator(graph)
    assert reference.routing is table
    assert batched.routing is table


def test_routing_cache_invalidated_by_mutation():
    # Regression: an (n, m)-preserving rewire must not serve a stale table —
    # Digraph mutators drop the instance cache.
    from repro.routing.paths import routing_table_for

    graph = Digraph(3, arcs=[(0, 1), (1, 0), (1, 2)])
    table = routing_table_for(graph)
    assert table.next_hop[0, 2] == 1 and table.distance[0, 2] == 2
    graph.remove_arc(1, 2)
    graph.add_arc(0, 2)  # same n, same m, different topology
    fresh = routing_table_for(graph)
    assert fresh is not table
    assert fresh.next_hop[0, 2] == 2 and fresh.distance[0, 2] == 1
    for engine_cls in (NetworkSimulator, BatchedNetworkSimulator):
        stats, messages = engine_cls(graph).run([(0, 2, 0.0)])
        assert stats.delivered == 1
        assert messages[0].hops == 1
