"""Unit tests for repro.permutations — the permutation algebra."""

import math

import numpy as np
import pytest

from repro.permutations import (
    Permutation,
    all_cyclic_permutations,
    all_permutations,
    complement,
    count_debruijn_definitions,
    cycle,
    from_cycles,
    identity,
    random_cyclic_permutation,
    random_permutation,
    rotation,
    transposition,
)


class TestConstruction:
    def test_valid(self):
        p = Permutation([2, 0, 1])
        assert p.n == 3
        assert p(0) == 2 and p(1) == 0 and p(2) == 1

    def test_invalid_not_a_permutation(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])
        with pytest.raises(ValueError):
            Permutation([0, 2])
        with pytest.raises(ValueError):
            Permutation([])

    def test_call_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation([0, 1])(2)

    def test_mapping_read_only(self):
        p = identity(4)
        with pytest.raises(ValueError):
            p.mapping[0] = 3


class TestNamedPermutations:
    def test_identity(self):
        p = identity(5)
        assert p.is_identity()
        assert all(p(i) == i for i in range(5))

    def test_complement_definition_2_1(self):
        # C(u) = n - u - 1
        c = complement(4)
        assert [c(i) for i in range(4)] == [3, 2, 1, 0]
        assert (c * c).is_identity()

    def test_rotation_remark_3_8(self):
        rho = rotation(4)
        assert [rho(i) for i in range(4)] == [1, 2, 3, 0]
        assert rho.is_cyclic()

    def test_rotation_shift(self):
        assert rotation(5, 2).as_tuple() == (2, 3, 4, 0, 1)

    def test_transposition(self):
        t = transposition(4, 1, 3)
        assert t.as_tuple() == (0, 3, 2, 1)
        assert (t * t).is_identity()

    def test_cycle_constructor(self):
        p = cycle(5, [0, 2, 3])
        assert p(0) == 2 and p(2) == 3 and p(3) == 0
        assert p(1) == 1 and p(4) == 4

    def test_cycle_duplicate_rejected(self):
        with pytest.raises(ValueError):
            cycle(4, [0, 1, 0])

    def test_from_cycles(self):
        p = from_cycles(5, [[0, 1], [2, 3, 4]])
        assert p.cycle_type() == (2, 3)
        with pytest.raises(ValueError):
            from_cycles(5, [[0, 1], [1, 2]])


class TestAlgebra:
    def test_composition_order(self):
        # (p * q)(i) == p(q(i))
        p = Permutation([1, 2, 0])
        q = Permutation([0, 2, 1])
        composed = p * q
        for i in range(3):
            assert composed(i) == p(q(i))

    def test_composition_size_mismatch(self):
        with pytest.raises(ValueError):
            identity(3) * identity(4)

    def test_inverse(self):
        p = Permutation([2, 3, 1, 0])
        assert (p * p.inverse()).is_identity()
        assert (p.inverse() * p).is_identity()

    def test_powers(self):
        rho = rotation(6)
        assert (rho**0).is_identity()
        assert (rho**6).is_identity()
        assert (rho**2).as_tuple() == rotation(6, 2).as_tuple()
        assert (rho**-1).as_tuple() == rho.inverse().as_tuple()

    def test_power_definition_f_i_plus_1(self):
        # The paper defines f^{i+1} = f o f^i.
        f = Permutation([3, 4, 5, 2, 0, 1])
        for i in range(8):
            assert (f ** (i + 1)).as_tuple() == (f * (f**i)).as_tuple()

    def test_order(self):
        assert rotation(6).order() == 6
        assert from_cycles(6, [[0, 1], [2, 3, 4]]).order() == 6
        assert identity(4).order() == 1

    def test_sign(self):
        assert identity(4).sign() == 1
        assert transposition(4, 0, 1).sign() == -1
        assert rotation(3).sign() == 1  # 3-cycle is even

    def test_apply_array(self):
        c = complement(4)
        assert np.array_equal(
            c.apply_array(np.array([0, 1, 2, 3])), np.array([3, 2, 1, 0])
        )
        with pytest.raises(ValueError):
            c.apply_array(np.array([4]))

    def test_hash_and_eq(self):
        assert identity(3) == Permutation([0, 1, 2])
        assert hash(identity(3)) == hash(Permutation([0, 1, 2]))
        assert identity(3) != rotation(3)
        assert identity(3) != identity(4)


class TestCycleStructure:
    def test_orbit(self):
        f = Permutation([3, 4, 5, 2, 0, 1])
        assert f.orbit(2) == [2, 5, 1, 4, 0, 3]

    def test_cycles_partition(self):
        p = from_cycles(7, [[0, 3], [1, 4, 5]])
        cycles = p.cycles()
        flattened = sorted(v for cyc in cycles for v in cyc)
        assert flattened == list(range(7))

    def test_is_cyclic(self):
        assert rotation(5).is_cyclic()
        assert not identity(5).is_cyclic()
        assert not from_cycles(6, [[0, 1, 2], [3, 4, 5]]).is_cyclic()
        assert Permutation([0]).is_cyclic()  # the single fixed point is a 1-cycle

    def test_fixed_points(self):
        p = cycle(5, [0, 2])
        assert p.fixed_points() == [1, 3, 4]

    def test_example_3_3_2_not_cyclic(self):
        # f(i) = 2 - i on Z_3 is not cyclic (1 is fixed).
        f = Permutation([2, 1, 0])
        assert not f.is_cyclic()
        assert f.cycle_type() == (1, 2)


class TestWordActions:
    def test_apply_word_definition_3_6(self):
        sigma = complement(3)
        assert sigma.apply_word((0, 1, 2)) == (2, 1, 0)

    def test_permute_positions_rotation(self):
        # Remark 3.8: ->rho performs the de Bruijn left rotation.
        rho = rotation(3)
        assert rho.permute_positions((1, 2, 3)) == (2, 3, 1)

    def test_permute_positions_example_3_3_1(self):
        # ->f(x5 x4 x3 x2 x1 x0) = x2 x1 x0 x3 x5 x4 for the example's f.
        f = Permutation([3, 4, 5, 2, 0, 1])
        word = (5, 4, 3, 2, 1, 0)  # letter value == its position
        assert f.permute_positions(word) == (2, 1, 0, 3, 5, 4)

    def test_permute_positions_length_mismatch(self):
        with pytest.raises(ValueError):
            rotation(3).permute_positions((1, 2))

    def test_position_matrix(self):
        f = rotation(3)
        mat = f.position_matrix()
        assert mat.shape == (3, 3)
        assert np.array_equal(mat @ mat @ mat, np.eye(3, dtype=np.int64))
        # column i has its 1 in row f(i)
        for i in range(3):
            assert mat[f(i), i] == 1


class TestGeneratorsAndCounting:
    def test_random_permutation_is_valid(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            p = random_permutation(6, rng)
            assert sorted(p.as_tuple()) == list(range(6))

    def test_random_cyclic_permutation_is_cyclic(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            assert random_cyclic_permutation(7, rng).is_cyclic()

    def test_all_permutations_count(self):
        assert sum(1 for _ in all_permutations(4)) == math.factorial(4)

    def test_all_cyclic_permutations_count_and_cyclicity(self):
        perms = list(all_cyclic_permutations(5))
        assert len(perms) == math.factorial(4)
        assert all(p.is_cyclic() for p in perms)
        assert len({p.as_tuple() for p in perms}) == len(perms)

    def test_count_debruijn_definitions(self):
        # Section 3.2: d!(D-1)! alternative definitions.
        assert count_debruijn_definitions(2, 3) == 2 * 2
        assert count_debruijn_definitions(3, 4) == 6 * 6
        with pytest.raises(ValueError):
            count_debruijn_definitions(0, 3)
