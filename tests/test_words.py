"""Unit tests for repro.words — radix-d word arithmetic."""

import numpy as np
import pytest

from repro import words


class TestConversions:
    def test_word_to_int_binary(self):
        assert words.word_to_int((1, 0, 1), 2) == 5
        assert words.word_to_int((0, 0, 0), 2) == 0
        assert words.word_to_int((1, 1, 1), 2) == 7

    def test_word_to_int_ternary(self):
        assert words.word_to_int((2, 1, 0), 3) == 2 * 9 + 1 * 3 + 0

    def test_int_to_word_roundtrip_small(self):
        for d in (2, 3, 4):
            for D in (1, 2, 3):
                for value in range(d**D):
                    word = words.int_to_word(value, d, D)
                    assert len(word) == D
                    assert words.word_to_int(word, d) == value

    def test_int_to_word_known(self):
        assert words.int_to_word(5, 2, 3) == (1, 0, 1)
        assert words.int_to_word(0, 2, 3) == (0, 0, 0)

    def test_out_of_range_digit_rejected(self):
        with pytest.raises(ValueError):
            words.word_to_int((2, 0), 2)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            words.int_to_word(8, 2, 3)
        with pytest.raises(ValueError):
            words.int_to_word(-1, 2, 3)

    def test_invalid_alphabet_rejected(self):
        with pytest.raises(ValueError):
            words.check_alphabet(0)
        with pytest.raises(ValueError):
            words.check_alphabet(2, 0)


class TestWordLength:
    def test_exact_powers(self):
        assert words.word_length(8, 2) == 3
        assert words.word_length(81, 3) == 4
        assert words.word_length(2, 2) == 1

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            words.word_length(10, 2)

    def test_degenerate_alphabet(self):
        assert words.word_length(1, 1) == 0
        with pytest.raises(ValueError):
            words.word_length(2, 1)

    def test_n_equal_one_returns_zero(self):
        # Regression: the old max(D, 1) clamp returned 1, violating the
        # documented contract d**D == n (2**1 != 1).
        for d in (1, 2, 3, 7):
            D = words.word_length(1, d)
            assert D == 0
            assert d**D == 1

    def test_contract_holds_for_all_returns(self):
        for d in (2, 3, 5):
            for D in range(5):
                assert words.word_length(d**D, d) == D


class TestVectorised:
    def test_word_table_matches_scalar(self):
        for d, D in ((2, 3), (3, 2), (4, 2)):
            table = words.word_table(d, D)
            assert table.shape == (d**D, D)
            for u in range(d**D):
                assert tuple(table[u]) == words.int_to_word(u, d, D)

    def test_words_to_ints_roundtrip(self):
        table = words.word_table(3, 3)
        values = words.words_to_ints(table, 3)
        assert np.array_equal(values, np.arange(27))

    def test_ints_to_words_roundtrip(self):
        values = np.arange(16)
        table = words.ints_to_words(values, 2, 4)
        assert np.array_equal(words.words_to_ints(table, 2), values)

    def test_words_to_ints_validates(self):
        with pytest.raises(ValueError):
            words.words_to_ints(np.array([[0, 5]]), 2)
        with pytest.raises(ValueError):
            words.words_to_ints(np.array([0, 1]), 2)  # 1-D

    def test_ints_to_words_validates(self):
        with pytest.raises(ValueError):
            words.ints_to_words(np.array([9]), 2, 3)


class TestShifts:
    def test_left_shift(self):
        assert words.left_shift((1, 0, 1), 0, 2) == (0, 1, 0)
        assert words.left_shift((1, 0, 1), 1, 2) == (0, 1, 1)

    def test_right_shift(self):
        assert words.right_shift((1, 0, 1), 0, 2) == (0, 1, 0)
        assert words.right_shift((1, 0, 1), 1, 2) == (1, 1, 0)

    def test_shift_inverse_relationship(self):
        word = (2, 0, 1, 2)
        shifted = words.left_shift(word, 1, 3)
        # Right-shifting back with the dropped first digit restores the word.
        assert words.right_shift(shifted, word[0], 3) == word

    def test_shift_validates_digit(self):
        with pytest.raises(ValueError):
            words.left_shift((0, 1), 2, 2)
        with pytest.raises(ValueError):
            words.right_shift((0, 1), 5, 2)


class TestDigitAccess:
    def test_digit_positions_from_right(self):
        # word x2 x1 x0 = (1, 0, 1): x0 = 1, x1 = 0, x2 = 1
        assert words.digit((1, 0, 1), 0) == 1
        assert words.digit((1, 0, 1), 1) == 0
        assert words.digit((1, 0, 1), 2) == 1

    def test_with_digit(self):
        assert words.with_digit((1, 0, 1), 1, 1, 2) == (1, 1, 1)
        assert words.with_digit((1, 0, 1), 2, 0, 2) == (0, 0, 1)

    def test_digit_out_of_range(self):
        with pytest.raises(ValueError):
            words.digit((1, 0), 2)
        with pytest.raises(ValueError):
            words.with_digit((1, 0), 3, 0, 2)


class TestConcatSplit:
    def test_concat(self):
        assert words.concat((1, 0), (2,), (0, 1)) == (1, 0, 2, 0, 1)

    def test_split(self):
        assert words.split((1, 0, 2, 0, 1), 2, 1, 2) == ((1, 0), (2,), (0, 1))

    def test_split_bad_lengths(self):
        with pytest.raises(ValueError):
            words.split((1, 0, 1), 2, 2)

    def test_split_concat_roundtrip(self):
        word = (0, 1, 2, 3, 0, 1)
        parts = words.split(word, 1, 3, 2)
        assert words.concat(*parts) == word


class TestDistances:
    def test_hamming(self):
        assert words.hamming_distance((1, 0, 1), (1, 1, 1)) == 1
        assert words.hamming_distance((0, 0), (1, 1)) == 2
        assert words.hamming_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_hamming_length_mismatch(self):
        with pytest.raises(ValueError):
            words.hamming_distance((1,), (1, 0))

    def test_longest_overlap_full(self):
        assert words.longest_overlap((1, 0, 1), (1, 0, 1)) == 3

    def test_longest_overlap_partial(self):
        # suffix "01" of 101 is prefix of 011
        assert words.longest_overlap((1, 0, 1), (0, 1, 1)) == 2

    def test_longest_overlap_none(self):
        assert words.longest_overlap((0, 0, 0), (1, 1, 1)) == 0

    def test_overlap_drives_debruijn_distance(self):
        # distance in B(2, D) is D - overlap; spot check against BFS.
        from repro.graphs import de_bruijn
        from repro.graphs.traversal import bfs_distances

        d, D = 2, 4
        graph = de_bruijn(d, D)
        dist0 = bfs_distances(graph, 0)
        source = words.int_to_word(0, d, D)
        for target_value in range(d**D):
            target = words.int_to_word(target_value, d, D)
            expected = D - words.longest_overlap(source, target)
            assert dist0[target_value] == expected
