"""Tests of the ``repro.lint`` contract checkers.

Three layers:

* **fixture snippets** — for every rule, a known-bad sample must fire and
  the repo's canonical good pattern (injected clock reference, tmp+replace
  write, sorted listing, locked LRU insert, public import, closed
  fingerprint set) must stay silent.  The bad fixtures are laid out so the
  *default* config covers them, which also lets the CLI exit-code tests
  reuse them verbatim;
* **machinery** — inline ``# lint: disable=`` suppressions, baseline
  write/load/subtract round-trip, unknown-rule rejection, parse-error
  reporting;
* **the committed tree** — ``repro lint src/`` must exit 0 (the tree is
  lint-clean by construction: every violation the checkers surfaced was
  fixed, not baselined), and the fingerprint-coverage walk must
  demonstrably fail when a copy of the tree gains an import that pulls an
  unfingerprinted module into a verdict path.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro import cli
from repro.lint import (
    DEFAULT_CONFIG,
    FingerprintDecl,
    LintConfig,
    all_rules,
    apply_baseline,
    load_baseline,
    run_lint,
    write_baseline,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def build_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``{package-relative path: source}`` under ``tmp/repro``."""
    root = tmp_path / "tree"
    for rel, source in files.items():
        path = root / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint_tree(tmp_path, files, *, rules=None, config=DEFAULT_CONFIG):
    root = build_tree(tmp_path, files)
    return run_lint([root], config=config, rules=rules, root=root)


# ---------------------------------------------------------------------------
# bad fixtures: one per rule, all triggering under the DEFAULT config.

BAD_FIXTURES: dict[str, dict[str, str]] = {
    "clock-seam": {
        "fleet/policy.py": """
            import time

            def straggler_age(acquired):
                return time.time() - acquired
        """
    },
    "atomic-write": {
        # otis/sweep.py is in the default atomic_write_files list.
        "otis/sweep.py": """
            import json

            def publish(path, records):
                with open(path, "w") as handle:
                    json.dump(records, handle)
        """
    },
    "sorted-iteration": {
        "merge.py": """
            def chunk_names(directory):
                return [path.name for path in directory.glob("chunk-*.jsonl")]
        """
    },
    "lock-discipline": {
        "cache.py": """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
        """
    },
    "private-access": {
        "driver.py": """
            from repro.fleet.leases import LeaseManager

            def scan(directory):
                leases = LeaseManager(directory, ttl=60.0)
                return leases._watch
        """
    },
    "fingerprint-coverage": {
        # The default decl points at otis/sweep.py::_VERDICT_SOURCES.
        "otis/sweep.py": """
            _VERDICT_SOURCES = ("otis/search.py",)
        """,
        "otis/search.py": """
            from repro import uncovered
        """,
        "uncovered.py": """
            ANSWER = 42
        """,
    },
}


@pytest.mark.parametrize("rule", sorted(BAD_FIXTURES))
def test_bad_fixture_fires(rule, tmp_path):
    findings = lint_tree(tmp_path, BAD_FIXTURES[rule], rules=(rule,))
    assert findings, f"{rule} stayed silent on its known-bad fixture"
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize("rule", sorted(BAD_FIXTURES))
def test_cli_exits_nonzero_on_bad_fixture(rule, tmp_path, capsys):
    root = build_tree(tmp_path, BAD_FIXTURES[rule])
    code = cli.main(
        ["lint", str(root), "--rules", rule, "--baseline", "none", "--json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] >= 1
    assert {f["rule"] for f in payload["findings"]} == {rule}


def test_all_rules_have_a_bad_fixture():
    assert set(all_rules()) == set(BAD_FIXTURES)


# ---------------------------------------------------------------------------
# good patterns: the repo's canonical shapes must stay silent.


def test_clock_seam_allows_injected_reference(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "fleet/manager.py": """
                import time

                class Manager:
                    def __init__(self, *, clock=time.time, monotonic=time.monotonic):
                        self._clock = clock
                        self._monotonic = monotonic

                    def age(self, stamp):
                        return self._clock() - stamp
            """
        },
        rules=("clock-seam",),
    )
    assert findings == []


def test_clock_seam_ignores_uncovered_modules(tmp_path):
    findings = lint_tree(
        tmp_path,
        {"analysis/bench.py": "import time\n\nSTAMP = time.time()\n"},
        rules=("clock-seam",),
    )
    assert findings == []


def test_clock_seam_respects_declared_seams(tmp_path):
    config = LintConfig(clock_seams=(("fleet/policy.py", "straggler_age"),))
    findings = lint_tree(
        tmp_path, BAD_FIXTURES["clock-seam"], rules=("clock-seam",), config=config
    )
    assert findings == []


def test_atomic_write_allows_tmp_replace_and_append(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "otis/sweep.py": """
                import os

                def publish(directory, name, payload):
                    tmp = directory / (name + ".tmp")
                    with open(tmp, "w") as handle:
                        handle.write(payload)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, directory / name)

                def append(path, line):
                    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
                    try:
                        os.write(fd, line.encode())
                    finally:
                        os.close(fd)

                def lock_fd(path):
                    return os.open(path, os.O_CREAT | os.O_RDWR, 0o644)

                def load(path):
                    with path.open() as handle:
                        return handle.read()
            """
        },
        rules=("atomic-write",),
    )
    assert findings == []


def test_atomic_write_flags_write_text_and_bare_os_open(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "otis/sweep.py": """
                import os

                def bad_text(path, payload):
                    path.write_text(payload)

                def bad_fd(path):
                    return os.open(path, os.O_CREAT | os.O_WRONLY, 0o644)
            """
        },
        rules=("atomic-write",),
    )
    assert len(findings) == 2


def test_sorted_iteration_allows_sorted_and_len(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "merge.py": """
                import os

                def chunk_names(directory):
                    return [p.name for p in sorted(directory.glob("chunk-*.jsonl"))]

                def split_count(directory):
                    return len(list(directory.glob("split-*.json")))

                def entry_count(directory):
                    return len(os.listdir(directory))
            """
        },
        rules=("sorted-iteration",),
    )
    assert findings == []


def test_lock_discipline_allows_locked_mutation(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "cache.py": """
                import threading
                from collections import OrderedDict

                _LOCK = threading.RLock()
                _CACHE = OrderedDict()
                _HITS = 0

                def put(key, value):
                    global _HITS
                    with _LOCK:
                        _CACHE[key] = value
                        _CACHE.move_to_end(key)
                        _HITS += 1
                        while len(_CACHE) > 4:
                            _CACHE.popitem(last=False)

                def get(key):
                    with _LOCK:
                        return _CACHE.get(key)
            """
        },
        rules=("lock-discipline",),
    )
    assert findings == []


def test_lock_discipline_skips_modules_without_locks(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "plain.py": """
                _REGISTRY = {}

                def register(name, value):
                    _REGISTRY[name] = value
            """
        },
        rules=("lock-discipline",),
    )
    assert findings == []


def test_lock_discipline_flags_global_rebind_outside_lock(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "counter.py": """
                import threading

                _LOCK = threading.Lock()
                _COUNT = 0

                def bump():
                    global _COUNT
                    _COUNT += 1
            """
        },
        rules=("lock-discipline",),
    )
    assert len(findings) == 1
    assert "_COUNT" in findings[0].message


def test_private_access_flags_private_import(tmp_path):
    findings = lint_tree(
        tmp_path,
        {"driver.py": "from repro.simulation.sharding import _run_replica_chunk\n"},
        rules=("private-access",),
    )
    assert len(findings) == 1
    assert "_run_replica_chunk" in findings[0].message


def test_private_access_allows_public_use(tmp_path):
    findings = lint_tree(
        tmp_path,
        {
            "driver.py": """
                from repro.fleet.leases import LeaseManager
                from repro.simulation.sharding import run_replica_chunk

                def scan(directory):
                    leases = LeaseManager(directory, ttl=60.0)
                    if leases.is_expired(leases.path_for("c1")):
                        return leases.now()
                    return run_replica_chunk(None)

                class Wrapper:
                    def __init__(self):
                        self._mine = 1  # own privates are fine

                    def peek(self):
                        return self._mine
            """
        },
        rules=("private-access",),
    )
    assert findings == []


def test_fingerprint_coverage_accepts_closed_set(tmp_path):
    fixture = {
        "otis/sweep.py": '_VERDICT_SOURCES = ("otis/search.py", "uncovered.py")\n',
        "otis/search.py": BAD_FIXTURES["fingerprint-coverage"]["otis/search.py"],
        "uncovered.py": BAD_FIXTURES["fingerprint-coverage"]["uncovered.py"],
    }
    findings = lint_tree(tmp_path, fixture, rules=("fingerprint-coverage",))
    assert findings == []


def test_fingerprint_coverage_ignores_lazy_imports(tmp_path):
    fixture = dict(BAD_FIXTURES["fingerprint-coverage"])
    fixture["otis/search.py"] = """
        def lazy():
            from repro import uncovered

            return uncovered.ANSWER
    """
    findings = lint_tree(tmp_path, fixture, rules=("fingerprint-coverage",))
    assert findings == []


def test_fingerprint_coverage_reports_missing_declared_file(tmp_path):
    findings = lint_tree(
        tmp_path,
        {"otis/sweep.py": '_VERDICT_SOURCES = ("otis/ghost.py",)\n'},
        rules=("fingerprint-coverage",),
    )
    assert len(findings) == 1
    assert "does not exist" in findings[0].message


# ---------------------------------------------------------------------------
# machinery: suppressions, baseline, errors.


def test_inline_suppression_silences_the_line(tmp_path):
    fixture = {
        "fleet/policy.py": """
            import time

            def straggler_age(acquired):
                return time.time() - acquired  # lint: disable=clock-seam
        """
    }
    assert lint_tree(tmp_path, fixture, rules=("clock-seam",)) == []


def test_inline_suppression_is_rule_specific(tmp_path):
    fixture = {
        "fleet/policy.py": """
            import time

            def straggler_age(acquired):
                return time.time() - acquired  # lint: disable=atomic-write
        """
    }
    assert len(lint_tree(tmp_path, fixture, rules=("clock-seam",))) == 1


def test_baseline_round_trip(tmp_path):
    root = build_tree(tmp_path, BAD_FIXTURES["clock-seam"])
    findings = run_lint([root], rules=("clock-seam",), root=root)
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    keys = load_baseline(baseline_path)
    assert apply_baseline(findings, keys) == []
    # An unrelated finding is not masked by the baseline.
    other = findings[0].__class__(
        path="elsewhere.py", line=1, col=0, rule="clock-seam", message="different"
    )
    assert apply_baseline([other], keys) == [other]


def test_unknown_rule_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown lint rule"):
        run_lint([tmp_path], rules=("no-such-rule",))


def test_parse_error_is_reported(tmp_path):
    root = build_tree(tmp_path, {"broken.py": "def broken(:\n"})
    findings = run_lint([root], root=root)
    assert [f.rule for f in findings] == ["parse-error"]


def test_committed_baseline_is_empty():
    keys = load_baseline(Path(__file__).resolve().parents[1] / "lint-baseline.json")
    assert keys == set()


# ---------------------------------------------------------------------------
# the committed tree.


def test_committed_tree_is_lint_clean():
    assert run_lint([SRC]) == []


def test_cli_lint_src_exits_zero(capsys):
    assert cli.main(["lint", str(SRC), "--baseline", "none"]) == 0
    assert "clean" in capsys.readouterr().out


def test_fingerprint_coverage_fails_on_grown_verdict_path(tmp_path):
    """Adding an unfingerprinted import to a verdict module must fail lint.

    This is the scenario the checker exists for: a future PR adds
    ``import repro.analysis.tables`` (no top-level repro imports of its
    own, so exactly one module joins the closure) to ``otis/search.py`` —
    verdict-defining code — without extending ``_VERDICT_SOURCES``.
    """
    copy_root = tmp_path / "src"
    shutil.copytree(SRC / "repro", copy_root / "repro")
    search = copy_root / "repro" / "otis" / "search.py"
    search.write_text(
        search.read_text(encoding="utf-8") + "\nimport repro.analysis.tables\n",
        encoding="utf-8",
    )
    findings = run_lint(
        [copy_root], rules=("fingerprint-coverage",), root=copy_root
    )
    assert any("analysis/tables.py" in f.message for f in findings)
    # ... and the pristine copy minus that import is still clean.
    baseline = run_lint([SRC], rules=("fingerprint-coverage",))
    assert baseline == []
