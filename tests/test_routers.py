"""Router parity suite: closed-form vs LRU rows vs dense table vs BFS.

The contract of :mod:`repro.routing.routers` is that every router returns,
for every ``(source, target)`` pair, the *same* next hop the dense table of
:func:`repro.routing.paths.build_routing_table` holds — bit-identical
routes, so the simulators' engine-parity contract is router-independent.
This suite enforces it exhaustively on the paper's families (including
parallel-arc ``H`` instances and the Kautz no-repeated-letter constraint),
on hypothesis-generated ``(d, D)`` pairs, and on arbitrary/disconnected
digraphs for the LRU rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import Digraph
from repro.graphs.generators import (
    de_bruijn,
    imase_itoh,
    kautz,
    reddy_raghavan_kuhl,
    ring,
)
from repro.otis.h_digraph import h_digraph
from repro.routing.paths import build_routing_table
from repro.routing.routers import (
    AUTO_DENSE_MAX_N,
    ClosedFormRouter,
    DenseTableRouter,
    LruRowRouter,
    make_router,
    resolve_router,
)
from repro.words import word_to_int


def all_pairs(n):
    source, target = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return source.ravel(), target.ravel()


def assert_full_route_parity(graph, router):
    """Every (source, target) next hop equals the dense table's."""
    table = build_routing_table(graph)
    source, target = all_pairs(graph.num_vertices)
    expected = table.next_hop[source, target]
    np.testing.assert_array_equal(router.next_hops(source, target), expected)
    # scalar path agrees with the vector path
    rng = np.random.default_rng(0)
    for _ in range(20):
        s, t = map(int, rng.integers(graph.num_vertices, size=2))
        assert router.next_hop(s, t) == int(table.next_hop[s, t])


CLOSED_FORM_GRAPHS = [
    de_bruijn(2, 4),
    de_bruijn(3, 3),
    kautz(2, 4),
    kautz(3, 3),
    imase_itoh(2, 16),
    reddy_raghavan_kuhl(2, 32),
    h_digraph(2, 4, 2),    # parallel arcs (H(d^1, d^2, d), D = 2)
    h_digraph(4, 8, 2),
    h_digraph(8, 16, 2),   # balanced even-D split (D = 6), Corollary 4.4
    h_digraph(32, 64, 2),  # the Table 1 flagship row, n = 1024
]


@pytest.mark.parametrize(
    "graph", CLOSED_FORM_GRAPHS, ids=lambda g: g.name
)
def test_closed_form_matches_dense_table(graph):
    assert_full_route_parity(graph, ClosedFormRouter.for_graph(graph))


#: Parallel-arc ``H`` instances (non-power splits, outside the closed form's
#: reach) plus an irregular baseline — the LRU router's home turf.
LRU_EXTRA_GRAPHS = [ring(9), h_digraph(1, 4, 2), h_digraph(2, 8, 4)]


@pytest.mark.parametrize(
    "graph", CLOSED_FORM_GRAPHS + LRU_EXTRA_GRAPHS, ids=lambda g: g.name
)
def test_lru_rows_match_dense_table(graph):
    # a tiny capacity forces evictions mid-suite; parity must survive them
    assert_full_route_parity(graph, LruRowRouter(graph, max_rows=5))


def test_parity_graph_set_includes_parallel_arcs():
    multi = [g for g in LRU_EXTRA_GRAPHS if max(g.arc_multiset().values()) >= 2]
    assert multi, "the parity set must cover parallel-arc H instances"


class TestClosedFormAgainstWordRouting:
    """The vector router agrees with the word-level O(D) routing functions."""

    def test_debruijn_next_hop_is_unique_closer_neighbor(self):
        from repro.routing.paths import debruijn_route

        d, D = 2, 5
        router = ClosedFormRouter.for_de_bruijn(d, D)
        rng = np.random.default_rng(1)
        for _ in range(50):
            s, t = map(int, rng.integers(d**D, size=2))
            if s == t:
                continue
            path = debruijn_route(s, t, d, D)
            assert router.next_hop(s, t) == path[1]

    def test_kautz_hops_respect_no_repeat_constraint(self):
        d, D = 2, 4
        graph = kautz(d, D)
        router = ClosedFormRouter.for_graph(graph)
        source, target = all_pairs(graph.num_vertices)
        hops = router.next_hops(source, target)
        labels = graph.labels
        for s, t, hop in zip(source.tolist(), target.tolist(), hops.tolist()):
            word = labels[hop]
            assert all(a != b for a, b in zip(word, word[1:]))
            if s != t:
                assert hop in graph.out_neighbors(s)

    def test_kautz_code_table_is_lexicographic(self):
        d, D = 2, 3
        graph = kautz(d, D)
        codes = [word_to_int(word, d + 1) for word in graph.labels]
        assert codes == sorted(codes)


@settings(max_examples=25, deadline=None)
@given(
    d=st.integers(min_value=2, max_value=3),
    D=st.integers(min_value=2, max_value=4),
    family=st.sampled_from(["de_bruijn", "kautz"]),
)
def test_hypothesis_closed_form_parity(d, D, family):
    graph = de_bruijn(d, D) if family == "de_bruijn" else kautz(d, D)
    table = build_routing_table(graph)
    router = ClosedFormRouter.for_graph(graph)
    source, target = all_pairs(graph.num_vertices)
    np.testing.assert_array_equal(
        router.next_hops(source, target), table.next_hop[source, target]
    )


@settings(max_examples=15, deadline=None)
@given(
    p_prime=st.integers(min_value=1, max_value=4),
    q_prime=st.integers(min_value=1, max_value=4),
)
def test_hypothesis_h_split_routing(p_prime, q_prime):
    """Power splits either route closed-form (cyclic f) or are rejected."""
    from repro.core.checks import is_otis_layout_of_de_bruijn

    d = 2
    graph = h_digraph(d**p_prime, d**q_prime, d)
    if is_otis_layout_of_de_bruijn(d, p_prime, q_prime):
        assert_full_route_parity(graph, ClosedFormRouter.for_graph(graph))
    else:
        with pytest.raises(ValueError):
            ClosedFormRouter.for_graph(graph)


class TestLruRouter:
    def test_unreachable_pairs_return_minus_one(self):
        graph = Digraph(4, arcs=[(0, 1), (1, 0), (1, 2)])
        router = LruRowRouter(graph)
        assert router.next_hop(2, 0) == -1
        assert router.next_hops(np.array([2, 3]), np.array([0, 1])).tolist() == [-1, -1]

    def test_eviction_keeps_parity(self):
        graph = de_bruijn(2, 4)
        table = build_routing_table(graph)
        router = LruRowRouter(graph, max_rows=2)
        rng = np.random.default_rng(3)
        for _ in range(200):
            s, t = map(int, rng.integers(16, size=2))
            assert router.next_hop(s, t) == int(table.next_hop[s, t])
        assert router.cached_rows() == 2
        assert router.misses > 2  # evictions actually happened

    def test_batch_wider_than_capacity(self):
        # one batch touching more sources than max_rows must still be exact
        graph = de_bruijn(2, 4)
        table = build_routing_table(graph)
        router = LruRowRouter(graph, max_rows=3)
        source, target = all_pairs(16)
        np.testing.assert_array_equal(
            router.next_hops(source, target), table.next_hop[source, target]
        )

    def test_state_bytes_bounded_by_capacity(self):
        graph = de_bruijn(2, 5)
        router = LruRowRouter(graph, max_rows=4)
        source, target = all_pairs(32)
        router.next_hops(source, target)
        assert router.cached_rows() <= 4
        dense_bytes = DenseTableRouter.for_graph(graph).state_bytes()
        assert router.state_bytes() < dense_bytes


class TestSelection:
    def test_auto_prefers_dense_below_threshold(self):
        graph = h_digraph(4, 8, 2)
        assert graph.num_vertices <= AUTO_DENSE_MAX_N
        assert make_router(graph, "auto").kind == "dense"

    def test_auto_goes_closed_form_above_threshold(self):
        graph = h_digraph(64, 128, 2)  # n = 4096
        assert graph.num_vertices > AUTO_DENSE_MAX_N
        router = make_router(graph, "auto")
        assert router.kind == "closed-form"
        # O(n) state, not O(n^2)
        assert router.state_bytes() < 32 * graph.num_vertices

    def test_auto_falls_back_to_lru(self):
        graph = Digraph(AUTO_DENSE_MAX_N + 1, name="big-arbitrary")
        for u in range(graph.num_vertices):
            graph.add_arc(u, (u + 1) % graph.num_vertices)
        assert make_router(graph, "auto").kind == "lru"

    def test_closed_form_rejects_unsupported(self):
        for graph in (ring(8), h_digraph(3, 8, 2), h_digraph(1, 4, 2)):
            with pytest.raises(ValueError):
                ClosedFormRouter.for_graph(graph)
            assert not ClosedFormRouter.supports(graph)

    def test_spot_check_catches_impostor_name(self):
        impostor = Digraph(8, arcs=[(u, (u + 1) % 8) for u in range(8)], name="B(2,3)")
        with pytest.raises(ValueError, match="not an arc"):
            ClosedFormRouter.for_graph(impostor)

    def test_resolve_rejects_ambiguous_arguments(self):
        graph = de_bruijn(2, 3)
        table = build_routing_table(graph)
        with pytest.raises(ValueError):
            resolve_router(graph, routing=table, router="dense")
        assert resolve_router(graph, routing=table).table is table
        assert resolve_router(graph, router="lru").kind == "lru"
        with pytest.raises(ValueError):
            make_router(graph, "magic")


class TestSimulatorIntegration:
    """All routers produce identical simulations on both engines."""

    @pytest.mark.parametrize("router_kind", ["dense", "closed-form", "lru"])
    def test_router_choice_does_not_change_results(self, router_kind):
        from repro.simulation.network import (
            BatchedNetworkSimulator,
            LinkModel,
            NetworkSimulator,
        )
        from repro.simulation.workloads import uniform_random_pairs

        graph = h_digraph(8, 16, 2)
        link = LinkModel(0.7, 0.3)
        traffic = uniform_random_pairs(graph.num_vertices, 200, rng=5, rate=2.0)
        base_stats, base_messages = BatchedNetworkSimulator(
            graph, link=link, router="dense"
        ).run(traffic)
        for engine_cls in (NetworkSimulator, BatchedNetworkSimulator):
            stats, messages = engine_cls(graph, link=link, router=router_kind).run(
                traffic
            )
            assert stats == base_stats
            assert [(m.hops, m.arrival_time) for m in messages] == [
                (m.hops, m.arrival_time) for m in base_messages
            ]


class TestRouterHelpers:
    """full_path / path_lengths / etas agree with the dense table's BFS."""

    HELPER_GRAPHS = [de_bruijn(2, 4), kautz(2, 3), h_digraph(4, 8, 2)]

    @pytest.mark.parametrize("graph", HELPER_GRAPHS, ids=lambda g: g.name)
    @pytest.mark.parametrize("kind", ["dense", "closed-form", "lru"])
    def test_path_lengths_equal_bfs_distance(self, graph, kind):
        router = make_router(graph, kind)
        table = build_routing_table(graph)
        source, target = all_pairs(graph.num_vertices)
        np.testing.assert_array_equal(
            router.path_lengths(source, target), table.distance[source, target]
        )

    @pytest.mark.parametrize("graph", HELPER_GRAPHS, ids=lambda g: g.name)
    def test_full_path_walks_real_arcs(self, graph):
        router = make_router(graph, "closed-form")
        table = build_routing_table(graph)
        arcs = {(int(u), int(v)) for u, v in graph.arcs()}
        rng = np.random.default_rng(3)
        for _ in range(30):
            s, t = map(int, rng.integers(graph.num_vertices, size=2))
            path = router.full_path(s, t)
            assert path is not None
            assert path[0] == s and path[-1] == t
            assert len(path) - 1 == int(table.distance[s, t])
            for u, v in zip(path, path[1:]):
                assert (u, v) in arcs

    def test_full_path_unreachable_is_none(self):
        disconnected = Digraph(4, [(0, 1), (2, 3)])
        router = LruRowRouter(disconnected, max_rows=2)
        assert router.full_path(0, 3) is None
        np.testing.assert_array_equal(
            router.path_lengths(np.array([0, 0]), np.array([1, 3])), [1, -1]
        )

    def test_etas_formula(self):
        from repro.simulation.network import LinkModel

        graph = de_bruijn(2, 3)
        router = make_router(graph, "dense")
        table = build_routing_table(graph)
        link = LinkModel(0.7, 0.3)
        sources = np.arange(graph.num_vertices)
        targets = (sources + 3) % graph.num_vertices
        expected = table.distance[sources, targets] * (0.7 + 0.3)
        np.testing.assert_allclose(
            router.etas(sources, targets, link=link), expected
        )

    def test_etas_unreachable_is_minus_one(self):
        disconnected = Digraph(3, [(0, 1)])
        router = make_router(disconnected, "lru", max_rows=2)
        etas = router.etas(np.array([0]), np.array([2]))
        np.testing.assert_array_equal(etas, [-1.0])


class TestRouterThreadSafety:
    """Regression tests for the LRU router's internal locking.

    Before the lock landed, concurrent ``next_hops`` calls on a tiny
    ``max_rows`` raced the slot/eviction bookkeeping: a row could be evicted
    between its lookup and its use, returning hops from the *wrong source's*
    row.  With the router serialising internally, any thread mix must stay
    bit-identical to the dense table.
    """

    def test_threaded_lru_matches_dense_under_eviction_pressure(self):
        graph = h_digraph(4, 8, 2)
        table = build_routing_table(graph)
        router = LruRowRouter(graph, max_rows=2)  # constant evictions
        n = graph.num_vertices
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(60):
                sources = rng.integers(n, size=32)
                targets = rng.integers(n, size=32)
                got = router.next_hops(sources, targets)
                expected = table.next_hop[sources, targets]
                if not np.array_equal(got, expected):
                    errors.append((sources, targets, got, expected))

        import threading

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, f"LRU router raced: {len(errors)} mismatching batches"

    def test_lru_router_survives_pickle(self):
        import pickle

        graph = de_bruijn(2, 4)
        router = LruRowRouter(graph, max_rows=3)
        router.next_hop(0, 5)  # warm a row so state round-trips
        clone = pickle.loads(pickle.dumps(router))
        assert clone.next_hop(1, 9) == router.next_hop(1, 9)
        # The recreated lock still serialises calls (smoke: lock exists).
        assert clone._lock is not router._lock
