"""Unit tests for digraph operations (conjunction, line digraph, etc.)."""

import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generators import circuit, complete_digraph_with_loops, de_bruijn, kautz
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.operations import (
    cartesian_product,
    conjunction,
    disjoint_union,
    induced_subgraph,
    line_digraph,
    relabel,
    reverse,
)
from repro.graphs.properties import diameter
from repro.graphs.traversal import is_strongly_connected, weakly_connected_components


class TestConjunction:
    def test_sizes(self):
        g = conjunction(circuit(3), circuit(4))
        assert g.num_vertices == 12
        assert g.num_arcs == 12  # one arc per vertex (1-regular x 1-regular)

    def test_definition_2_3_adjacency(self):
        g1 = Digraph(2, arcs=[(0, 1)])
        g2 = Digraph(2, arcs=[(1, 0)])
        product = conjunction(g1, g2)
        # only ((0,1), (1,0)) i.e. 0*2+1=1 -> 1*2+0=2
        assert list(product.arcs()) == [(1, 2)]

    def test_remark_2_4_debruijn_conjunction(self):
        # B(d, k) (x) B(d', k) = B(d d', k)
        product = conjunction(de_bruijn(2, 2), de_bruijn(2, 2))
        assert are_isomorphic(product, de_bruijn(4, 2))

    def test_remark_2_4_mixed_degrees(self):
        product = conjunction(de_bruijn(2, 2), de_bruijn(3, 2))
        assert are_isomorphic(product, de_bruijn(6, 2))

    def test_conjunction_with_c1_is_identity_up_to_iso(self):
        B = de_bruijn(2, 3)
        assert are_isomorphic(conjunction(B, circuit(1)), B)

    def test_multiplicities_multiply(self):
        g1 = Digraph(1, arcs=[(0, 0), (0, 0)])
        g2 = Digraph(1, arcs=[(0, 0), (0, 0), (0, 0)])
        product = conjunction(g1, g2)
        assert product.arc_multiset()[(0, 0)] == 6


class TestLineDigraph:
    def test_line_of_complete_is_debruijn(self):
        # L(K_d with loops) = B(d, 2); iterating gives higher diameters.
        line = line_digraph(complete_digraph_with_loops(2))
        assert are_isomorphic(line, de_bruijn(2, 2))

    def test_line_of_debruijn_is_next_debruijn(self):
        line = line_digraph(de_bruijn(2, 3))
        assert are_isomorphic(line, de_bruijn(2, 4))

    def test_line_of_kautz_is_next_kautz(self):
        line = line_digraph(kautz(2, 2))
        assert are_isomorphic(line, kautz(2, 3))

    def test_sizes(self):
        g = de_bruijn(3, 2)
        line = line_digraph(g)
        assert line.num_vertices == g.num_arcs
        assert line.num_arcs == sum(
            g.out_degree(v) for _, v in g.arcs()
        )


class TestReverseAndUnion:
    def test_reverse_involution(self):
        g = de_bruijn(2, 3)
        assert reverse(reverse(g)).same_arcs(g.to_digraph())

    def test_debruijn_self_converse(self):
        # B(d, D) is isomorphic to its reverse.
        g = de_bruijn(2, 3)
        assert are_isomorphic(g, reverse(g))

    def test_disjoint_union(self):
        union = disjoint_union([circuit(3), circuit(4)])
        assert union.num_vertices == 7
        assert union.num_arcs == 7
        components = weakly_connected_components(union)
        assert sorted(len(c) for c in components) == [3, 4]

    def test_disjoint_union_not_connected(self):
        union = disjoint_union([circuit(2), circuit(2)])
        assert not is_strongly_connected(union)


class TestRelabelSubgraphProduct:
    def test_relabel_is_isomorphic(self):
        from repro.graphs.isomorphism import is_isomorphism

        g = de_bruijn(2, 3)
        mapping = [3, 1, 4, 0, 5, 7, 2, 6]
        h = relabel(g, mapping)
        assert is_isomorphism(g, h, mapping)

    def test_relabel_validates(self):
        with pytest.raises(ValueError):
            relabel(circuit(3), [0, 0, 1])

    def test_induced_subgraph(self):
        g = de_bruijn(2, 3)
        sub = induced_subgraph(g, [0, 1, 2])
        assert sub.num_vertices == 3
        # arcs inside {0,1,2}: 0->0, 0->1, 1->2
        assert sub.arc_multiset() == {(0, 0): 1, (0, 1): 1, (1, 2): 1}

    def test_induced_subgraph_distinct(self):
        with pytest.raises(ValueError):
            induced_subgraph(circuit(4), [0, 0])

    def test_cartesian_product_degrees(self):
        g = cartesian_product(circuit(3), circuit(4))
        assert g.num_vertices == 12
        assert all(g.out_degree(u) == 2 for u in range(12))
        assert diameter(g) == 2 + 3
